"""CHASE: chase-engine throughput and accessible-schema overhead.

Two series:

* chase firings/time to saturate the accessible schema of the chain
  family as the chain length L grows (the proof-relevant chase),
* raw chase throughput on a wide fact base with full TGDs.
"""

import pytest

from benchmarks.conftest import record
from repro.chase.configuration import ChaseConfiguration
from repro.chase.engine import chase_to_fixpoint
from repro.logic.atoms import Atom
from repro.logic.dependencies import parse_tgd
from repro.logic.terms import Constant, NullFactory
from repro.planner.proof_to_plan import initial_configuration
from repro.schema.accessible import AccessibleSchema, Variant
from repro.scenarios import referential_chain


@pytest.mark.parametrize("length", [1, 2, 4, 6, 8])
def test_accessible_schema_saturation(benchmark, length):
    scenario = referential_chain(length)
    acc = AccessibleSchema(scenario.schema, Variant.FORWARD)

    def saturate_initial():
        return initial_configuration(
            acc, scenario.query, NullFactory("b")
        )

    config, _ = benchmark(saturate_initial)
    record(
        benchmark,
        rules=len(acc.rules),
        facts=len(config),
    )


@pytest.mark.parametrize("rows", [50, 200, 800])
def test_ground_chase_throughput(benchmark, rows):
    rules = [
        parse_tgd("R(x, y) -> S(y, x)"),
        parse_tgd("S(x, y) & R(y, z) -> T(x, z)"),
        parse_tgd("T(x, y) -> U(x)"),
    ]

    def build_and_chase():
        config = ChaseConfiguration(
            Atom("R", (Constant(f"a{i}"), Constant(f"a{(i * 7) % rows}")))
            for i in range(rows)
        )
        result = chase_to_fixpoint(config, rules, NullFactory("t"))
        return config, result

    config, result = benchmark(build_and_chase)
    assert result.reached_fixpoint
    record(benchmark, firings=result.firings, facts=len(config))
