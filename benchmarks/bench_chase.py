"""CHASE: chase-engine throughput, naive vs. semi-naive.

Two surfaces:

* pytest-benchmark series (``pytest benchmarks/bench_chase.py``):
  saturation of the accessible chain family and raw ground-chase
  throughput, parametrized over the evaluation strategy so the
  EXPERIMENTS.md tables show both;
* a standalone comparison runner (``python benchmarks/bench_chase.py``)
  that chases every workload under both strategies and writes the
  machine-readable ``BENCH_chase.json`` -- wall time, triggers
  enumerated/fired, rounds, and the derived trigger-reduction and
  speedup ratios -- so the perf trajectory is tracked across PRs.
"""

import argparse
import json
import sys
import time

import pytest

from benchmarks.conftest import record
from repro.chase.configuration import ChaseConfiguration
from repro.chase.engine import ChasePolicy, chase_to_fixpoint
from repro.logic.atoms import Atom
from repro.logic.dependencies import parse_tgd
from repro.logic.terms import Constant, NullFactory
from repro.planner.proof_to_plan import initial_configuration
from repro.schema.accessible import AccessibleSchema, Variant
from repro.scenarios import referential_chain

STRATEGIES = ("naive", "semi-naive")


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("length", [1, 2, 4, 6, 8])
def test_accessible_schema_saturation(benchmark, length, strategy):
    scenario = referential_chain(length)
    acc = AccessibleSchema(scenario.schema, Variant.FORWARD)
    policy = ChasePolicy(strategy=strategy)

    def saturate_initial():
        return initial_configuration(
            acc, scenario.query, NullFactory("b"), policy
        )

    config, _ = benchmark(saturate_initial)
    record(
        benchmark,
        rules=len(acc.rules),
        facts=len(config),
        strategy=strategy,
    )


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("rows", [50, 200, 800])
def test_ground_chase_throughput(benchmark, rows, strategy):
    rules = _ground_rules()
    policy = ChasePolicy(strategy=strategy)

    def build_and_chase():
        config = _ground_config(rows)
        result = chase_to_fixpoint(config, rules, NullFactory("t"), policy)
        return config, result

    config, result = benchmark(build_and_chase)
    assert result.reached_fixpoint
    record(
        benchmark,
        firings=result.firings,
        facts=len(config),
        triggers_enumerated=result.stats.triggers_enumerated,
        rounds=result.stats.rounds,
        strategy=strategy,
    )


# ------------------------------------------------------ standalone comparison
def _ground_rules():
    return [
        parse_tgd("R(x, y) -> S(y, x)"),
        parse_tgd("S(x, y) & R(y, z) -> T(x, z)"),
        parse_tgd("T(x, y) -> U(x)"),
    ]


def _ground_config(rows):
    return ChaseConfiguration(
        Atom("R", (Constant(f"a{i}"), Constant(f"a{(i * 7) % rows}")))
        for i in range(rows)
    )


def _closure_rules():
    return [
        parse_tgd("R(x, y) -> P(x, y)"),
        parse_tgd("P(x, y) & R(y, z) -> P(x, z)"),
    ]


def _chain_edges(n):
    return ChaseConfiguration(
        Atom("R", (Constant(f"v{i}"), Constant(f"v{i + 1}")))
        for i in range(n)
    )


def _workloads(smoke=False):
    """(name, config builder, rules builder) triples to compare."""
    ground_rows = 100 if smoke else 400
    closure_nodes = 24 if smoke else 60
    chain_length = 4 if smoke else 8
    workloads = [
        (
            f"ground_join_rows{ground_rows}",
            lambda: _ground_config(ground_rows),
            _ground_rules,
        ),
        (
            f"transitive_closure_n{closure_nodes}",
            lambda: _chain_edges(closure_nodes),
            _closure_rules,
        ),
    ]

    def chain_saturation_config():
        scenario = referential_chain(chain_length)
        acc = AccessibleSchema(scenario.schema, Variant.FORWARD)
        facts, _ = scenario.query.canonical_database()
        config = ChaseConfiguration(facts)
        for fact in acc.initial_accessible_facts():
            config.add(fact)
        return config

    def chain_saturation_rules():
        scenario = referential_chain(chain_length)
        acc = AccessibleSchema(scenario.schema, Variant.FORWARD)
        return list(acc.free_rules)

    workloads.append(
        (
            f"accessible_chain_L{chain_length}",
            chain_saturation_config,
            chain_saturation_rules,
        )
    )
    return workloads


def _measure(make_config, make_rules, strategy, repeats):
    """Best-of-``repeats`` wall time plus the final run's chase stats."""
    rules = make_rules()
    best_time = None
    result = None
    config = None
    for _ in range(repeats):
        config = make_config()
        started = time.perf_counter()
        result = chase_to_fixpoint(
            config, rules, NullFactory("t"), ChasePolicy(strategy=strategy)
        )
        elapsed = time.perf_counter() - started
        if best_time is None or elapsed < best_time:
            best_time = elapsed
    assert result.reached_fixpoint
    return {
        "wall_time": best_time,
        "facts": len(config),
        "firings": result.firings,
        **result.stats.as_dict(),
    }


def run_comparison(smoke=False, repeats=3):
    """Chase every workload under both strategies; return the report."""
    rows = []
    for name, make_config, make_rules in _workloads(smoke):
        entry = {"workload": name}
        for strategy in STRATEGIES:
            entry[strategy.replace("-", "_")] = _measure(
                make_config, make_rules, strategy, repeats
            )
        naive, semi = entry["naive"], entry["semi_naive"]
        entry["trigger_reduction"] = (
            naive["triggers_enumerated"] / semi["triggers_enumerated"]
            if semi["triggers_enumerated"]
            else float("inf")
        )
        entry["speedup"] = (
            naive["wall_time"] / semi["wall_time"]
            if semi["wall_time"]
            else float("inf")
        )
        # Both strategies must compute the same model.
        assert naive["facts"] == semi["facts"], name
        rows.append(entry)
    return {
        "benchmark": "bench_chase",
        "mode": "smoke" if smoke else "full",
        "workloads": rows,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="compare naive vs semi-naive chase evaluation"
    )
    parser.add_argument(
        "--smoke", action="store_true", help="small workloads (CI)"
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats per point"
    )
    parser.add_argument(
        "--output", default="BENCH_chase.json", help="report destination"
    )
    args = parser.parse_args(argv)
    report = run_comparison(smoke=args.smoke, repeats=args.repeats)
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
    for row in report["workloads"]:
        print(
            f"{row['workload']}: "
            f"{row['trigger_reduction']:.1f}x fewer triggers, "
            f"{row['speedup']:.1f}x faster "
            f"({row['naive']['triggers_enumerated']} -> "
            f"{row['semi_naive']['triggers_enumerated']} enumerated, "
            f"{row['naive']['wall_time'] * 1e3:.1f} -> "
            f"{row['semi_naive']['wall_time'] * 1e3:.1f} ms)"
        )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
