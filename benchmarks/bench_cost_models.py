"""Cost-model ablation: the chosen plan depends on the cost function.

The paper's framework is parametric in a monotone "black box" cost.  This
experiment makes the dependence visible: two redundant sources where

* source BIG is cheap to invoke but huge (its scan feeds the Profinfo
  probe a large input),
* source SMALL costs more per invocation but is tiny,

so the *simple* cost function (per-command weights) picks BIG while the
*cardinality-aware* estimator picks SMALL.  Series: planning time under
each model, with the chosen methods recorded; a shape check asserts the
crossover actually happens and that the cardinality choice pays off at
runtime.
"""

import pytest

from benchmarks.conftest import record
from repro.cost.functions import CardinalityCostFunction, SimpleCostFunction
from repro.data.instance import Instance
from repro.data.source import InMemorySource
from repro.logic.queries import cq
from repro.planner.search import SearchOptions, find_best_plan
from repro.schema.core import SchemaBuilder


def build_schema():
    return (
        SchemaBuilder("costdemo")
        .relation("Profinfo", 3)
        .relation("UdirectBig", 2)
        .relation("UdirectSmall", 2)
        .access("mt_prof", "Profinfo", inputs=[0, 2], cost=1.0)
        .access("mt_big", "UdirectBig", inputs=[], cost=1.0)
        .access("mt_small", "UdirectSmall", inputs=[], cost=2.0)
        .tgd("Profinfo(e, o, l) -> UdirectBig(e, l)")
        .tgd("Profinfo(e, o, l) -> UdirectSmall(e, l)")
        .build()
    )


def build_instance(big_noise=400, small_noise=5, professors=10):
    instance = Instance()
    for p in range(professors):
        instance.add("Profinfo", (f"e{p}", f"o{p}", f"n{p}"))
        instance.add("UdirectBig", (f"e{p}", f"n{p}"))
        instance.add("UdirectSmall", (f"e{p}", f"n{p}"))
    for j in range(big_noise):
        instance.add("UdirectBig", (f"big{j}", f"bn{j}"))
    for j in range(small_noise):
        instance.add("UdirectSmall", (f"sm{j}", f"sn{j}"))
    return instance


QUERY = cq([], [("Profinfo", ["?e", "?o", "?l"])], name="Qc")

CARDINALITIES = {"mt_big": 410, "mt_small": 15, "mt_prof": 10}


def cardinality_cost():
    return CardinalityCostFunction(
        relation_cardinality=CARDINALITIES,
        per_access=1.0,
        per_tuple=0.05,
        join_selectivity=1.0,
    )


def test_simple_cost_picks_cheap_method(benchmark):
    schema = build_schema()

    def plan():
        return find_best_plan(
            schema, QUERY, SearchOptions(max_accesses=3)
        )

    result = benchmark(plan)
    assert "mt_big" in result.best_plan.methods_used()
    record(benchmark, methods=",".join(result.best_plan.methods_used()))


def test_cardinality_cost_picks_small_source(benchmark):
    schema = build_schema()

    def plan():
        return find_best_plan(
            schema,
            QUERY,
            SearchOptions(max_accesses=3, cost=cardinality_cost()),
        )

    result = benchmark(plan)
    assert "mt_small" in result.best_plan.methods_used()
    assert "mt_big" not in result.best_plan.methods_used()
    record(benchmark, methods=",".join(result.best_plan.methods_used()))


def test_crossover_pays_off_at_runtime():
    """Shape check: the cardinality-guided plan makes far fewer runtime
    invocations on data matching the statistics."""
    schema = build_schema()
    simple = find_best_plan(schema, QUERY, SearchOptions(max_accesses=3))
    aware = find_best_plan(
        schema,
        QUERY,
        SearchOptions(max_accesses=3, cost=cardinality_cost()),
    )
    instance = build_instance()
    src_simple = InMemorySource(schema, instance)
    src_aware = InMemorySource(schema, instance)
    out_simple = simple.best_plan.run(src_simple)
    out_aware = aware.best_plan.run(src_aware)
    assert bool(out_simple.rows) == bool(out_aware.rows)
    assert src_aware.total_invocations < src_simple.total_invocations
