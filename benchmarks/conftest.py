"""Shared benchmark helpers.

Each benchmark row corresponds to one point of a series in
EXPERIMENTS.md; parameters appear in the pytest-benchmark table name and
measured side-channel quantities (node counts, plan costs, access
counts) are attached via ``benchmark.extra_info`` so they land in the
report alongside the timings.
"""

import pytest


def record(benchmark, **info):
    """Attach side-channel measurements to a benchmark row."""
    for key, value in info.items():
        benchmark.extra_info[key] = value
