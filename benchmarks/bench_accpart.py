"""ACCPART: the AccPart(I) fixpoint vs instance size.

AccPart is the semantic yardstick of Theorems 1-3 (two instances with
the same accessible part are plan-indistinguishable).  Series: fixpoint
time and accessible-fact counts as instances grow, for a schema whose
access graph needs several rounds to saturate.
"""

import pytest

from benchmarks.conftest import record
from repro.data.accessible_part import accessible_part
from repro.scenarios import example2, referential_chain


@pytest.mark.parametrize("size", [25, 100, 400])
def test_accpart_example2(benchmark, size):
    scenario = example2(directory_size=size)
    instance = scenario.instance(0)

    def run():
        return accessible_part(scenario.schema, instance)

    part = benchmark(run)
    accessed = sum(
        len(part.accessed_tuples(r.name))
        for r in scenario.schema.relations
    )
    record(
        benchmark,
        rounds=part.rounds,
        accessed=accessed,
        values=len(part.accessible_values),
    )


@pytest.mark.parametrize("length", [2, 4, 6])
def test_accpart_chain_rounds(benchmark, length):
    """Longer access chains force more fixpoint rounds."""
    scenario = referential_chain(length, chain_size=50)
    instance = scenario.instance(0)

    def run():
        return accessible_part(scenario.schema, instance)

    part = benchmark(run)
    assert part.rounds >= length
    record(benchmark, rounds=part.rounds)
