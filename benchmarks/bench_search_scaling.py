"""T8/A1: Algorithm 1 scaling with the number of redundant sources.

The k-sources family (Example 5 generalized) has ~2^k complete plans.
The series reported: planning time, nodes explored, and best cost as k
grows, with full pruning on.  The paper's prose claim is that cost and
domination pruning keep the explored tree far below the full proof
space -- compare against bench_pruning.py for the ablation.
"""

import pytest

from benchmarks.conftest import record
from repro.planner.search import SearchOptions, find_best_plan
from repro.scenarios import redundant_sources, referential_chain


@pytest.mark.parametrize("k", [1, 2, 3, 4, 5, 6])
def test_scaling_sources(benchmark, k):
    scenario = redundant_sources(k)

    def plan():
        return find_best_plan(
            scenario.schema,
            scenario.query,
            SearchOptions(max_accesses=k + 1),
        )

    result = benchmark(plan)
    assert result.found
    # The cheapest plan uses exactly the cheapest source + Profinfo.
    assert result.best_cost == pytest.approx(1.0 + 5.0)
    record(
        benchmark,
        nodes=result.stats.nodes_created,
        pruned_cost=result.stats.pruned_by_cost,
        pruned_domination=result.stats.pruned_by_domination,
        best_cost=result.best_cost,
        chase_triggers=result.stats.chase.triggers_enumerated,
        chase_rounds=result.stats.chase.rounds,
    )


@pytest.mark.parametrize("length", [1, 2, 3, 4, 5])
def test_scaling_chain_length(benchmark, length):
    scenario = referential_chain(length)

    def plan():
        return find_best_plan(
            scenario.schema,
            scenario.query,
            SearchOptions(max_accesses=length + 2),
        )

    result = benchmark(plan)
    assert result.found
    assert len(result.best_plan.access_commands) == length + 1
    record(
        benchmark,
        nodes=result.stats.nodes_created,
        accesses=len(result.best_plan.access_commands),
        chase_triggers=result.stats.chase.triggers_enumerated,
        chase_rounds=result.stats.chase.rounds,
    )
