"""DEC: the answerability decision procedure (Theorems 1/5 + §3).

For Guarded TGDs plan existence is decidable (2EXPTIME in general; tiny
here).  Series: time to reach each verdict -- positive (witness found),
certified negative (proof space exhausted), and budget-relative
negative -- across the example schemas.
"""

import pytest

from benchmarks.conftest import record
from repro.logic.queries import cq
from repro.planner.answerability import (
    Answerability,
    decide_answerability,
)
from repro.scenarios import example1, example2
from repro.schema.core import SchemaBuilder


def test_decide_positive(benchmark):
    scenario = example2()

    def decide():
        return decide_answerability(
            scenario.schema, scenario.query, max_accesses=5
        )

    verdict = benchmark(decide)
    assert verdict is Answerability.ANSWERABLE
    record(benchmark, verdict=verdict.value)


def test_decide_certified_negative(benchmark):
    schema = (
        SchemaBuilder("neg")
        .relation("R", 2)
        .access("mt_r", "R", inputs=[0])
        .build()
    )
    query = cq([], [("R", ["?x", "?y"])])

    def decide():
        return decide_answerability(schema, query, max_accesses=4)

    verdict = benchmark(decide)
    assert verdict is Answerability.NO_PLAN_WITHIN_BUDGET
    record(benchmark, verdict=verdict.value)


@pytest.mark.parametrize("budget", [2, 3, 4])
def test_decide_budget_boundary(benchmark, budget):
    """Example 2 needs exactly 4 accesses: the verdict flips at the
    boundary, certified on both sides."""
    scenario = example2()

    def decide():
        return decide_answerability(
            scenario.schema, scenario.query, max_accesses=budget
        )

    verdict = benchmark(decide)
    expected = (
        Answerability.ANSWERABLE
        if budget >= 4
        else Answerability.NO_PLAN_WITHIN_BUDGET
    )
    assert verdict is expected
    record(benchmark, verdict=verdict.value)
