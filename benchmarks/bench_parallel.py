"""PARALLEL: the process execution tier and the fingerprint plan cache.

A standalone runner (``python benchmarks/bench_parallel.py``) that
measures the two "scale past the GIL" subsystems and writes the
machine-readable ``BENCH_parallel.json`` (rendered by ``report.py
--parallel-json``):

* **process scaling** -- the same burst of CPU-bound requests (the
  row-heavy join workload whose interpreter cost is pure Python, i.e.
  the GIL-bound regime where in-process threads cannot help) served at
  increasing :class:`~repro.service.ProcessWorkerPool` worker counts,
  plus a :class:`~repro.service.ThreadWorkerPool` row for contrast.
  Every response is asserted byte-identical to the single-process
  sequential reference, so the speedup column is soundness-checked.
  The speedup floor is **CPU-aware**: the report records
  ``os.cpu_count()`` and only enforces a floor the hardware can
  honestly meet (3x at 8 workers needs >= 8 cores; a 1-core container
  records ``cpu_limited`` instead of fabricating parallelism).
* **plan cache** -- a repeated-query workload served through
  ``QueryService.submit_query``: the first occurrence of each distinct
  query pays the proof search, every repeat is a fingerprint hit.  The
  report records the fraction of search invocations eliminated
  (asserted >= 95%, hardware-independent), the cold-vs-warm planning
  latency, and a restart trial where a fresh process re-reads the
  plans from the on-disk cache tier without re-searching.
* **sharded scan** -- a :class:`~repro.data.ShardedInMemorySource`
  answering the same plan as the unsharded source, asserted identical
  with identical access metering (partitioning is invisible to the
  cost ledger).
"""

import argparse
import json
import os
import sys
import tempfile
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter

sys.path.insert(
    0, os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)

from benchmarks.bench_execution import row_heavy_workload  # noqa: E402

from repro.data.source import InMemorySource, ShardedInMemorySource
from repro.logic.queries import parse_cq
from repro.planner import PlanCache
from repro.service import ProcessWorkerPool, QueryService, ThreadWorkerPool


def canonical(table):
    return (table.attributes, tuple(sorted(map(repr, table.rows))))


def serve_burst(source, plan, requests, worker_pool=None, workers=1):
    """Wall time of a burst of identical requests; returns responses."""
    service = QueryService(
        source,
        workers=workers,
        max_queue=requests + 1,
        worker_pool=worker_pool,
    )
    with service:
        # One warm-up request outside the timed region: spawn-tier
        # workers pay interpreter startup + source rehydration once,
        # which is amortized cost, not per-request cost.
        service.submit(plan).result(timeout=600)
        started = perf_counter()
        tickets = [service.submit(plan) for _ in range(requests)]
        responses = [ticket.result(timeout=600) for ticket in tickets]
        elapsed = perf_counter() - started
        health = service.health()
    return elapsed, responses, health


# ----------------------------------------------------------- process scaling
def scaling_sweep(n, requests, workers_list):
    """The CPU-bound burst at each process-tier width, plus threads."""
    schema, instance, plan = row_heavy_workload(n)
    source = InMemorySource(schema, instance)
    started = perf_counter()
    reference = canonical(plan.execute(source))
    single_exec = perf_counter() - started
    rows = []
    baseline = None
    for workers in workers_list:
        pool = ProcessWorkerPool.for_source(source, workers=workers)
        elapsed, responses, health = serve_burst(
            source, plan, requests, worker_pool=pool, workers=workers
        )
        for response in responses:
            assert response.complete, response.describe()
            assert canonical(response.table) == reference, workers
        throughput = requests / elapsed
        if baseline is None:
            baseline = throughput
        rows.append(
            {
                "tier": "process",
                "workers": workers,
                "wall_time": elapsed,
                "throughput_rps": throughput,
                "speedup": throughput / baseline,
                "identical_to_reference": True,
                "crashes": health.worker_tier["crashes"],
            }
        )
    # The GIL contrast row: the same width of in-process threads.  On a
    # CPU-bound workload this cannot scale (the interpreter serializes
    # it), which is the whole argument for the process tier.
    top = max(workers_list)
    pool = ThreadWorkerPool(source, workers=top)
    elapsed, responses, _health = serve_burst(
        source, plan, requests, worker_pool=pool, workers=top
    )
    for response in responses:
        assert response.complete, response.describe()
        assert canonical(response.table) == reference, "thread tier"
    rows.append(
        {
            "tier": "thread",
            "workers": top,
            "wall_time": elapsed,
            "throughput_rps": requests / elapsed,
            "speedup": (requests / elapsed) / baseline,
            "identical_to_reference": True,
            "crashes": 0,
        }
    )
    return {
        "rows_per_relation": n,
        "requests": requests,
        "single_exec_time": single_exec,
        "rows": rows,
    }


def scaling_floor(scaling, cpu_count):
    """The honest speedup floor for this machine, and whether it held.

    The acceptance bar -- 3x at 8 process workers -- is only physically
    meaningful with >= 8 cores; narrower machines get a proportionally
    narrower floor, and a 1-core container gets correctness checks only
    (the report says so instead of asserting fiction).
    """
    floors = {8: 3.0, 4: 1.6, 2: 1.15}
    process_rows = {
        row["workers"]: row
        for row in scaling["rows"]
        if row["tier"] == "process"
    }
    eligible = [
        w for w in floors if w in process_rows and cpu_count >= w
    ]
    if not eligible:
        return {
            "required": False,
            "reason": f"cpu_count={cpu_count} cannot host parallel "
                      "speedup; identical-answer checks still enforced",
            "held": True,
        }
    width = max(eligible)
    achieved = process_rows[width]["speedup"]
    return {
        "required": True,
        "workers": width,
        "min_speedup": floors[width],
        "achieved": achieved,
        "held": achieved >= floors[width],
    }


# --------------------------------------------------------------- plan cache
CACHE_QUERIES = [
    "q(x, y) :- R(x, y)",
    "q(x, y) :- S(x, y)",
    "q(a, c) :- R(a, b) & S(b, c)",
]


def plan_cache_workload(n, repeats, distinct, directory):
    """Repeated queries through submit_query: search runs once each."""
    schema, instance, _plan = row_heavy_workload(n)
    source = InMemorySource(schema, instance)
    queries = [parse_cq(text) for text in CACHE_QUERIES[:distinct]]
    cache = PlanCache(directory=directory)
    service = QueryService(
        source,
        workers=2,
        max_queue=len(queries) * repeats + 8,
        plan_cache=cache,
    )
    cold_times, warm_times = [], []
    with service:
        for query in queries:
            started = perf_counter()
            service.plan_for(query)
            cold_times.append(perf_counter() - started)
        for _ in range(8):
            for query in queries:
                started = perf_counter()
                service.plan_for(query)
                warm_times.append(perf_counter() - started)
        tickets = []
        for round_index in range(repeats):
            for query in queries:
                tickets.append(service.submit_query(query))
        for ticket in tickets:
            response = ticket.result(timeout=600)
            assert response.complete, response.describe()
        health = service.health()
    submissions = len(queries) * repeats
    searches = health.planned
    counters = health.plan_cache
    plan_requests = len(queries) * 9 + submissions
    eliminated = 1.0 - searches / plan_requests
    cold = sum(cold_times) / len(cold_times)
    warm = sum(warm_times) / len(warm_times)

    # Restart trial: a fresh cache object over the same directory must
    # serve every plan from the disk tier without a single search.
    restart = {"enabled": directory is not None}
    if directory is not None:
        fresh = PlanCache(directory=directory)
        restarted = QueryService(
            source, workers=2, max_queue=64, plan_cache=fresh
        )
        with restarted:
            for query in queries:
                restarted.plan_for(query)
            after = restarted.health()
        restart.update(
            searches_after_restart=after.planned,
            disk_hits=after.plan_cache["disk_hits"],
        )
    return {
        "distinct_queries": len(queries),
        "submissions": submissions,
        "searches_run": searches,
        "search_eliminated": eliminated,
        "hit_rate": counters["hit_rate"],
        "cold_plan_ms": cold * 1e3,
        "warm_plan_ms": warm * 1e3,
        "warm_over_cold": warm / cold if cold else 0.0,
        "counters": counters,
        "restart": restart,
    }


# ------------------------------------------------------------- sharded scan
def sharded_scan(n, shards):
    """Sharded vs plain source: same answers, same access metering."""
    schema, instance, plan = row_heavy_workload(n)
    plain = InMemorySource(schema, instance)
    started = perf_counter()
    reference = canonical(plan.execute(plain))
    plain_time = perf_counter() - started
    rows = []
    for pool in (None, ThreadPoolExecutor(max_workers=shards)):
        sharded = ShardedInMemorySource(
            schema, instance, shards=shards, pool=pool
        )
        started = perf_counter()
        answer = canonical(plan.execute(sharded))
        elapsed = perf_counter() - started
        assert answer == reference, "sharded scan answers diverge"
        assert sharded.total_invocations == plain.total_invocations, (
            sharded.total_invocations,
            plain.total_invocations,
        )
        rows.append(
            {
                "parallel_scan": pool is not None,
                "wall_time": elapsed,
                "identical_to_reference": True,
                "invocations": sharded.total_invocations,
            }
        )
        if pool is not None:
            pool.shutdown(wait=True)
    partition_sizes = [
        part.instance.size() for part in sharded.partitions
    ]
    assert sum(partition_sizes) == instance.size()
    return {
        "rows_per_relation": n,
        "shards": shards,
        "plain_time": plain_time,
        "partition_sizes": partition_sizes,
        "metering_identical": True,
        "rows": rows,
    }


def run_benchmark(quick):
    """The full report dict (also asserting soundness throughout)."""
    cpu_count = os.cpu_count() or 1
    if quick:
        workers_list = [1, 2]
        scaling = scaling_sweep(n=1500, requests=6, workers_list=workers_list)
    else:
        workers_list = [1, 2, 4, 8]
        scaling = scaling_sweep(n=5000, requests=12, workers_list=workers_list)
    floor = scaling_floor(scaling, cpu_count)
    assert floor["held"], floor
    with tempfile.TemporaryDirectory() as tmp:
        cache = plan_cache_workload(
            n=400,
            repeats=20 if quick else 40,
            distinct=2 if quick else 3,
            directory=tmp,
        )
    # The hardware-independent acceptance bar: a warm cache eliminates
    # at least 95% of search invocations, and a warm plan costs a small
    # fraction of a cold one.
    assert cache["search_eliminated"] >= 0.95, cache
    assert cache["warm_over_cold"] < 0.5, cache
    assert cache["restart"]["searches_after_restart"] == 0, cache
    sharding = sharded_scan(n=800 if quick else 2000, shards=4)
    return {
        "benchmark": "bench_parallel",
        "mode": "quick" if quick else "full",
        "cpu_count": cpu_count,
        "cpu_limited": cpu_count < max(workers_list),
        "scaling": scaling,
        "scaling_floor": floor,
        "plan_cache": cache,
        "sharding": sharding,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="measure the process execution tier and the plan cache"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small burst (6 requests, 2 worker counts) for CI",
    )
    parser.add_argument(
        "--output", default="BENCH_parallel.json", help="report destination"
    )
    args = parser.parse_args(argv)
    report = run_benchmark(args.quick)
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
    print(
        f"cpu_count {report['cpu_count']}"
        + (" (cpu-limited: scaling floor waived)"
           if report["cpu_limited"] else "")
    )
    for row in report["scaling"]["rows"]:
        print(
            f"{row['tier']:>8} x{row['workers']}: "
            f"{row['throughput_rps']:.2f} req/s "
            f"({row['speedup']:.2f}x), identical answers"
        )
    cache = report["plan_cache"]
    print(
        f"plan cache: {cache['searches_run']} searches for "
        f"{cache['submissions']} submissions "
        f"({cache['search_eliminated']:.1%} eliminated), "
        f"cold {cache['cold_plan_ms']:.2f} ms -> "
        f"warm {cache['warm_plan_ms']:.4f} ms, "
        f"restart searches {cache['restart']['searches_after_restart']}"
    )
    for row in report["sharding"]["rows"]:
        mode = "parallel" if row["parallel_scan"] else "serial"
        print(
            f"sharded scan ({mode}): {row['wall_time'] * 1e3:.1f} ms, "
            f"identical answers, metering parity"
        )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
