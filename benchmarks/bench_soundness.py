"""T5: end-to-end plan-completeness verification throughput.

Times the full verify loop a downstream user would run: plan the query,
execute over a generated instance, compare with direct evaluation.
Series over instance sizes -- the shape claim is that execution scales
with data size while planning does not depend on it at all.
"""

import pytest

from benchmarks.conftest import record
from repro.data.source import InMemorySource
from repro.planner.search import SearchOptions, find_best_plan
from repro.scenarios import example1, example2


@pytest.mark.parametrize("size", [50, 200, 800])
def test_example1_execution_scaling(benchmark, size):
    scenario = example1(professors=size, directory_extra=size * 2)
    plan = find_best_plan(scenario.schema, scenario.query).best_plan
    instance = scenario.instance(0)
    truth = instance.evaluate(scenario.query)

    def run():
        source = InMemorySource(scenario.schema, instance)
        return plan.run(source)

    output = benchmark(run)
    assert set(output.rows) == truth
    record(benchmark, rows=len(output.rows), data=instance.size())


# Note the quadratic shape: the paper's Example 2 plan feeds Direct1 the
# full Names x Ids cross product, so runtime accesses grow as size^2.
@pytest.mark.parametrize("size", [20, 40, 80])
def test_example2_execution_scaling(benchmark, size):
    scenario = example2(directory_size=size)
    plan = find_best_plan(
        scenario.schema, scenario.query, SearchOptions(max_accesses=5)
    ).best_plan
    instance = scenario.instance(0)
    truth = instance.evaluate(scenario.query)

    def run():
        source = InMemorySource(scenario.schema, instance)
        return plan.run(source)

    output = benchmark(run)
    assert set(output.rows) == truth
    record(benchmark, rows=len(output.rows), data=instance.size())


def test_planning_independent_of_data(benchmark):
    """Planning touches no data: time it once, no instance in sight."""
    scenario = example2()

    def plan():
        return find_best_plan(
            scenario.schema, scenario.query, SearchOptions(max_accesses=5)
        )

    result = benchmark(plan)
    assert result.found
    record(benchmark, nodes=result.stats.nodes_created)
