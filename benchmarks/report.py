"""Render benchmark JSON files into the EXPERIMENTS.md tables.

Usage::

    python -m pytest benchmarks/ --benchmark-only --benchmark-json=bench.json
    python benchmarks/report.py bench.json > experiment_tables.md

    python benchmarks/bench_chase.py            # writes BENCH_chase.json
    python benchmarks/report.py --chase-json BENCH_chase.json

    python benchmarks/bench_search.py           # writes BENCH_search.json
    python benchmarks/report.py --search-json BENCH_search.json

    python benchmarks/bench_execution.py        # writes BENCH_exec.json
    python benchmarks/report.py --exec-json BENCH_exec.json

    python benchmarks/bench_cost.py             # writes BENCH_cost.json
    python benchmarks/report.py --cost-json BENCH_cost.json

    python benchmarks/bench_faults.py           # writes BENCH_faults.json
    python benchmarks/report.py --faults-json BENCH_faults.json

    python benchmarks/bench_service.py          # writes BENCH_service.json
    python benchmarks/report.py --service-json BENCH_service.json

    python benchmarks/bench_parallel.py         # writes BENCH_parallel.json
    python benchmarks/report.py --parallel-json BENCH_parallel.json

    python benchmarks/bench_chaos.py            # writes BENCH_chaos.json
    python benchmarks/report.py --chaos-json BENCH_chaos.json

    python benchmarks/bench_adapters.py         # writes BENCH_adapters.json
    python benchmarks/report.py --adapters-json BENCH_adapters.json

The default mode groups pytest-benchmark rows by module and prints one
markdown table per module with mean/stddev timings and every
``extra_info`` measurement.  ``--chase-json`` instead renders the
naive-vs-semi-naive comparison report emitted by ``bench_chase.py``,
``--search-json`` the baseline-vs-incremental search comparison
emitted by ``bench_search.py``, and ``--exec-json`` the
naive-vs-runtime dispatcher comparison emitted by
``bench_execution.py``.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import OrderedDict
from typing import Dict, List


def load(path: str) -> List[Dict]:
    with open(path) as handle:
        return json.load(handle)["benchmarks"]


def group_by_module(benchmarks: List[Dict]) -> "OrderedDict[str, List[Dict]]":
    groups: "OrderedDict[str, List[Dict]]" = OrderedDict()
    for bench in benchmarks:
        module = bench["fullname"].split("::")[0].split("/")[-1]
        groups.setdefault(module, []).append(bench)
    return groups


def format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    if isinstance(value, list):
        return " → ".join(format_value(v) for v in value)
    return str(value)


def render(benchmarks: List[Dict]) -> str:
    lines: List[str] = []
    for module, rows in group_by_module(benchmarks).items():
        lines.append(f"### {module}")
        lines.append("")
        extra_keys: List[str] = []
        for row in rows:
            for key in row.get("extra_info", {}):
                if key not in extra_keys:
                    extra_keys.append(key)
        header = ["benchmark", "mean", "stddev"] + extra_keys
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "---|" * len(header))
        for row in rows:
            stats = row["stats"]
            cells = [
                row["name"],
                _time(stats["mean"]),
                _time(stats["stddev"]),
            ]
            info = row.get("extra_info", {})
            cells.extend(
                format_value(info[k]) if k in info else ""
                for k in extra_keys
            )
            lines.append("| " + " | ".join(cells) + " |")
        lines.append("")
    return "\n".join(lines)


def _time(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f} µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.2f} s"


def render_chase(report: Dict) -> str:
    """Markdown table for a ``bench_chase.py`` comparison report."""
    lines = [
        f"### chase evaluation: naive vs semi-naive ({report['mode']})",
        "",
        "| workload | naive triggers | semi-naive triggers | reduction"
        " | naive time | semi-naive time | speedup | facts |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for row in report["workloads"]:
        naive, semi = row["naive"], row["semi_naive"]
        lines.append(
            "| "
            + " | ".join(
                [
                    row["workload"],
                    str(naive["triggers_enumerated"]),
                    str(semi["triggers_enumerated"]),
                    f"{row['trigger_reduction']:.1f}x",
                    _time(naive["wall_time"]),
                    _time(semi["wall_time"]),
                    f"{row['speedup']:.1f}x",
                    str(naive["facts"]),
                ]
            )
            + " |"
        )
    lines.append("")
    return "\n".join(lines)


def render_search(report: Dict) -> str:
    """Markdown table for a ``bench_search.py`` comparison report."""
    lines = [
        "### Algorithm 1 search: baseline vs incremental "
        f"({report['mode']})",
        "",
        "| scenario | baseline homs | incremental homs | reduction"
        " | baseline time | incremental time | speedup"
        " | best cost | nodes |",
        "|---|---|---|---|---|---|---|---|---|",
    ]
    for row in report["rows"]:
        base, incr = row["baseline"], row["incremental"]
        lines.append(
            "| "
            + " | ".join(
                [
                    row["scenario"],
                    str(base["domination"]["hom_calls"]),
                    str(incr["domination"]["hom_calls"]),
                    f"{row['hom_reduction']:.1f}x",
                    _time(base["wall_time"]),
                    _time(incr["wall_time"]),
                    f"{row['speedup']:.2f}x",
                    format_value(incr["best_cost"]),
                    str(incr["nodes_created"]),
                ]
            )
            + " |"
        )
    lines.append("")
    return "\n".join(lines)


def render_cost(report: Dict) -> str:
    """Markdown tables for a ``bench_cost.py`` comparison report."""
    lines = [
        "### cost model: feedback calibration on misleading fan-outs "
        f"({report['mode']})",
        "",
        "| scenario | true fan-out | uncalibrated pick | measured"
        " | calibrated pick | measured | improvement | flipped |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for row in report["calibration"]:
        uncal, cal = row["uncalibrated"], row["calibrated"]
        lines.append(
            "| "
            + " | ".join(
                [
                    row["scenario"],
                    str(row["fan_out"]),
                    "+".join(uncal["methods"]),
                    f"{uncal['measured_cost']:.2f}",
                    "+".join(cal["methods"]),
                    f"{cal['measured_cost']:.2f}",
                    f"{row['improvement']:.2f}x",
                    "yes" if row["flipped"] else "no",
                ]
            )
            + " |"
        )
    lines += [
        "",
        "### Algorithm 1: incumbent branch-and-bound pruning",
        "",
        "| scenario | expanded (off) | expanded (on) | reduction"
        " | bound-pruned | best plan |",
        "|---|---|---|---|---|---|",
    ]
    for row in report["pruning"]:
        lines.append(
            "| "
            + " | ".join(
                [
                    row["scenario"],
                    str(row["base_expanded"]),
                    str(row["pruned_expanded"]),
                    f"{row['reduction']:.2f}x",
                    str(row["pruned_by_bound"]),
                    "unchanged" if row["best_cost_equal"] else "CHANGED",
                ]
            )
            + " |"
        )
    admission = report["admission"]
    lines += [
        "",
        f"Admission: doomed plan rejected typed "
        f"(bound {admission['bound']:.0f} > ceiling "
        f"{admission['ceiling']}) after "
        f"{admission['source_invocations']} source invocations; "
        f"headline node reduction {report['node_reduction']:.2f}x, "
        "calibrated pick never measured worse: "
        f"{'yes' if report['calibrated_never_worse'] else 'NO'}.",
        "",
    ]
    return "\n".join(lines)


def render_exec(report: Dict) -> str:
    """Markdown table for a ``bench_execution.py`` comparison report."""
    lines = [
        "### plan execution: naive vs indexed+cached runtime "
        f"({report['mode']}, {report['rounds']} rounds/plan)",
        "",
        "| scenario | naive invocations | runtime invocations | reduction"
        " | naive time | runtime time | speedup"
        " | cache hits | peak resident rows |",
        "|---|---|---|---|---|---|---|---|---|",
    ]
    for row in report["rows"]:
        naive, runtime = row["naive"], row["runtime"]
        lines.append(
            "| "
            + " | ".join(
                [
                    row["scenario"],
                    str(naive["invocations"]),
                    str(runtime["invocations"]),
                    f"{row['invocation_reduction']:.1f}x",
                    _time(naive["wall_time"]),
                    _time(runtime["wall_time"]),
                    f"{row['speedup']:.2f}x",
                    str(runtime["cache_hits"]),
                    str(runtime["peak_resident_rows"]),
                ]
            )
            + " |"
        )
    lines.append("")
    if report.get("columnar_rows"):
        lines += [
            "### executor backends: interpreter vs columnar "
            "(row-heavy workloads, differential-verified)",
            "",
            "| rows/relation | answer rows | interpreter time"
            " | columnar time | speedup |",
            "|---|---|---|---|---|",
        ]
        for row in report["columnar_rows"]:
            lines.append(
                "| "
                + " | ".join(
                    [
                        str(row["rows_per_relation"]),
                        str(row["answer_rows"]),
                        _time(row["interpreter"]["wall_time"]),
                        _time(row["columnar"]["wall_time"]),
                        f"{row['executor_speedup']:.1f}x",
                    ]
                )
                + " |"
            )
        lines.append("")
    return "\n".join(lines)


def render_faults(report: Dict) -> str:
    """Markdown tables for a ``bench_faults.py`` report."""
    lines = [
        "### execution under faults: unprotected vs resilient "
        f"({report['mode']}, {report['scenario']}, "
        f"{report['retries']} retries)",
        "",
        "| fault rate | unprotected success | resilient success"
        " | identical answers | mean retries | mean backoff"
        " | mean simulated latency |",
        "|---|---|---|---|---|---|---|",
    ]
    for row in report["transient"]["rows"]:
        plain, hard = row["unprotected"], row["resilient"]
        lines.append(
            "| "
            + " | ".join(
                [
                    f"{row['rate']:.1f}",
                    f"{plain['success_rate']:.0%}",
                    f"{hard['success_rate']:.0%}",
                    "yes" if hard["identical_to_reference"] else "NO",
                    f"{hard['mean_retries']:.1f}",
                    _time(hard["mean_backoff"]),
                    _time(hard["mean_sim_latency"]),
                ]
            )
            + " |"
        )
    outage = report["outage"]
    lines += [
        "",
        f"### single permanent outage, served via failover "
        f"({outage['scenario']}: {outage['methods']} methods, "
        f"success rate {outage['success_rate']:.0%})",
        "",
        "| dead method | outcome | failovers | plans tried | answer rows |",
        "|---|---|---|---|---|",
    ]
    for row in outage["rows"]:
        lines.append(
            "| "
            + " | ".join(
                [
                    row["victim"],
                    row["outcome"],
                    str(row["failovers"]),
                    str(len(row["plans_tried"])),
                    str(row["rows"]),
                ]
            )
            + " |"
        )
    lines.append("")
    return "\n".join(lines)


def render_service(report: Dict) -> str:
    """Markdown tables for a ``bench_service.py`` report."""
    lines = [
        "### concurrent serving: throughput and latency vs workers "
        f"({report['mode']}, {report['scenario']}, "
        f"{report['throughput']['requests']} requests, "
        f"{report['access_latency'] * 1e3:.0f} ms access latency)",
        "",
        "| workers | throughput | speedup | p50 latency | p95 latency"
        " | p99 latency | identical answers |",
        "|---|---|---|---|---|---|---|",
    ]
    for row in report["throughput"]["rows"]:
        lines.append(
            "| "
            + " | ".join(
                [
                    str(row["workers"]),
                    f"{row['throughput_rps']:.1f} req/s",
                    f"{row['speedup']:.2f}x",
                    _time(row["p50_latency"]),
                    _time(row["p95_latency"]),
                    _time(row["p99_latency"]),
                    "yes" if row["identical_to_reference"] else "NO",
                ]
            )
            + " |"
        )
    lines += [
        "",
        "### load shedding under burst overload "
        "(served + shed + rejected == submitted, asserted)",
        "",
        "| offered load | submitted | served | shed (queued)"
        " | rejected at door | shed rate | all accounted |",
        "|---|---|---|---|---|---|---|",
    ]
    for row in report["shedding"]["rows"]:
        lines.append(
            "| "
            + " | ".join(
                [
                    f"{row['offered_multiplier']:.1f}x",
                    str(row["submitted"]),
                    str(row["served"]),
                    str(row["shed_queued"]),
                    str(row["rejected_at_door"]),
                    f"{row['shed_rate']:.0%}",
                    "yes" if row["all_accounted"] else "NO",
                ]
            )
            + " |"
        )
    lines.append("")
    return "\n".join(lines)


def render_chaos(report: Dict) -> str:
    """Markdown tables for a ``bench_chaos.py`` report."""
    lines = [
        f"### chaos matrix ({report['mode']}): every scenario terminates "
        "typed and sound",
        "",
        "| scenario | submitted | outcomes | typed errors | hangs"
        " | violations | elapsed / deadline |",
        "|---|---|---|---|---|---|---|",
    ]
    for row in report["matrix"]["rows"]:
        outcomes = ", ".join(
            f"{k}={v}" for k, v in sorted(row["outcomes"].items())
        )
        errors = (
            ", ".join(
                f"{k}={v}" for k, v in sorted(row["error_types"].items())
            )
            or "-"
        )
        lines.append(
            "| "
            + " | ".join(
                [
                    row["scenario"],
                    str(row["submitted"]),
                    outcomes,
                    errors,
                    str(row["hangs"]),
                    str(row["violations"]),
                    f"{_time(row['elapsed'])} / {row['deadline']:.0f} s",
                ]
            )
            + " |"
        )
    lines += [
        "",
        "### hedged dispatch vs the latency storm "
        "(identical answers, asserted row by row)",
        "",
        "| mode | requests | p50 | p95 | p99 | hedges (wins/waste) |",
        "|---|---|---|---|---|---|",
    ]
    for row in report["hedging"]["rows"]:
        lines.append(
            "| "
            + " | ".join(
                [
                    "hedged" if row["hedged"] else "unhedged",
                    str(row["requests"]),
                    _time(row["p50_latency"]),
                    _time(row["p95_latency"]),
                    _time(row["p99_latency"]),
                    f"{row['hedges']} ({row['hedge_wins']}"
                    f"/{row['hedge_waste']})",
                ]
            )
            + " |"
        )
    lines += [
        "",
        f"P99 reduction from hedging: **{report['p99_reduction']:.0%}**",
        "",
    ]
    return "\n".join(lines)


def render_parallel(report: Dict) -> str:
    """Markdown tables for a ``bench_parallel.py`` report."""
    scaling = report["scaling"]
    floor = report["scaling_floor"]
    cpu_note = (
        f"{report['cpu_count']} cores"
        + (", cpu-limited: scaling floor waived" if report["cpu_limited"]
           else "")
    )
    lines = [
        "### process execution tier: CPU-bound scaling past the GIL "
        f"({report['mode']}, {scaling['requests']} requests, "
        f"{scaling['rows_per_relation']} rows/relation, {cpu_note})",
        "",
        "| tier | workers | throughput | speedup | identical answers |",
        "|---|---|---|---|---|",
    ]
    for row in scaling["rows"]:
        lines.append(
            "| "
            + " | ".join(
                [
                    row["tier"],
                    str(row["workers"]),
                    f"{row['throughput_rps']:.2f} req/s",
                    f"{row['speedup']:.2f}x",
                    "yes" if row["identical_to_reference"] else "NO",
                ]
            )
            + " |"
        )
    if floor["required"]:
        lines.append(
            f"\nspeedup floor: >= {floor['min_speedup']:.1f}x at "
            f"{floor['workers']} workers, achieved "
            f"{floor['achieved']:.2f}x "
            f"({'held' if floor['held'] else 'VIOLATED'})"
        )
    else:
        lines.append(f"\nspeedup floor: waived ({floor['reason']})")
    cache = report["plan_cache"]
    lines += [
        "",
        "### fingerprint-keyed plan cache: repeated queries skip the "
        "search",
        "",
        "| distinct queries | submissions | searches run"
        " | search eliminated | cold plan | warm plan"
        " | restart searches (disk tier) |",
        "|---|---|---|---|---|---|---|",
        "| "
        + " | ".join(
            [
                str(cache["distinct_queries"]),
                str(cache["submissions"]),
                str(cache["searches_run"]),
                f"{cache['search_eliminated']:.1%}",
                f"{cache['cold_plan_ms']:.2f} ms",
                f"{cache['warm_plan_ms']:.4f} ms",
                str(cache["restart"].get("searches_after_restart", "-")),
            ]
        )
        + " |",
    ]
    sharding = report["sharding"]
    lines += [
        "",
        "### sharded source: partial scans merge to identical answers "
        f"({sharding['shards']} shards, "
        f"{sharding['rows_per_relation']} rows/relation, "
        f"partition sizes {sharding['partition_sizes']})",
        "",
        "| scan | wall time | identical answers | metered accesses |",
        "|---|---|---|---|",
    ]
    for row in sharding["rows"]:
        lines.append(
            "| "
            + " | ".join(
                [
                    "parallel" if row["parallel_scan"] else "serial",
                    _time(row["wall_time"]),
                    "yes" if row["identical_to_reference"] else "NO",
                    str(row["invocations"]),
                ]
            )
            + " |"
        )
    lines.append("")
    return "\n".join(lines)


def render_adapters(report: Dict) -> str:
    """Markdown tables for a ``bench_adapters.py`` report."""
    lines = [
        f"### real backends vs the in-memory oracle ({report['mode']}): "
        "byte-identical answers in every cell",
        "",
        "| scenario | backend | condition | answer rows | identical"
        " | accesses | reconnects | retry-after waits |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for row in report["differential"]["rows"]:
        counters = row["counters"]
        lines.append(
            "| "
            + " | ".join(
                [
                    row["scenario"],
                    row["backend"],
                    row["condition"],
                    str(row["answer_rows"]),
                    "yes" if row["identical"] else "NO",
                    str(row["accesses"]),
                    str(counters.get("reconnects", "-")),
                    str(counters.get("retry_after_waits", "-")),
                ]
            )
            + " |"
        )
    lines += [
        "",
        "### rate-limit compliance: paced vs unpaced against a policed "
        "web service",
        "",
        "| client | requests | server requests | over budget"
        " | retry-after waits | throughput | oracle-identical |",
        "|---|---|---|---|---|---|---|",
    ]
    for row in report["rate_limit"]["rows"]:
        lines.append(
            "| "
            + " | ".join(
                [
                    "paced" if row["paced"] else "unpaced",
                    str(row["requests"]),
                    str(row["server_requests"]),
                    str(row["over_budget"]),
                    str(row["retry_after_waits"]),
                    f"{row['throughput_rps']:.0f} req/s",
                    "yes" if row["identical_to_oracle"] else "NO",
                ]
            )
            + " |"
        )
    compliant = report["rate_limit"]["compliant"]
    lines += [
        "",
        "Paced client over-budget requests: "
        f"**{'zero (compliant)' if compliant else 'NONZERO'}**",
        "",
        "### adapter throughput (sequential plan executions)",
        "",
        "| backend | requests | throughput |",
        "|---|---|---|",
    ]
    for row in report["throughput"]["rows"]:
        lines.append(
            "| "
            + " | ".join(
                [
                    row["backend"],
                    str(row["requests"]),
                    f"{row['throughput_rps']:.0f} req/s",
                ]
            )
            + " |"
        )
    lines.append("")
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "path", nargs="?", default="bench.json",
        help="pytest-benchmark JSON file",
    )
    parser.add_argument(
        "--chase-json", metavar="PATH",
        help="render a bench_chase.py comparison report instead",
    )
    parser.add_argument(
        "--search-json", metavar="PATH",
        help="render a bench_search.py comparison report instead",
    )
    parser.add_argument(
        "--exec-json", metavar="PATH",
        help="render a bench_execution.py comparison report instead",
    )
    parser.add_argument(
        "--cost-json", metavar="PATH",
        help="render a bench_cost.py calibration/pruning report instead",
    )
    parser.add_argument(
        "--faults-json", metavar="PATH",
        help="render a bench_faults.py fault/failover report instead",
    )
    parser.add_argument(
        "--service-json", metavar="PATH",
        help="render a bench_service.py concurrency report instead",
    )
    parser.add_argument(
        "--parallel-json", metavar="PATH",
        help="render a bench_parallel.py process-tier report instead",
    )
    parser.add_argument(
        "--chaos-json", metavar="PATH",
        help="render a bench_chaos.py chaos/hedging report instead",
    )
    parser.add_argument(
        "--adapters-json", metavar="PATH",
        help="render a bench_adapters.py backend-differential report instead",
    )
    args = parser.parse_args()
    if args.adapters_json:
        with open(args.adapters_json) as handle:
            print(render_adapters(json.load(handle)))
        return 0
    if args.chaos_json:
        with open(args.chaos_json) as handle:
            print(render_chaos(json.load(handle)))
        return 0
    if args.parallel_json:
        with open(args.parallel_json) as handle:
            print(render_parallel(json.load(handle)))
        return 0
    if args.service_json:
        with open(args.service_json) as handle:
            print(render_service(json.load(handle)))
        return 0
    if args.faults_json:
        with open(args.faults_json) as handle:
            print(render_faults(json.load(handle)))
        return 0
    if args.chase_json:
        with open(args.chase_json) as handle:
            print(render_chase(json.load(handle)))
        return 0
    if args.search_json:
        with open(args.search_json) as handle:
            print(render_search(json.load(handle)))
        return 0
    if args.cost_json:
        with open(args.cost_json) as handle:
            print(render_cost(json.load(handle)))
        return 0
    if args.exec_json:
        with open(args.exec_json) as handle:
            print(render_exec(json.load(handle)))
        return 0
    print(render(load(args.path)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
