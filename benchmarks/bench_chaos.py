"""CHAOS: the scenario matrix plus the hedged-tail-latency comparison.

A standalone runner (``python benchmarks/bench_chaos.py``) that writes
the machine-readable ``BENCH_chaos.json`` (rendered by ``report.py
--chaos-json``):

* **scenario matrix** -- every deterministic chaos scenario from
  :mod:`repro.chaos` (worker kills, stalls, latency storms, bursty and
  permanent source outages, disk-tier corruption) run end to end
  against a live service, recording outcomes, elapsed-vs-deadline, and
  the invariant verdict.  The committed claim: zero hangs and zero
  violations -- every run terminates with byte-identical answers or a
  typed error / marked-partial response, asserted per scenario.
* **hedging sweep** -- the same request sequence served over a
  deterministic latency storm (every k-th access slow) with hedged
  dispatch off and on, recording p50/p95/p99 service latency.  The
  storm hits the same requests either way; the hedge duplicate dodges
  the slow tick, so the P99 drops while the answers stay byte-identical
  (asserted row by row).
"""

import argparse
import json
import sys

from repro.chaos import run_matrix
from repro.data.decorators import StormyLatencySource
from repro.data.source import InMemorySource
from repro.logic.queries import parse_cq
from repro.planner.search import SearchOptions, find_best_plan
from repro.schema.core import SchemaBuilder
from repro.data.instance import Instance
from repro.service import QueryService, ThreadWorkerPool


def percentile(sorted_values, fraction):
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(fraction * (len(sorted_values) - 1))
    )
    return sorted_values[index]


def canonical(table):
    return (table.attributes, tuple(sorted(map(repr, table.rows))))


def storm_workload():
    """A two-access join workload for the hedging sweep."""
    schema = (
        SchemaBuilder("hedging")
        .relation("R", 2)
        .relation("S", 2)
        .access("mt_R", "R", inputs=[], cost=1.0)
        .access("mt_S", "S", inputs=[], cost=1.0)
        .build()
    )
    instance = Instance(
        {
            "R": [(f"a{i}", f"b{i % 4}") for i in range(24)],
            "S": [(f"b{i % 4}", f"c{i}") for i in range(24)],
        }
    )
    query = parse_cq("q(a, c) :- R(a, b) & S(b, c)")
    result = find_best_plan(schema, query, SearchOptions(max_accesses=4))
    assert result.found
    return schema, instance, result.best_plan


# ------------------------------------------------------------ chaos matrix
def scenario_matrix(quick):
    """Every chaos scenario, with its invariant verdict, as table rows."""
    rows = []
    for report in run_matrix(seed=0, quick=quick):
        # The claims the committed report stands behind: every scenario
        # terminated inside its deadline with balanced books and only
        # oracle-exact, marked-partial, or typed outcomes.
        assert report.hangs == 0, report.summary()
        assert report.violations == [], [str(v) for v in report.violations]
        assert report.elapsed <= report.deadline, report.summary()
        rows.append(
            {
                "scenario": report.scenario,
                "submitted": report.submitted,
                "outcomes": dict(report.outcomes),
                "error_types": dict(report.error_types),
                "hangs": report.hangs,
                "violations": len(report.violations),
                "elapsed": report.elapsed,
                "deadline": report.deadline,
                "ok": report.ok,
            }
        )
    return rows


# ----------------------------------------------------------- hedging sweep
def hedging_sweep(requests, slow_every=5, slow_latency=0.25):
    """P50/P95/P99 of the same storm-ridden sequence, unhedged vs hedged.

    Requests are served *sequentially*, so the storm schedule (every
    ``slow_every``-th access sleeps ``slow_latency``) hits a
    deterministic subset of requests in the unhedged run; the hedged
    run duplicates exactly those requests after a fixed 50 ms delay and
    the duplicate, landing on later storm-counter ticks, answers fast.
    """
    schema, instance, plan = storm_workload()
    reference = canonical(plan.execute(InMemorySource(schema, instance)))
    rows = []
    answers = []
    for hedged in (False, True):
        source = StormyLatencySource(
            InMemorySource(schema, instance),
            base_latency=0.002,
            slow_latency=slow_latency,
            slow_every=slow_every,
        )
        pool = ThreadWorkerPool(
            source, workers=4, hedge=hedged, hedge_delay=0.05
        )
        service = QueryService(
            source, workers=2, max_queue=requests, worker_pool=pool
        )
        latencies = []
        with service:
            for _ in range(requests):
                response = service.serve(plan, timeout=60)
                assert response.complete, response.describe()
                assert canonical(response.table) == reference
                latencies.append(response.wall_time)
        tier = pool.health()
        latencies.sort()
        answers.append(reference)
        rows.append(
            {
                "hedged": hedged,
                "requests": requests,
                "slow_every": slow_every,
                "slow_latency": slow_latency,
                "p50_latency": percentile(latencies, 0.50),
                "p95_latency": percentile(latencies, 0.95),
                "p99_latency": percentile(latencies, 0.99),
                "mean_latency": sum(latencies) / len(latencies),
                "hedges": tier["hedges"],
                "hedge_wins": tier["hedge_wins"],
                "hedge_waste": tier["hedge_waste"],
                "identical_to_reference": True,
            }
        )
    assert answers[0] == answers[1]
    return rows


def run_benchmark(quick):
    """The full report dict (also asserting the invariants throughout)."""
    matrix = scenario_matrix(quick)
    assert all(row["ok"] for row in matrix)
    requests = 16 if quick else 48
    hedging = hedging_sweep(requests)
    unhedged, hedged = hedging
    # The committed tail-latency claim: hedging actually fired, won at
    # least once, and cut the P99 of an identical-answer sequence.
    assert hedged["hedges"] >= 1
    assert hedged["hedge_wins"] >= 1
    assert hedged["p99_latency"] < unhedged["p99_latency"], (
        hedged["p99_latency"],
        unhedged["p99_latency"],
    )
    return {
        "benchmark": "bench_chaos",
        "mode": "quick" if quick else "full",
        "matrix": {"rows": matrix},
        "hedging": {"rows": hedging},
        "p99_reduction": 1.0
        - hedged["p99_latency"] / unhedged["p99_latency"],
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="run the chaos matrix and the hedged-tail comparison"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small scenario sizes and a 16-request hedging sweep for CI",
    )
    parser.add_argument(
        "--output", default="BENCH_chaos.json", help="report destination"
    )
    args = parser.parse_args(argv)
    report = run_benchmark(args.quick)
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
    for row in report["matrix"]["rows"]:
        print(
            f"{row['scenario']}: {'OK' if row['ok'] else 'VIOLATED'} "
            f"({row['submitted']} submitted, {row['elapsed']:.2f}s"
            f"/{row['deadline']:.0f}s)"
        )
    for row in report["hedging"]["rows"]:
        label = "hedged" if row["hedged"] else "unhedged"
        print(
            f"{label}: p50 {row['p50_latency'] * 1e3:.1f} ms, "
            f"p99 {row['p99_latency'] * 1e3:.1f} ms "
            f"({row['hedges']} hedges, {row['hedge_wins']} wins)"
        )
    print(f"p99 reduction: {report['p99_reduction']:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
