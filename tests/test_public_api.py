"""The documented public API resolves and stays importable."""

import importlib

import pytest

import repro


class TestTopLevelAPI:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    def test_subpackages_import(self):
        for module in [
            "repro.logic",
            "repro.logic.analysis",
            "repro.schema",
            "repro.schema.serialize",
            "repro.chaos",
            "repro.chase",
            "repro.plans",
            "repro.plans.tools",
            "repro.data",
            "repro.data.decorators",
            "repro.cost",
            "repro.exec",
            "repro.planner",
            "repro.planner.inequalities",
            "repro.fo",
            "repro.fo.normalize",
            "repro.scenarios",
            "repro.service",
            "repro.cli",
        ]:
            importlib.import_module(module)

    def test_subpackage_alls_resolve(self):
        for module_name in [
            "repro.logic",
            "repro.schema",
            "repro.chaos",
            "repro.chase",
            "repro.plans",
            "repro.data",
            "repro.cost",
            "repro.exec",
            "repro.planner",
            "repro.fo",
            "repro.scenarios",
            "repro.service",
        ]:
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", ()):
                assert hasattr(module, name), f"{module_name}.{name}"

    def test_readme_quickstart_runs(self):
        """The README's quickstart snippet, executed verbatim-ish."""
        from repro import SchemaBuilder, SearchOptions, cq, find_best_plan

        schema = (
            SchemaBuilder("university")
            .relation("Profinfo", 3, ["eid", "onum", "lname"])
            .relation("Udirect", 2, ["eid", "lname"])
            .access("mt_prof", "Profinfo", inputs=[0], cost=2.0)
            .access("mt_udir", "Udirect", inputs=[], cost=1.0)
            .tgd("Profinfo(eid, onum, lname) -> Udirect(eid, lname)")
            .constant("smith")
            .build()
        )
        query = cq(
            ["?eid", "?onum"],
            [("Profinfo", ["?eid", "?onum", "smith"])],
        )
        result = find_best_plan(
            schema, query, SearchOptions(max_accesses=4)
        )
        assert result.found
        assert "mt_udir" in result.best_plan.describe()

    def test_every_public_callable_has_docstring(self):
        import inspect

        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(name)
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_every_public_definition_in_source_documented(self):
        """Repo-wide invariant: every public def/class has a docstring."""
        import ast
        import pathlib

        root = pathlib.Path(repro.__file__).parent
        undocumented = []
        for path in root.rglob("*.py"):
            tree = ast.parse(path.read_text())
            for node in ast.walk(tree):
                if isinstance(
                    node,
                    (ast.FunctionDef, ast.ClassDef, ast.AsyncFunctionDef),
                ):
                    if node.name.startswith("_"):
                        continue
                    if not ast.get_docstring(node):
                        undocumented.append(
                            f"{path.name}:{node.lineno} {node.name}"
                        )
        assert not undocumented, undocumented[:10]
