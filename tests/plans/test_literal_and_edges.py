"""Unit tests for the Literal expression and expression edge cases."""

import pytest

from repro.logic.terms import Constant
from repro.plans.expressions import (
    EvaluationError,
    Join,
    Literal,
    NamedTable,
    Project,
    Rename,
    Scan,
    Select,
    Singleton,
    Union,
)


A, B = Constant("a"), Constant("b")


class TestLiteral:
    def test_evaluates_to_its_table(self):
        table = NamedTable.from_rows(["v"], [(A,), (B,)])
        assert Literal(table).evaluate({}) is table

    def test_reads_no_tables(self):
        table = NamedTable.from_rows(["v"], [(A,)])
        assert Literal(table).tables_read() == frozenset()

    def test_static_attributes(self):
        table = NamedTable.from_rows(["x", "y"], [])
        assert Literal(table).attributes({}) == ("x", "y")

    def test_composes_with_operators(self):
        lit = Literal(NamedTable.from_rows(["v"], [(A,), (B,)]))
        expr = Union(lit, Literal(NamedTable.from_rows(["v"], [(A,)])))
        assert len(expr.evaluate({})) == 2

    def test_join_with_scan(self):
        lit = Literal(NamedTable.from_rows(["x"], [(A,)]))
        env = {"T": NamedTable.from_rows(["x", "y"], [(A, B), (B, A)])}
        result = Join(Scan("T"), lit).evaluate(env)
        assert result.rows == frozenset({(A, B)})

    def test_no_flags(self):
        lit = Literal(NamedTable.from_rows(["v"], []))
        assert not lit.uses_union
        assert not lit.uses_difference
        assert not lit.uses_inequality


class TestExpressionEdges:
    def test_empty_projection_of_nonempty_table(self):
        env = {"T": NamedTable.from_rows(["x"], [(A,)])}
        result = Project(Scan("T"), ()).evaluate(env)
        assert len(result) == 1  # the zero-attr TRUE row

    def test_empty_projection_of_empty_table(self):
        env = {"T": NamedTable.empty(["x"])}
        result = Project(Scan("T"), ()).evaluate(env)
        assert result.is_empty

    def test_select_on_empty(self):
        env = {"T": NamedTable.empty(["x"])}
        from repro.plans.expressions import EqConst

        result = Select(Scan("T"), (EqConst("x", A),)).evaluate(env)
        assert result.is_empty

    def test_rename_to_same_name_noop(self):
        env = {"T": NamedTable.from_rows(["x"], [(A,)])}
        result = Rename(Scan("T"), ()).evaluate(env)
        assert result.attributes == ("x",)

    def test_singleton_join_identity_both_sides(self):
        env = {"T": NamedTable.from_rows(["x"], [(A,)])}
        left = Join(Singleton(), Scan("T")).evaluate(env)
        right = Join(Scan("T"), Singleton()).evaluate(env)
        assert left.rows == right.rows == env["T"].rows

    def test_static_attributes_propagate(self):
        schema = {"T": ("x", "y")}
        expr = Project(
            Rename(Scan("T"), (("x", "u"),)), ("u",)
        )
        assert expr.attributes(schema) == ("u",)

    def test_static_attribute_error(self):
        schema = {"T": ("x", "y")}
        with pytest.raises(EvaluationError):
            Project(Scan("T"), ("zz",)).attributes(schema)

    def test_union_static_check(self):
        schema = {"T": ("x",), "U": ("y",)}
        with pytest.raises(EvaluationError):
            Union(Scan("T"), Scan("U")).attributes(schema)
