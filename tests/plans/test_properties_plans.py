"""Property-based tests for the plan layer.

Random expression trees over a fixed environment: serialization
round-trips preserve evaluation; dead-command elimination preserves
output; SQL rendering never crashes and mentions every referenced table.
"""

from __future__ import annotations

import json

from hypothesis import given, settings, strategies as st

from repro.logic.terms import Constant
from repro.plans.commands import MiddlewareCommand
from repro.plans.expressions import (
    Difference,
    Literal,
    EqAttr,
    EqConst,
    Join,
    NamedTable,
    Project,
    Rename,
    Scan,
    Select,
    Union,
)
from repro.plans.plan import Plan
from repro.plans.tools import (
    eliminate_dead_commands,
    plan_from_dict,
    plan_to_dict,
    to_sql,
)


A, B, C = Constant("a"), Constant("b"), Constant("c")

ENV_SCHEMA = {
    "T1": ("x", "y"),
    "T2": ("x", "y"),
    "T3": ("y", "z"),
}


def make_env():
    return {
        "T1": NamedTable.from_rows(["x", "y"], [(A, B), (B, C), (A, A)]),
        "T2": NamedTable.from_rows(["x", "y"], [(A, B), (C, C)]),
        "T3": NamedTable.from_rows(["y", "z"], [(B, C), (A, A)]),
    }


def seed_commands():
    """Middleware commands defining the fixed environment tables."""
    return tuple(
        MiddlewareCommand(name, Literal(table))
        for name, table in sorted(make_env().items())
    )


@st.composite
def expressions(draw, depth: int = 3):
    """Random well-typed expressions over the fixed environment."""
    if depth == 0:
        return Scan(draw(st.sampled_from(list(ENV_SCHEMA))))
    op = draw(
        st.sampled_from(
            ["scan", "project", "select", "rename", "join", "union",
             "difference"]
        )
    )
    if op == "scan":
        return Scan(draw(st.sampled_from(list(ENV_SCHEMA))))
    if op in ("union", "difference"):
        # Same-attribute operands: use T1/T2.
        left = Scan(draw(st.sampled_from(["T1", "T2"])))
        right = Scan(draw(st.sampled_from(["T1", "T2"])))
        return Union(left, right) if op == "union" else Difference(
            left, right
        )
    child = draw(expressions(depth=depth - 1))
    attrs = child.attributes(ENV_SCHEMA)
    if op == "project":
        if not attrs:
            return child
        keep = draw(
            st.lists(
                st.sampled_from(sorted(attrs)),
                min_size=1,
                max_size=len(attrs),
                unique=True,
            )
        )
        return Project(child, tuple(keep))
    if op == "select":
        if not attrs:
            return child
        attr = draw(st.sampled_from(sorted(attrs)))
        kind = draw(st.sampled_from(["const", "attr"]))
        if kind == "const":
            return Select(child, (EqConst(attr, draw(st.sampled_from([A, B, C]))),))
        other = draw(st.sampled_from(sorted(attrs)))
        if other == attr:
            return child
        return Select(child, (EqAttr(attr, other),))
    if op == "rename":
        if not attrs:
            return child
        attr = draw(st.sampled_from(sorted(attrs)))
        fresh = f"r_{attr}"
        if fresh in attrs:
            return child
        return Rename(child, ((attr, fresh),))
    if op == "join":
        other = draw(expressions(depth=depth - 1))
        return Join(child, other)
    raise AssertionError(op)


@given(expressions())
@settings(max_examples=80, deadline=None)
def test_static_attributes_agree_with_evaluation(expr):
    env = make_env()
    table = expr.evaluate(env)
    assert table.attributes == expr.attributes(ENV_SCHEMA)


@given(expressions())
@settings(max_examples=80, deadline=None)
def test_serialization_roundtrip_preserves_evaluation(expr):
    plan = Plan(
        seed_commands() + (MiddlewareCommand("OUT", expr),),
        "OUT",
    )
    env = make_env()
    data = json.loads(json.dumps(plan_to_dict(plan)))
    restored = plan_from_dict(data)
    # Evaluate both output expressions directly over the environment.
    original = plan.commands[-1].expr.evaluate(env)
    copied = restored.commands[-1].expr.evaluate(env)
    assert original.rows == copied.rows
    assert original.attributes == copied.attributes


@given(expressions())
@settings(max_examples=60, deadline=None)
def test_sql_rendering_total(expr):
    plan = Plan(
        seed_commands() + (MiddlewareCommand("OUT", expr),), "OUT"
    )
    sql = to_sql(plan)
    assert "CREATE TEMP TABLE OUT" in sql
    for table in expr.tables_read():
        assert table in sql


@given(expressions(), expressions())
@settings(max_examples=40, deadline=None)
def test_dead_command_elimination_preserves_output(live, dead):
    plan = Plan(
        seed_commands()
        + (
            MiddlewareCommand("DEAD", dead),
            MiddlewareCommand("OUT", live),
        ),
        "OUT",
    )
    cleaned = eliminate_dead_commands(plan)
    env = make_env()
    assert (
        cleaned.commands[-1].expr.evaluate(env).rows
        == live.evaluate(env).rows
    )
    # The dead command is gone unless the live expression reads it.
    if "DEAD" not in live.tables_read():
        assert all(c.target != "DEAD" for c in cleaned.commands)
