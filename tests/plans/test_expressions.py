"""Unit tests for RA expressions and NamedTable semantics."""

import pytest

from repro.logic.terms import Constant
from repro.plans.expressions import (
    Difference,
    EqAttr,
    EqConst,
    EvaluationError,
    Join,
    NamedTable,
    NeqAttr,
    NeqConst,
    Project,
    Rename,
    Scan,
    Select,
    Singleton,
    Union,
)


A, B, C, D = (Constant(v) for v in "abcd")


def table(attrs, rows):
    return NamedTable.from_rows(attrs, rows)


@pytest.fixture
def env():
    return {
        "R": table(["x", "y"], [(A, B), (A, C), (B, C)]),
        "S": table(["y", "z"], [(B, D), (C, D)]),
        "T": table(["x", "y"], [(A, B)]),
    }


class TestNamedTable:
    def test_duplicate_attribute_rejected(self):
        with pytest.raises(EvaluationError):
            NamedTable(("x", "x"), frozenset())

    def test_row_width_checked(self):
        with pytest.raises(EvaluationError):
            NamedTable(("x",), frozenset({(A, B)}))

    def test_singleton(self):
        t = NamedTable.singleton()
        assert t.attributes == ()
        assert len(t) == 1

    def test_project_deduplicates(self):
        t = table(["x", "y"], [(A, B), (A, C)])
        assert len(t.project(["x"])) == 1

    def test_project_reorders(self):
        t = table(["x", "y"], [(A, B)])
        assert t.project(["y", "x"]).rows == frozenset({(B, A)})

    def test_unknown_column(self):
        with pytest.raises(EvaluationError):
            table(["x"], []).column("zz")

    def test_rename(self):
        t = table(["x"], [(A,)]).rename({"x": "u"})
        assert t.attributes == ("u",)


class TestScanProjectSelect:
    def test_scan(self, env):
        assert Scan("R").evaluate(env) is env["R"]

    def test_scan_unknown_table(self, env):
        with pytest.raises(EvaluationError):
            Scan("ZZ").evaluate(env)

    def test_project(self, env):
        result = Project(Scan("R"), ("x",)).evaluate(env)
        assert result.rows == frozenset({(A,), (B,)})

    def test_project_unknown_attr_fails(self, env):
        with pytest.raises(EvaluationError):
            Project(Scan("R"), ("zz",)).evaluate(env)

    def test_select_eq_const(self, env):
        result = Select(Scan("R"), (EqConst("x", A),)).evaluate(env)
        assert len(result) == 2

    def test_select_eq_attr(self, env):
        t = {"U": table(["x", "y"], [(A, A), (A, B)])}
        result = Select(Scan("U"), (EqAttr("x", "y"),)).evaluate(t)
        assert result.rows == frozenset({(A, A)})

    def test_select_neq(self, env):
        result = Select(Scan("R"), (NeqConst("x", A),)).evaluate(env)
        assert result.rows == frozenset({(B, C)})

    def test_select_conjunction(self, env):
        result = Select(
            Scan("R"), (EqConst("x", A), EqConst("y", C))
        ).evaluate(env)
        assert result.rows == frozenset({(A, C)})


class TestJoin:
    def test_natural_join_on_shared_attr(self, env):
        result = Join(Scan("R"), Scan("S")).evaluate(env)
        assert result.attributes == ("x", "y", "z")
        assert result.rows == frozenset(
            {(A, B, D), (A, C, D), (B, C, D)}
        )

    def test_join_no_shared_attrs_is_product(self, env):
        t = {
            "L": table(["x"], [(A,), (B,)]),
            "M": table(["y"], [(C,)]),
        }
        result = Join(Scan("L"), Scan("M")).evaluate(t)
        assert len(result) == 2

    def test_join_with_singleton_identity(self, env):
        result = Join(Scan("R"), Singleton()).evaluate(env)
        assert result.rows == env["R"].rows

    def test_join_all_attrs_shared_is_intersection(self, env):
        result = Join(Scan("R"), Scan("T")).evaluate(env)
        assert result.rows == frozenset({(A, B)})


class TestUnionDifference:
    def test_union(self, env):
        result = Union(Scan("R"), Scan("T")).evaluate(env)
        assert result.rows == env["R"].rows

    def test_union_reorders_right(self):
        env = {
            "L": table(["x", "y"], [(A, B)]),
            "M": table(["y", "x"], [(C, D)]),
        }
        result = Union(Scan("L"), Scan("M")).evaluate(env)
        assert (D, C) in result.rows

    def test_union_mismatch_rejected(self, env):
        with pytest.raises(EvaluationError):
            Union(Scan("R"), Scan("S")).evaluate(env)

    def test_difference(self, env):
        result = Difference(Scan("R"), Scan("T")).evaluate(env)
        assert result.rows == frozenset({(A, C), (B, C)})

    def test_difference_mismatch_rejected(self, env):
        with pytest.raises(EvaluationError):
            Difference(Scan("R"), Scan("S")).evaluate(env)


class TestClassificationFlags:
    def test_spj_expression_flags(self, env):
        expr = Project(Select(Join(Scan("R"), Scan("S")), ()), ("x",))
        assert not expr.uses_union
        assert not expr.uses_difference
        assert not expr.uses_inequality

    def test_union_flag_propagates(self):
        expr = Project(Union(Scan("R"), Scan("T")), ("x",))
        assert expr.uses_union

    def test_difference_flag_propagates(self):
        expr = Select(Difference(Scan("R"), Scan("T")), ())
        assert expr.uses_difference

    def test_inequality_flag(self):
        expr = Select(Scan("R"), (NeqAttr("x", "y"),))
        assert expr.uses_inequality

    def test_tables_read(self):
        expr = Union(Join(Scan("R"), Scan("S")), Scan("T"))
        assert expr.tables_read() == {"R", "S", "T"}

    def test_rename_expression(self, env):
        expr = Rename(Scan("R"), (("x", "u"),))
        assert expr.evaluate(env).attributes == ("u", "y")
        assert expr.attributes({"R": ("x", "y")}) == ("u", "y")
