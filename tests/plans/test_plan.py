"""Unit tests for plan validation, execution and classification."""

import pytest

from repro.data.instance import Instance
from repro.data.source import InMemorySource
from repro.logic.terms import Constant
from repro.plans.commands import (
    AccessCommand,
    MiddlewareCommand,
    identity_output_map,
)
from repro.plans.expressions import (
    Difference,
    Join,
    Project,
    Scan,
    Select,
    Singleton,
    Union,
)
from repro.plans.plan import Plan, PlanKind, PlanValidationError
from repro.schema.core import SchemaBuilder


@pytest.fixture
def source():
    schema = (
        SchemaBuilder("s")
        .relation("R", 2)
        .relation("S", 2)
        .free_access("R")
        .free_access("S")
        .build()
    )
    instance = Instance(
        {"R": [("a", "1"), ("b", "2")], "S": [("a", "1"), ("c", "3")]}
    )
    return InMemorySource(schema, instance)


def scan_r(target="TR"):
    return AccessCommand(
        target, "mt_R", Singleton(), (), identity_output_map(("x", "y"))
    )


def scan_s(target="TS"):
    return AccessCommand(
        target, "mt_S", Singleton(), (), identity_output_map(("x", "y"))
    )


class TestValidation:
    def test_read_before_write_rejected(self):
        with pytest.raises(PlanValidationError):
            Plan(
                (MiddlewareCommand("T", Scan("MISSING")),),
                "T",
            )

    def test_missing_output_table_rejected(self):
        with pytest.raises(PlanValidationError):
            Plan((scan_r(),), "NOPE")

    def test_valid_sequence_accepted(self):
        plan = Plan(
            (scan_r(), MiddlewareCommand("T", Scan("TR"))), "T"
        )
        assert plan.output_table == "T"


class TestExecution:
    def test_run_returns_output_table(self, source):
        plan = Plan((scan_r(),), "TR")
        table = plan.run(source)
        assert len(table) == 2

    def test_run_with_env_exposes_temporaries(self, source):
        plan = Plan(
            (scan_r(), MiddlewareCommand("T", Project(Scan("TR"), ("x",)))),
            "T",
        )
        out, env = plan.run_with_env(source)
        assert set(env) == {"TR", "T"}
        assert len(out) == 2

    def test_join_pipeline(self, source):
        plan = Plan(
            (
                scan_r(),
                scan_s(),
                MiddlewareCommand("J", Join(Scan("TR"), Scan("TS"))),
            ),
            "J",
        )
        assert plan.run(source).rows == frozenset(
            {(Constant("a"), Constant("1"))}
        )


class TestClassification:
    def test_spj_plan(self, source):
        plan = Plan(
            (scan_r(), MiddlewareCommand("T", Select(Scan("TR"), ()))), "T"
        )
        assert plan.kind is PlanKind.SPJ

    def test_uspj_plan(self, source):
        plan = Plan(
            (
                scan_r(),
                scan_s(),
                MiddlewareCommand("T", Union(Scan("TR"), Scan("TS"))),
            ),
            "T",
        )
        assert plan.kind is PlanKind.USPJ

    def test_uspj_neg_plan(self, source):
        plan = Plan(
            (
                scan_r(),
                scan_s(),
                MiddlewareCommand("T", Difference(Scan("TR"), Scan("TS"))),
            ),
            "T",
        )
        assert plan.kind is PlanKind.USPJ_NEG

    def test_methods_used_in_order_with_repeats(self, source):
        plan = Plan((scan_r("T1"), scan_s("T2"), scan_r("T3")), "T3")
        assert plan.methods_used() == ("mt_R", "mt_S", "mt_R")

    def test_access_vs_middleware_partition(self, source):
        plan = Plan(
            (scan_r(), MiddlewareCommand("T", Scan("TR"))), "T"
        )
        assert len(plan.access_commands) == 1
        assert len(plan.middleware_commands) == 1

    def test_describe_lists_commands(self, source):
        plan = Plan((scan_r(),), "TR", name="demo")
        text = plan.describe()
        assert "demo" in text
        assert "mt_R" in text
