"""Unit tests for access and middleware command semantics."""

import pytest

from repro.data.instance import Instance
from repro.data.source import AccessViolation, InMemorySource
from repro.logic.terms import Constant
from repro.plans.commands import (
    AccessCommand,
    MiddlewareCommand,
    identity_output_map,
)
from repro.plans.expressions import (
    NamedTable,
    Project,
    Scan,
    Singleton,
)
from repro.schema.core import SchemaBuilder


A, B = Constant("a"), Constant("b")


@pytest.fixture
def source():
    schema = (
        SchemaBuilder("s")
        .relation("R", 3)
        .access("mt_key", "R", inputs=[0])
        .access("mt_scan", "R", inputs=[])
        .build()
    )
    instance = Instance(
        {
            "R": [
                ("a", "1", "x"),
                ("a", "2", "y"),
                ("b", "3", "x"),
            ]
        }
    )
    return InMemorySource(schema, instance)


class TestAccessCommand:
    def test_free_access_collects_everything(self, source):
        command = AccessCommand(
            "T", "mt_scan", Singleton(), (), identity_output_map(("p0", "p1", "p2"))
        )
        env = {}
        table = command.execute(env, source)
        assert len(table) == 3
        assert env["T"] is table

    def test_keyed_access_per_input_row(self, source):
        env = {"IN": NamedTable.from_rows(["k"], [(A,), (B,)])}
        command = AccessCommand(
            "T",
            "mt_key",
            Scan("IN"),
            ("k",),
            identity_output_map(("p0", "p1", "p2")),
        )
        table = command.execute(env, source)
        assert len(table) == 3
        assert source.total_invocations == 2

    def test_constant_input_binding(self, source):
        command = AccessCommand(
            "T",
            "mt_key",
            Singleton(),
            (Constant("a"),),
            identity_output_map(("p0", "p1", "p2")),
        )
        table = command.execute({}, source)
        assert len(table) == 2

    def test_input_rows_deduplicated_by_projection(self, source):
        env = {
            "IN": NamedTable.from_rows(
                ["k", "junk"], [(A, Constant("j1")), (A, Constant("j2"))]
            )
        }
        command = AccessCommand(
            "T",
            "mt_key",
            Scan("IN"),
            ("k",),
            identity_output_map(("p0", "p1", "p2")),
        )
        command.execute(env, source)
        assert source.total_invocations == 1  # projection deduplicates

    def test_empty_input_no_access(self, source):
        env = {"IN": NamedTable.empty(["k"])}
        command = AccessCommand(
            "T",
            "mt_key",
            Scan("IN"),
            ("k",),
            identity_output_map(("p0", "p1", "p2")),
        )
        table = command.execute(env, source)
        assert table.is_empty
        assert source.total_invocations == 0

    def test_output_duplication(self, source):
        # b_out maps position 0 to two attributes.
        command = AccessCommand(
            "T",
            "mt_scan",
            Singleton(),
            (),
            (("k1", (0,)), ("k2", (0,)), ("v", (2,))),
        )
        table = command.execute({}, source)
        for row in table.rows:
            assert row[0] == row[1]

    def test_output_equality_filter(self, source):
        # One attribute fed by positions 1 and 2: keeps rows where they agree.
        command = AccessCommand(
            "T", "mt_scan", Singleton(), (), (("same", (1, 2)),)
        )
        table = command.execute({}, source)
        assert table.is_empty  # no row has equal 2nd and 3rd columns

    def test_wrong_input_arity_raises(self, source):
        command = AccessCommand(
            "T", "mt_key", Singleton(), (), identity_output_map(("p0", "p1", "p2"))
        )
        with pytest.raises(AccessViolation):
            command.execute({}, source)


class TestMiddlewareCommand:
    def test_assigns_expression_result(self, source):
        env = {"IN": NamedTable.from_rows(["k"], [(A,), (B,)])}
        command = MiddlewareCommand("OUT", Project(Scan("IN"), ("k",)))
        table = command.execute(env, source)
        assert env["OUT"] is table
        assert len(table) == 2

    def test_no_access_cost(self, source):
        env = {"IN": NamedTable.from_rows(["k"], [(A,)])}
        MiddlewareCommand("OUT", Scan("IN")).execute(env, source)
        assert source.total_invocations == 0
