"""Tests for plan tools: dead-code elimination, SQL, serialization."""

import json

import pytest

from repro.data.instance import Instance
from repro.data.source import InMemorySource
from repro.logic.queries import cq
from repro.planner.search import SearchOptions, find_best_plan
from repro.plans.commands import (
    AccessCommand,
    MiddlewareCommand,
    identity_output_map,
)
from repro.plans.expressions import (
    Difference,
    EqConst,
    Join,
    Project,
    Rename,
    Scan,
    Select,
    Singleton,
    Union,
)
from repro.plans.plan import Plan
from repro.plans.tools import (
    eliminate_dead_commands,
    plan_from_dict,
    plan_to_dict,
    to_sql,
)
from repro.scenarios import example1, example5
from repro.schema.core import SchemaBuilder
from repro.logic.terms import Constant


@pytest.fixture
def simple_source():
    schema = (
        SchemaBuilder("s")
        .relation("R", 2)
        .free_access("R")
        .build()
    )
    return schema, InMemorySource(
        schema, Instance({"R": [("a", "1"), ("b", "2")]})
    )


def scan_r(target="TR"):
    return AccessCommand(
        target, "mt_R", Singleton(), (), identity_output_map(("x", "y"))
    )


class TestDeadCommandElimination:
    def test_unused_middleware_removed(self, simple_source):
        schema, source = simple_source
        plan = Plan(
            (
                scan_r(),
                MiddlewareCommand("DEAD", Project(Scan("TR"), ("x",))),
                MiddlewareCommand("OUT", Scan("TR")),
            ),
            "OUT",
        )
        cleaned = eliminate_dead_commands(plan)
        assert len(cleaned.commands) == 2
        assert cleaned.run(source).rows == plan.run(source).rows

    def test_unused_access_removed(self, simple_source):
        schema, source = simple_source
        plan = Plan(
            (
                scan_r("TR"),
                scan_r("UNREAD"),
                MiddlewareCommand("OUT", Scan("TR")),
            ),
            "OUT",
        )
        cleaned = eliminate_dead_commands(plan)
        assert len(cleaned.access_commands) == 1
        source.reset_log()
        cleaned.run(source)
        assert source.total_invocations == 1

    def test_chained_dependencies_kept(self, simple_source):
        schema, source = simple_source
        plan = Plan(
            (
                scan_r(),
                MiddlewareCommand("MID", Project(Scan("TR"), ("x",))),
                MiddlewareCommand("OUT", Scan("MID")),
            ),
            "OUT",
        )
        cleaned = eliminate_dead_commands(plan)
        assert len(cleaned.commands) == 3

    def test_redefined_table_keeps_live_earlier_definition(
        self, simple_source
    ):
        """Regression: a redefined target's *earlier* definition must be
        kept when a command between the two definitions reads it.

        The old backwards walk tracked a seen-target set, so the first
        ``T`` below was dropped even though ``X := π[x](T)`` reads it --
        producing a plan that fails def-before-use validation.
        """
        schema, source = simple_source
        plan = Plan(
            (
                scan_r("TR"),
                MiddlewareCommand("T", Scan("TR")),
                MiddlewareCommand("X", Project(Scan("T"), ("x",))),
                MiddlewareCommand(
                    "T",
                    Select(Scan("TR"), (EqConst("x", Constant("a")),)),
                ),
                MiddlewareCommand("OUT", Join(Scan("X"), Scan("T"))),
            ),
            "OUT",
        )
        cleaned = eliminate_dead_commands(plan)
        # Every command is live: nothing may be dropped.
        assert len(cleaned.commands) == len(plan.commands)
        assert cleaned.run(source).rows == plan.run(source).rows

    def test_redefined_table_drops_shadowed_definition(self, simple_source):
        """A redefinition with no reader in between shadows the earlier
        definition, which is then dead and removed."""
        schema, source = simple_source
        plan = Plan(
            (
                scan_r("TR"),
                MiddlewareCommand("T", Project(Scan("TR"), ("x",))),
                MiddlewareCommand("T", Scan("TR")),
                MiddlewareCommand("OUT", Scan("T")),
            ),
            "OUT",
        )
        cleaned = eliminate_dead_commands(plan)
        assert len(cleaned.commands) == 3
        assert cleaned.run(source).rows == plan.run(source).rows

    def test_self_reading_redefinition_kept(self, simple_source):
        """``T := σ(T)`` reads its own target: both definitions stay."""
        schema, source = simple_source
        plan = Plan(
            (
                scan_r("TR"),
                MiddlewareCommand("T", Scan("TR")),
                MiddlewareCommand(
                    "T",
                    Select(Scan("T"), (EqConst("x", Constant("a")),)),
                ),
                MiddlewareCommand("OUT", Scan("T")),
            ),
            "OUT",
        )
        cleaned = eliminate_dead_commands(plan)
        assert len(cleaned.commands) == 4
        assert cleaned.run(source).rows == plan.run(source).rows

    def test_search_plans_are_already_lean(self):
        scenario = example1()
        plan = find_best_plan(scenario.schema, scenario.query).best_plan
        cleaned = eliminate_dead_commands(plan)
        # The generator produces no dead commands for linear proofs.
        assert len(cleaned.commands) == len(plan.commands)

    def test_semantics_preserved_on_real_plan(self):
        scenario = example5(sources=3, professors=5, noise_per_source=5)
        plan = find_best_plan(
            scenario.schema, scenario.query, SearchOptions(max_accesses=4)
        ).best_plan
        cleaned = eliminate_dead_commands(plan)
        instance = scenario.instance(0)
        a = plan.run(InMemorySource(scenario.schema, instance))
        b = cleaned.run(InMemorySource(scenario.schema, instance))
        assert a.rows == b.rows


class TestSQLRendering:
    def test_mentions_every_temp_table(self):
        scenario = example1()
        plan = find_best_plan(scenario.schema, scenario.query).best_plan
        sql = to_sql(plan)
        for command in plan.commands:
            assert command.target in sql
        assert "SELECT * FROM T_fin" in sql

    def test_access_commands_rendered_as_comments(self):
        scenario = example1()
        plan = find_best_plan(scenario.schema, scenario.query).best_plan
        sql = to_sql(plan)
        assert "-- A0: invoke access method mt_udir" in sql

    def test_all_operators_covered(self, simple_source):
        plan = Plan(
            (
                scan_r("T1"),
                scan_r("T2"),
                MiddlewareCommand(
                    "U", Union(Scan("T1"), Scan("T2"))
                ),
                MiddlewareCommand(
                    "D", Difference(Scan("U"), Scan("T1"))
                ),
                MiddlewareCommand(
                    "J",
                    Join(
                        Select(Scan("D"), (EqConst("x", Constant("a")),)),
                        Rename(Scan("T1"), (("y", "z"),)),
                    ),
                ),
            ),
            "J",
        )
        sql = to_sql(plan)
        for keyword in ("UNION", "EXCEPT", "NATURAL JOIN", "WHERE", "AS"):
            assert keyword in sql


class TestSerialization:
    def roundtrip(self, plan):
        data = json.loads(json.dumps(plan_to_dict(plan)))
        return plan_from_dict(data)

    def test_roundtrip_preserves_structure(self):
        scenario = example1()
        plan = find_best_plan(scenario.schema, scenario.query).best_plan
        restored = self.roundtrip(plan)
        assert restored.output_table == plan.output_table
        assert len(restored.commands) == len(plan.commands)
        assert restored.methods_used() == plan.methods_used()

    def test_roundtrip_preserves_semantics(self):
        scenario = example1()
        plan = find_best_plan(scenario.schema, scenario.query).best_plan
        restored = self.roundtrip(plan)
        instance = scenario.instance(0)
        a = plan.run(InMemorySource(scenario.schema, instance))
        b = restored.run(InMemorySource(scenario.schema, instance))
        assert a.rows == b.rows

    def test_roundtrip_constant_binding(self, simple_source):
        schema, source = simple_source
        schema2 = (
            SchemaBuilder("s2")
            .relation("R", 2)
            .access("mt_k", "R", inputs=[0])
            .build()
        )
        plan = Plan(
            (
                AccessCommand(
                    "T",
                    "mt_k",
                    Singleton(),
                    (Constant("a"),),
                    identity_output_map(("p0", "p1")),
                ),
            ),
            "T",
        )
        restored = self.roundtrip(plan)
        src = InMemorySource(
            schema2, Instance({"R": [("a", "1"), ("b", "2")]})
        )
        assert len(restored.run(src)) == 1

    def test_roundtrip_all_expression_ops(self):
        plan = Plan(
            (
                scan_r("T1"),
                scan_r("T2"),
                MiddlewareCommand(
                    "OUT",
                    Union(
                        Project(
                            Select(
                                Scan("T1"),
                                (EqConst("x", Constant("a")),),
                            ),
                            ("x", "y"),
                        ),
                        Difference(
                            Rename(Scan("T2"), ()),
                            Scan("T1"),
                        ),
                    ),
                ),
            ),
            "OUT",
        )
        restored = self.roundtrip(plan)
        assert len(restored.commands) == 3
