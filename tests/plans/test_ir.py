"""The plan IR: canonical JSON round-trips, golden files, fingerprints.

Every plan must lower to a JSON document (:func:`plan_to_ir` /
:class:`PlanIR`) and come back as an *identically-executing* plan --
the interchange contract the columnar backend and any future
out-of-process tier rely on.  The golden files under
``tests/plans/golden/`` pin the canonical serialization: a byte-level
change there is a wire-format break and must bump ``IR_VERSION``.
"""

import json
from pathlib import Path

import pytest

from repro.data.instance import Instance
from repro.data.source import InMemorySource
from repro.logic.terms import Constant, Null
from repro.plans.commands import (
    AccessCommand,
    MiddlewareCommand,
    identity_output_map,
)
from repro.plans.expressions import (
    Difference,
    EqAttr,
    EqConst,
    Join,
    Literal,
    NamedTable,
    NeqAttr,
    NeqConst,
    Project,
    Rename,
    Scan,
    Select,
    Singleton,
    Union,
)
from repro.plans.ir import (
    IR_VERSION,
    PlanIR,
    PlanIRError,
    condition_from_ir,
    condition_to_ir,
    expr_from_ir,
    expr_to_ir,
    ir_to_plan,
    plan_to_ir,
    table_from_ir,
    table_to_ir,
    term_from_ir,
    term_to_ir,
)
from repro.plans.plan import Plan
from repro.schema.core import SchemaBuilder

GOLDEN = Path(__file__).parent / "golden"


@pytest.fixture
def schema():
    return (
        SchemaBuilder("s")
        .relation("R", 2)
        .relation("S", 2)
        .access("mt_R", "R", inputs=[], cost=1.0)
        .access("mt_S", "S", inputs=[0], cost=2.0)
        .build()
    )


@pytest.fixture
def source(schema):
    instance = Instance(
        {
            "R": [("a", "1"), ("b", "2"), ("c", "1")],
            "S": [("a", "left"), ("b", "right"), ("z", "none")],
        }
    )
    return InMemorySource(schema, instance)


def kitchen_sink_plan() -> Plan:
    """One plan exercising every IR construct."""
    lit = Literal(
        NamedTable(
            ("x", "v"),
            frozenset({(Constant("extra"), Constant("row"))}),
        )
    )
    return Plan(
        (
            AccessCommand(
                "T_R", "mt_R", Singleton(), (), identity_output_map(("x", "y"))
            ),
            AccessCommand(
                "T_S",
                "mt_S",
                Project(Scan("T_R"), ("x",)),
                ("x",),
                identity_output_map(("x", "v")),
            ),
            MiddlewareCommand(
                "T_J",
                Project(
                    Select(
                        Join(
                            Scan("T_R"),
                            Rename(Scan("T_S"), (("v", "w"),)),
                        ),
                        (
                            NeqConst("w", Constant("none")),
                            EqAttr("x", "x"),
                        ),
                    ),
                    ("x", "w"),
                ),
            ),
            MiddlewareCommand(
                "OUT",
                Difference(
                    Union(
                        Rename(Scan("T_J"), (("w", "v"),)),
                        lit,
                    ),
                    Rename(
                        Select(
                            Scan("T_J"), (EqConst("x", Constant("zzz")),)
                        ),
                        (("w", "v"),),
                    ),
                ),
            ),
        ),
        "OUT",
        name="kitchen-sink",
    )


class TestTermRoundTrip:
    @pytest.mark.parametrize(
        "term",
        [
            Constant("a"),
            Constant(7),
            Constant(2.5),
            Constant(True),
            Null("n3"),
        ],
    )
    def test_round_trip(self, term):
        assert term_from_ir(term_to_ir(term)) == term

    def test_unknown_kind_rejected(self):
        with pytest.raises(PlanIRError):
            term_from_ir({"k": "variable", "v": "x"})


class TestConditionRoundTrip:
    @pytest.mark.parametrize(
        "condition",
        [
            EqAttr("a", "b"),
            NeqAttr("a", "b"),
            EqConst("a", Constant("v")),
            NeqConst("a", Constant(3)),
        ],
    )
    def test_round_trip(self, condition):
        assert condition_from_ir(condition_to_ir(condition)) == condition

    def test_custom_condition_rejected(self):
        class Weird:
            def holds(self, table, row):
                return True

        with pytest.raises(PlanIRError):
            condition_to_ir(Weird())


class TestExpressionRoundTrip:
    def test_every_operator(self):
        for command in kitchen_sink_plan().commands:
            expr = (
                command.input_expr
                if isinstance(command, AccessCommand)
                else command.expr
            )
            assert expr_from_ir(expr_to_ir(expr)) == expr

    def test_literal_rows_are_sorted_in_ir(self):
        lit = Literal(
            NamedTable(
                ("x",),
                frozenset({(Constant(c),) for c in "dbca"}),
            )
        )
        ir = expr_to_ir(lit)
        values = [row[0]["v"] for row in ir["rows"]]
        assert values == sorted(values)


class TestPlanRoundTrip:
    def test_ir_reconstructs_equal_plan(self):
        plan = kitchen_sink_plan()
        assert ir_to_plan(plan_to_ir(plan)) == plan

    def test_json_round_trip_executes_identically(self, source):
        plan = kitchen_sink_plan()
        text = PlanIR.from_plan(plan).to_json(indent=2)
        revived = PlanIR.from_json(text).to_plan()
        assert revived == plan
        assert revived.execute(source).rows == plan.execute(source).rows
        assert (
            revived.execute(source, executor="columnar").rows
            == plan.execute(source).rows
        )

    def test_fingerprint_is_stable_and_discriminating(self):
        plan = kitchen_sink_plan()
        a = PlanIR.from_plan(plan).fingerprint()
        b = PlanIR.from_plan(kitchen_sink_plan()).fingerprint()
        assert a == b
        other = Plan(plan.commands, "T_J", name="kitchen-sink")
        assert PlanIR.from_plan(other).fingerprint() != a

    def test_version_mismatch_rejected(self):
        plan = kitchen_sink_plan()
        ir = plan_to_ir(plan)
        ir["version"] = IR_VERSION + 1
        with pytest.raises(PlanIRError):
            ir_to_plan(ir)
        with pytest.raises(PlanIRError):
            PlanIR.from_json(json.dumps(ir))

    def test_not_a_plan_document_rejected(self):
        with pytest.raises(PlanIRError):
            PlanIR.from_json(json.dumps({"hello": "world"}))


class TestGoldenFiles:
    """Byte-level pins of the canonical wire format."""

    def test_kitchen_sink_matches_golden(self):
        golden = (GOLDEN / "kitchen_sink.json").read_text()
        current = PlanIR.from_plan(kitchen_sink_plan()).to_json(indent=2)
        assert current == golden.rstrip("\n"), (
            "canonical plan IR serialization changed -- if intentional, "
            "bump IR_VERSION and regenerate tests/plans/golden/"
        )

    def test_golden_revives_and_executes(self, source):
        plan = PlanIR.from_json(
            (GOLDEN / "kitchen_sink.json").read_text()
        ).to_plan()
        reference = kitchen_sink_plan().execute(source)
        assert plan.execute(source).rows == reference.rows
        assert (
            plan.execute(source, executor="differential").rows
            == reference.rows
        )


class TestSearchPlansSerialize:
    """Every planner-produced plan must round-trip through JSON."""

    def test_scenario_plans_round_trip(self):
        from repro.planner.search import SearchOptions, find_best_plan
        from repro.scenarios import example1, example2, example5

        for factory, budget in [(example1, 3), (example2, 4), (example5, 4)]:
            scenario = factory()
            result = find_best_plan(
                scenario.schema,
                scenario.query,
                SearchOptions(max_accesses=budget),
            )
            assert result.found
            plan = result.best_plan
            revived = PlanIR.from_json(
                PlanIR.from_plan(plan).to_json()
            ).to_plan()
            assert revived == plan


class TestTableIR:
    """Answer tables ship across the process boundary as plain dicts."""

    def test_table_round_trips_through_json(self, source):
        table = kitchen_sink_plan().execute(source)
        shipped = json.loads(json.dumps(table_to_ir(table)))
        revived = table_from_ir(shipped)
        assert revived.attributes == table.attributes
        assert revived.rows == table.rows

    def test_table_ir_rows_are_sorted(self, source):
        table = kitchen_sink_plan().execute(source)
        ir = table_to_ir(table)
        assert ir["rows"] == sorted(ir["rows"], key=repr)

    def test_empty_table_round_trips(self, source):
        table = kitchen_sink_plan().execute(source)
        empty = type(table)(table.attributes, frozenset())
        revived = table_from_ir(table_to_ir(empty))
        assert revived.attributes == table.attributes
        assert revived.rows == frozenset()
