"""Tests for the union-of-plans combinator (the U of USPJ plans)."""

import pytest

from repro.data.instance import Instance
from repro.data.source import InMemorySource
from repro.logic.queries import cq
from repro.logic.terms import Constant
from repro.planner.search import SearchOptions, find_best_plan
from repro.plans.plan import PlanKind
from repro.plans.tools import union_plans
from repro.schema.core import SchemaBuilder


@pytest.fixture
def two_source_schema():
    """Two freely accessible copies of the same logical feed."""
    return (
        SchemaBuilder("s")
        .relation("FeedA", 2)
        .relation("FeedB", 2)
        .free_access("FeedA")
        .free_access("FeedB")
        .build()
    )


class TestUnionPlans:
    def test_union_of_single_plan_is_identity_semantics(
        self, two_source_schema
    ):
        query = cq(["?x", "?y"], [("FeedA", ["?x", "?y"])])
        plan = find_best_plan(two_source_schema, query).best_plan
        combined = union_plans([plan])
        instance = Instance({"FeedA": [("a", "1")], "FeedB": []})
        a = plan.run(InMemorySource(two_source_schema, instance))
        b = combined.run(InMemorySource(two_source_schema, instance))
        assert a.rows == set(b.rows) == b.rows

    def test_union_merges_two_feeds(self, two_source_schema):
        plan_a = find_best_plan(
            two_source_schema,
            cq(["?x", "?y"], [("FeedA", ["?x", "?y"])], name="QA"),
        ).best_plan
        plan_b = find_best_plan(
            two_source_schema,
            cq(["?x", "?y"], [("FeedB", ["?x", "?y"])], name="QB"),
        ).best_plan
        # Align output attribute names: rename B's outputs to A's.
        combined = union_plans([plan_a, _realign(plan_b, plan_a)])
        instance = Instance(
            {"FeedA": [("a", "1")], "FeedB": [("b", "2"), ("a", "1")]}
        )
        out = combined.run(InMemorySource(two_source_schema, instance))
        assert len(out) == 2
        assert combined.kind is PlanKind.USPJ

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            union_plans([])

    def test_temporary_tables_renamed_apart(self, two_source_schema):
        query = cq(["?x", "?y"], [("FeedA", ["?x", "?y"])])
        plan = find_best_plan(two_source_schema, query).best_plan
        combined = union_plans([plan, plan])
        targets = [c.target for c in combined.commands]
        assert len(targets) == len(set(targets))

    def test_union_of_complete_plans_complete(self, two_source_schema):
        """Both branches answer the same query: union stays complete."""
        query = cq(["?x", "?y"], [("FeedA", ["?x", "?y"])], name="Q")
        plan = find_best_plan(two_source_schema, query).best_plan
        combined = union_plans([plan, plan])
        instance = Instance({"FeedA": [("a", "1"), ("b", "2")]})
        out = combined.run(InMemorySource(two_source_schema, instance))
        assert set(out.rows) == instance.evaluate(query)


def _realign(plan, reference):
    """Rename plan's output table attrs to match the reference plan.

    Both plans here project canonical nulls named after their query; a
    rename middleware is appended.
    """
    from repro.plans.commands import MiddlewareCommand
    from repro.plans.expressions import Rename, Scan
    from repro.plans.plan import Plan

    ref_attrs = reference.commands[-1].expr.attrs
    own_attrs = plan.commands[-1].expr.attrs
    mapping = tuple(zip(own_attrs, ref_attrs))
    commands = plan.commands + (
        MiddlewareCommand(
            "T_aligned", Rename(Scan(plan.output_table), mapping)
        ),
    )
    return Plan(commands, "T_aligned", name=plan.name)
