"""Unit tests for the chase fixpoint engine and its safety valves."""

import pytest

from repro.chase.blocking import BlockingPolicy
from repro.chase.configuration import ChaseConfiguration
from repro.chase.engine import (
    ChasePolicy,
    NonTerminatingChaseError,
    chase_to_fixpoint,
    saturate,
)
from repro.logic.atoms import Atom
from repro.logic.dependencies import parse_tgd
from repro.logic.terms import Constant, NullFactory


A, B = Constant("a"), Constant("b")


class TestFixpoint:
    def test_linear_chain_terminates(self):
        rules = [
            parse_tgd("R(x) -> S(x)"),
            parse_tgd("S(x) -> T(x)"),
        ]
        config = ChaseConfiguration([Atom("R", (A,))])
        result = chase_to_fixpoint(config, rules, NullFactory("t"))
        assert result.reached_fixpoint
        assert result.is_complete
        assert Atom("T", (A,)) in config
        assert result.firings == 2

    def test_terminating_existential_chase(self):
        rules = [parse_tgd("R(x) -> S(x, y)"), parse_tgd("S(x, y) -> T(y)")]
        config = ChaseConfiguration([Atom("R", (A,))])
        result = chase_to_fixpoint(config, rules, NullFactory("t"))
        assert result.reached_fixpoint
        assert len(config.facts_of("T")) == 1

    def test_restricted_chase_reuses_witnesses(self):
        # R(a) and S(a,b) present: R(x)->S(x,y) must not fire.
        rules = [parse_tgd("R(x) -> S(x, y)")]
        config = ChaseConfiguration([Atom("R", (A,)), Atom("S", (A, B))])
        result = chase_to_fixpoint(config, rules, NullFactory("t"))
        assert result.firings == 0

    def test_firing_budget_stops(self):
        # Cyclic existential chase: diverges without a budget.
        rules = [parse_tgd("R(x, y) -> R(y, z)")]
        config = ChaseConfiguration([Atom("R", (A, B))])
        policy = ChasePolicy(max_firings=25)
        result = chase_to_fixpoint(config, rules, NullFactory("t"), policy)
        assert not result.reached_fixpoint
        assert result.firings == 25

    def test_firing_budget_raises_when_asked(self):
        rules = [parse_tgd("R(x, y) -> R(y, z)")]
        config = ChaseConfiguration([Atom("R", (A, B))])
        policy = ChasePolicy(max_firings=10, raise_on_budget=True)
        with pytest.raises(NonTerminatingChaseError):
            chase_to_fixpoint(config, rules, NullFactory("t"), policy)

    def test_depth_bound_truncates(self):
        rules = [parse_tgd("R(x, y) -> R(y, z)")]
        config = ChaseConfiguration([Atom("R", (A, B))])
        policy = ChasePolicy(max_depth=3)
        result = chase_to_fixpoint(config, rules, NullFactory("t"), policy)
        assert result.reached_fixpoint  # no more *allowed* triggers
        assert result.depth_truncated > 0
        assert not result.is_complete
        assert all(config.depth(f) <= 3 for f in config)

    def test_blocking_terminates_cyclic_guarded_chase(self):
        # Classic diverging ID cycle: R(x,y) -> R(y,z).
        rules = [parse_tgd("R(x, y) -> R(y, z)")]
        config = ChaseConfiguration([Atom("R", (A, B))])
        policy = ChasePolicy(
            max_firings=10_000, blocking=BlockingPolicy(enabled=True)
        )
        result = chase_to_fixpoint(config, rules, NullFactory("t"), policy)
        assert result.reached_fixpoint
        assert result.blocked > 0
        assert result.firings < 10  # tiny model, not 10k firings

    def test_two_way_cycle_with_blocking(self):
        rules = [
            parse_tgd("P(x) -> E(x, y)"),
            parse_tgd("E(x, y) -> P(y)"),
        ]
        config = ChaseConfiguration([Atom("P", (A,))])
        policy = ChasePolicy(blocking=BlockingPolicy(enabled=True))
        result = chase_to_fixpoint(config, rules, NullFactory("t"), policy)
        assert result.reached_fixpoint

    def test_saturate_is_fixpoint_alias(self):
        rules = [parse_tgd("R(x) -> S(x)")]
        config = ChaseConfiguration([Atom("R", (A,))])
        result = saturate(config, rules, NullFactory("t"))
        assert result.reached_fixpoint
        assert Atom("S", (A,)) in config


class TestPolicy:
    def test_for_saturation_never_raises(self):
        policy = ChasePolicy(raise_on_budget=True).for_saturation()
        assert not policy.raise_on_budget

    def test_result_is_complete_semantics(self):
        from repro.chase.engine import ChaseResult

        assert ChaseResult(True).is_complete
        assert not ChaseResult(True, blocked=1).is_complete
        assert not ChaseResult(False).is_complete
