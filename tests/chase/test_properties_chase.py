"""Property-based tests for the chase engine."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.chase.configuration import ChaseConfiguration
from repro.chase.engine import ChasePolicy, chase_to_fixpoint
from repro.chase.firing import find_triggers
from repro.logic.atoms import Atom
from repro.logic.dependencies import TGD
from repro.logic.terms import Constant, NullFactory, Variable


VARS = [Variable(n) for n in "xyz"]
CONSTS = [Constant(f"c{i}") for i in range(4)]
RELATIONS = ["R2", "S2", "T1"]


def _arity(relation: str) -> int:
    return int(relation[-1])


@st.composite
def full_tgds(draw):
    """Random *full* TGDs (no existentials): chase always terminates."""
    body_rel = draw(st.sampled_from(RELATIONS))
    body_terms = tuple(
        draw(st.sampled_from(VARS)) for _ in range(_arity(body_rel))
    )
    body = (Atom(body_rel, body_terms),)
    body_vars = [t for t in body_terms if isinstance(t, Variable)]
    head_rel = draw(st.sampled_from(RELATIONS))
    pool = body_vars + CONSTS[:1] if body_vars else CONSTS[:1]
    head_terms = tuple(
        draw(st.sampled_from(pool)) for _ in range(_arity(head_rel))
    )
    return TGD(body, (Atom(head_rel, head_terms),))


@st.composite
def fact_sets(draw):
    facts = []
    for _ in range(draw(st.integers(1, 6))):
        relation = draw(st.sampled_from(RELATIONS))
        terms = tuple(
            draw(st.sampled_from(CONSTS)) for _ in range(_arity(relation))
        )
        facts.append(Atom(relation, terms))
    return facts


@given(st.lists(full_tgds(), min_size=1, max_size=4), fact_sets())
@settings(max_examples=60, deadline=None)
def test_full_tgd_chase_reaches_genuine_fixpoint(rules, facts):
    config = ChaseConfiguration(facts)
    result = chase_to_fixpoint(config, rules, NullFactory("t"))
    assert result.reached_fixpoint
    # Fixpoint means no rule has any remaining candidate match.
    for rule in rules:
        assert not list(find_triggers(rule, config))


@given(st.lists(full_tgds(), min_size=1, max_size=4), fact_sets())
@settings(max_examples=60, deadline=None)
def test_chase_only_adds_facts(rules, facts):
    config = ChaseConfiguration(facts)
    before = set(config)
    chase_to_fixpoint(config, rules, NullFactory("t"))
    assert before <= set(config)


@given(st.lists(full_tgds(), min_size=1, max_size=3), fact_sets())
@settings(max_examples=40, deadline=None)
def test_chase_deterministic_for_full_tgds(rules, facts):
    """Full-TGD chase is confluent: same fixpoint regardless of restarts."""
    config_a = ChaseConfiguration(facts)
    chase_to_fixpoint(config_a, rules, NullFactory("a"))
    config_b = ChaseConfiguration(facts)
    chase_to_fixpoint(config_b, list(reversed(rules)), NullFactory("b"))
    assert set(config_a) == set(config_b)


@given(fact_sets())
@settings(max_examples=30, deadline=None)
def test_depth_zero_for_initial_facts(facts):
    config = ChaseConfiguration(facts)
    assert all(config.depth(fact) == 0 for fact in config)


@given(st.lists(full_tgds(), min_size=1, max_size=3), fact_sets())
@settings(max_examples=40, deadline=None)
def test_derived_facts_have_positive_depth(rules, facts):
    config = ChaseConfiguration(facts)
    initial = set(config)
    chase_to_fixpoint(config, rules, NullFactory("t"))
    for fact in config:
        if fact not in initial:
            assert config.depth(fact) >= 1
