"""Unit tests for trigger detection and rule firing."""

import pytest

from repro.chase.configuration import ChaseConfiguration, Provenance
from repro.chase.firing import (
    Trigger,
    find_triggers,
    fire_all_once,
    fire_trigger,
    head_satisfied,
)
from repro.logic.atoms import Atom, Substitution
from repro.logic.dependencies import parse_tgd
from repro.logic.terms import Constant, Null, NullFactory, Variable


A, B = Constant("a"), Constant("b")


def config_of(*facts):
    return ChaseConfiguration(facts)


class TestConfiguration:
    def test_add_rejects_non_facts(self):
        config = ChaseConfiguration()
        with pytest.raises(ValueError):
            config.add(Atom("R", (Variable("x"),)))

    def test_add_tracks_accessible(self):
        config = ChaseConfiguration()
        config.add(Atom("_accessible", (A,)))
        assert config.is_accessible(A)
        assert config.accessible_values() == {A}

    def test_provenance_and_depth(self):
        config = config_of(Atom("R", (A,)))
        assert config.depth(Atom("R", (A,))) == 0
        fact = Atom("S", (A,))
        config.add(fact, Provenance("rule", (Atom("R", (A,)),), 1))
        assert config.depth(fact) == 1
        assert config.provenance(fact).rule == "rule"

    def test_copy_independent(self):
        config = config_of(Atom("R", (A,)))
        clone = config.copy()
        clone.add(Atom("R", (B,)))
        assert len(config) == 1
        assert len(clone) == 2

    def test_relation_signature_sorted(self):
        config = config_of(Atom("S", (A,)), Atom("R", (A,)), Atom("R", (B,)))
        assert config.relation_signature() == (("R", 2), ("S", 1))

    def test_nulls_collected(self):
        n = Null("n0")
        config = config_of(Atom("R", (n, A)))
        assert config.nulls() == {n}


class TestTriggers:
    def test_candidate_match_found(self):
        tgd = parse_tgd("R(x) -> S(x)")
        config = config_of(Atom("R", (A,)))
        triggers = list(find_triggers(tgd, config))
        assert len(triggers) == 1

    def test_restricted_chase_skips_satisfied_heads(self):
        tgd = parse_tgd("R(x) -> S(x)")
        config = config_of(Atom("R", (A,)), Atom("S", (A,)))
        assert list(find_triggers(tgd, config)) == []

    def test_unrestricted_mode_keeps_satisfied_heads(self):
        tgd = parse_tgd("R(x) -> S(x)")
        config = config_of(Atom("R", (A,)), Atom("S", (A,)))
        assert len(list(find_triggers(tgd, config, restricted=False))) == 1

    def test_existential_head_satisfaction_any_witness(self):
        tgd = parse_tgd("R(x) -> S(x, y)")
        config = config_of(Atom("R", (A,)), Atom("S", (A, B)))
        # S(a, b) witnesses the existential: no trigger.
        assert list(find_triggers(tgd, config)) == []

    def test_head_satisfied_respects_frontier(self):
        tgd = parse_tgd("R(x) -> S(x, y)")
        config = config_of(Atom("R", (A,)), Atom("S", (B, B)))
        hom = Substitution({Variable("x"): A})
        assert not head_satisfied(tgd, hom, config)

    def test_trigger_key_identity(self):
        tgd = parse_tgd("R(x) -> S(x)")
        config = config_of(Atom("R", (A,)))
        (t1,) = find_triggers(tgd, config)
        (t2,) = find_triggers(tgd, config)
        assert t1.key() == t2.key()


class TestFiring:
    def test_full_tgd_firing(self):
        tgd = parse_tgd("R(x, y) -> S(y, x)")
        config = config_of(Atom("R", (A, B)))
        (trigger,) = find_triggers(tgd, config)
        result = fire_trigger(trigger, config, NullFactory("t"))
        assert Atom("S", (B, A)) in config
        assert result.new_facts == (Atom("S", (B, A)),)

    def test_existential_firing_mints_nulls(self):
        tgd = parse_tgd("R(x) -> S(x, y)")
        config = config_of(Atom("R", (A,)))
        (trigger,) = find_triggers(tgd, config)
        result = fire_trigger(trigger, config, NullFactory("t"))
        (fact,) = result.new_facts
        assert fact.terms[0] == A
        assert isinstance(fact.terms[1], Null)

    def test_firing_sets_depth(self):
        tgd = parse_tgd("R(x) -> S(x)")
        config = config_of(Atom("R", (A,)))
        (trigger,) = find_triggers(tgd, config)
        fire_trigger(trigger, config, NullFactory("t"))
        assert config.depth(Atom("S", (A,))) == 1

    def test_multi_head_firing_adds_all_atoms(self):
        tgd = parse_tgd("R(x) -> S(x) & T(x, y)")
        config = config_of(Atom("R", (A,)))
        (trigger,) = find_triggers(tgd, config)
        result = fire_trigger(trigger, config, NullFactory("t"))
        assert len(result.new_facts) == 2

    def test_fire_all_once_round(self):
        rules = [parse_tgd("R(x) -> S(x)"), parse_tgd("S(x) -> T(x)")]
        config = config_of(Atom("R", (A,)))
        results = fire_all_once(rules, config, NullFactory("t"))
        # One round fires R->S; S->T may or may not fire depending on
        # enumeration order, but no crash and S(a) definitely exists.
        assert Atom("S", (A,)) in config
        assert any(r.changed for r in results)
