"""Differential tests: semi-naive (delta-driven) vs. naive chase.

The semi-naive engine is the default; the naive engine is kept as the
reference oracle.  These tests assert the two strategies agree -- same
fact sets with isomorphic labelled nulls, same completeness verdict --
across the scenario library, randomized TGD sets, and the curated
blocking / depth-bound interactions, and that semi-naive does strictly
less trigger-enumeration work.
"""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.chase.blocking import BlockingPolicy
from repro.chase.configuration import ChaseConfiguration
from repro.chase.engine import ChasePolicy, chase_to_fixpoint, saturate
from repro.chase.firing import find_triggers, find_triggers_delta
from repro.logic.atoms import Atom
from repro.logic.dependencies import TGD, parse_tgd
from repro.logic.homomorphisms import find_homomorphism
from repro.logic.terms import Constant, NullFactory, Variable
from repro.planner.search import SearchOptions, find_best_plan
from repro.scenarios import (
    example1,
    example2,
    example5,
    redundant_sources,
    referential_chain,
    view_stack_scenario,
    webservices,
)
from repro.schema.accessible import AccessibleSchema, Variant


A, B, C = Constant("a"), Constant("b"), Constant("c")

SCENARIOS = {
    "example1": example1,
    "example2": example2,
    "example5": example5,
    "redundant3": lambda: redundant_sources(3),
    "chain3": lambda: referential_chain(3),
    "views": view_stack_scenario,
    "webservices": webservices,
}


def equivalent(left: ChaseConfiguration, right: ChaseConfiguration) -> bool:
    """Same facts up to a renaming of labelled nulls."""
    if len(left) != len(right):
        return False
    if left.relation_signature() != right.relation_signature():
        return False
    ground_left = {f for f in left if not f.nulls()}
    ground_right = {f for f in right if not f.nulls()}
    if ground_left != ground_right:
        return False
    return (
        find_homomorphism(list(left), right.index, map_nulls=True) is not None
        and find_homomorphism(list(right), left.index, map_nulls=True)
        is not None
    )


def run_both(rules, facts, **policy_kwargs):
    """Chase the same input under both strategies; return both outcomes."""
    outcomes = {}
    for strategy in ("naive", "semi-naive"):
        config = ChaseConfiguration(facts)
        policy = ChasePolicy(strategy=strategy, **policy_kwargs)
        result = chase_to_fixpoint(config, rules, NullFactory("t"), policy)
        outcomes[strategy] = (config, result)
    return outcomes["naive"], outcomes["semi-naive"]


def saturate_scenario(scenario, strategy, variant=Variant.FORWARD):
    """The planner's initial saturation of a scenario, one strategy."""
    acc = AccessibleSchema(scenario.schema, variant)
    facts, _ = scenario.query.canonical_database()
    config = ChaseConfiguration(facts)
    for fact in acc.initial_accessible_facts():
        config.add(fact)
    result = saturate(
        config,
        list(acc.free_rules),
        NullFactory("d"),
        ChasePolicy(strategy=strategy),
    )
    return config, result


# ---------------------------------------------------------- scenario library
class TestScenarioDifferential:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_free_rule_saturation_matches_oracle(self, name):
        scenario = SCENARIOS[name]()
        naive_config, naive_result = saturate_scenario(scenario, "naive")
        semi_config, semi_result = saturate_scenario(scenario, "semi-naive")
        assert equivalent(naive_config, semi_config)
        assert naive_result.is_complete == semi_result.is_complete
        assert naive_result.firings == semi_result.firings

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_bidirectional_saturation_matches_oracle(self, name):
        scenario = SCENARIOS[name]()
        naive_config, _ = saturate_scenario(
            scenario, "naive", Variant.BIDIRECTIONAL
        )
        semi_config, _ = saturate_scenario(
            scenario, "semi-naive", Variant.BIDIRECTIONAL
        )
        assert equivalent(naive_config, semi_config)

    @pytest.mark.parametrize(
        "name", ["example1", "example5", "redundant3", "chain3"]
    )
    def test_planner_search_matches_oracle(self, name):
        scenario = SCENARIOS[name]()
        results = {}
        for strategy in ("naive", "semi-naive"):
            results[strategy] = find_best_plan(
                scenario.schema,
                scenario.query,
                SearchOptions(chase_policy=ChasePolicy(strategy=strategy)),
            )
        naive, semi = results["naive"], results["semi-naive"]
        assert naive.found == semi.found
        assert naive.best_cost == semi.best_cost
        assert naive.exhausted == semi.exhausted
        # The whole point: the delta-driven engine enumerates far fewer
        # candidate matches across the search's many saturations.
        assert (
            semi.stats.chase.triggers_enumerated
            <= naive.stats.chase.triggers_enumerated
        )


# ------------------------------------------------------------ randomized TGDs
VARS = [Variable(n) for n in "xyz"]
CONSTS = [Constant(f"c{i}") for i in range(4)]
RELATIONS = ["R2", "S2", "T1"]


def _arity(relation: str) -> int:
    return int(relation[-1])


@st.composite
def full_tgds(draw):
    """Random *full* TGDs (no existentials): chase always terminates."""
    body = []
    for _ in range(draw(st.integers(1, 2))):
        relation = draw(st.sampled_from(RELATIONS))
        body.append(
            Atom(
                relation,
                tuple(
                    draw(st.sampled_from(VARS))
                    for _ in range(_arity(relation))
                ),
            )
        )
    body_vars = [
        t for atom in body for t in atom.terms if isinstance(t, Variable)
    ]
    head_rel = draw(st.sampled_from(RELATIONS))
    pool = body_vars + CONSTS[:1]
    head_terms = tuple(
        draw(st.sampled_from(pool)) for _ in range(_arity(head_rel))
    )
    return TGD(tuple(body), (Atom(head_rel, head_terms),))


@st.composite
def existential_tgds(draw):
    """Single-head TGDs that may invent nulls in the head."""
    body_rel = draw(st.sampled_from(RELATIONS))
    body_terms = tuple(
        draw(st.sampled_from(VARS)) for _ in range(_arity(body_rel))
    )
    body = (Atom(body_rel, body_terms),)
    body_vars = [t for t in body_terms if isinstance(t, Variable)]
    fresh = Variable("w")
    head_rel = draw(st.sampled_from(RELATIONS))
    pool = body_vars + [fresh] if body_vars else [fresh]
    head_terms = tuple(
        draw(st.sampled_from(pool)) for _ in range(_arity(head_rel))
    )
    return TGD(body, (Atom(head_rel, head_terms),))


@st.composite
def fact_sets(draw):
    facts = []
    for _ in range(draw(st.integers(1, 6))):
        relation = draw(st.sampled_from(RELATIONS))
        terms = tuple(
            draw(st.sampled_from(CONSTS)) for _ in range(_arity(relation))
        )
        facts.append(Atom(relation, terms))
    return facts


@given(st.lists(full_tgds(), min_size=1, max_size=4), fact_sets())
@settings(max_examples=60, deadline=None)
def test_full_tgd_differential(rules, facts):
    """Full TGDs have a unique fixpoint: the strategies agree exactly."""
    (naive_config, naive_result), (semi_config, semi_result) = run_both(
        rules, facts
    )
    assert set(naive_config) == set(semi_config)
    assert naive_result.is_complete and semi_result.is_complete
    assert naive_result.firings == semi_result.firings
    # Genuine fixpoint: the semi-naive run left no candidate match behind.
    for rule in rules:
        assert not list(find_triggers(rule, semi_config))


@given(st.lists(existential_tgds(), min_size=1, max_size=3), fact_sets())
@settings(max_examples=50, deadline=None)
def test_existential_tgd_differential(rules, facts):
    """When both runs terminate untruncated, results are isomorphic."""
    (naive_config, naive_result), (semi_config, semi_result) = run_both(
        rules, facts, max_firings=300
    )
    assume(naive_result.is_complete and semi_result.is_complete)
    assert equivalent(naive_config, semi_config)


# ------------------------------------------------- blocking / depth curated
class TestSafetyValveDifferential:
    def test_blocking_cyclic_chase(self):
        rules = [parse_tgd("R(x, y) -> R(y, z)")]
        (nc, nr), (sc, sr) = run_both(
            [rules[0]],
            [Atom("R", (A, B))],
            blocking=BlockingPolicy(enabled=True),
        )
        assert nr.reached_fixpoint and sr.reached_fixpoint
        assert nr.blocked > 0 and sr.blocked > 0
        assert nr.is_complete == sr.is_complete
        assert equivalent(nc, sc)

    def test_blocking_two_way_cycle(self):
        rules = [
            parse_tgd("P(x) -> E(x, y)"),
            parse_tgd("E(x, y) -> P(y)"),
        ]
        (nc, nr), (sc, sr) = run_both(
            rules, [Atom("P", (A,))], blocking=BlockingPolicy(enabled=True)
        )
        assert nr.reached_fixpoint and sr.reached_fixpoint
        assert equivalent(nc, sc)

    def test_max_depth_truncation(self):
        rules = [parse_tgd("R(x, y) -> R(y, z)")]
        (nc, nr), (sc, sr) = run_both(
            rules, [Atom("R", (A, B))], max_depth=3
        )
        assert nr.reached_fixpoint and sr.reached_fixpoint
        assert nr.depth_truncated > 0 and sr.depth_truncated > 0
        assert not nr.is_complete and not sr.is_complete
        assert equivalent(nc, sc)
        assert all(sc.depth(f) <= 3 for f in sc)

    def test_blocking_and_max_depth_together(self):
        rules = [
            parse_tgd("P(x) -> E(x, y)"),
            parse_tgd("E(x, y) -> P(y)"),
        ]
        (nc, nr), (sc, sr) = run_both(
            rules,
            [Atom("P", (A,))],
            blocking=BlockingPolicy(enabled=True),
            max_depth=4,
        )
        assert nr.reached_fixpoint and sr.reached_fixpoint
        assert nr.is_complete == sr.is_complete
        assert equivalent(nc, sc)

    def test_budget_truncation_firing_counts_match(self):
        rules = [parse_tgd("R(x, y) -> R(y, z)")]
        (_, nr), (_, sr) = run_both(
            rules, [Atom("R", (A, B))], max_firings=25
        )
        assert not nr.reached_fixpoint and not sr.reached_fixpoint
        assert nr.firings == sr.firings == 25


# ----------------------------------------------------------- delta plumbing
class TestDeltaMachinery:
    def test_generation_counts_insertions(self):
        config = ChaseConfiguration([Atom("R", (A, B))])
        assert config.generation == 1
        config.add(Atom("R", (B, C)))
        assert config.generation == 2
        config.add(Atom("R", (A, B)))  # duplicate: no new generation
        assert config.generation == 2
        assert config.facts_since(1) == (Atom("R", (B, C)),)
        assert config.facts_since(2) == ()

    def test_copy_preserves_generation_log(self):
        config = ChaseConfiguration([Atom("R", (A, B))])
        clone = config.copy()
        assert clone.generation == 1
        clone.add(Atom("R", (B, C)))
        assert clone.facts_since(1) == (Atom("R", (B, C)),)
        assert config.generation == 1  # original untouched

    def test_find_triggers_delta_only_sees_delta(self):
        rule = parse_tgd("R(x, y) -> S(x, y)")
        config = ChaseConfiguration([Atom("R", (A, B))])
        mark = config.generation
        config.add(Atom("R", (B, C)))
        triggers = list(find_triggers_delta(rule, config, mark))
        assert [t.body_image() for t in triggers] == [(Atom("R", (B, C)),)]

    def test_find_triggers_delta_empty_delta(self):
        rule = parse_tgd("R(x, y) -> S(x, y)")
        config = ChaseConfiguration([Atom("R", (A, B))])
        assert list(find_triggers_delta(rule, config, config.generation)) == []

    def test_delta_join_reaches_across_old_facts(self):
        # Two-atom body: pivot on the new fact, join partner is old.
        rule = parse_tgd("R(x, y) & S(y, z) -> T(x, z)")
        config = ChaseConfiguration([Atom("S", (B, C))])
        mark = config.generation
        config.add(Atom("R", (A, B)))
        triggers = list(find_triggers_delta(rule, config, mark))
        assert len(triggers) == 1
        assert triggers[0].body_image() == (
            Atom("R", (A, B)),
            Atom("S", (B, C)),
        )

    def test_saturate_resumption_equals_full_restart(self):
        rules = [
            parse_tgd("R(x, y) -> S(y, x)"),
            parse_tgd("S(x, y) & R(y, z) -> T(x, z)"),
        ]
        base = [Atom("R", (A, B)), Atom("R", (B, C))]
        # Incremental: saturate, add a fact, re-saturate from the watermark.
        config = ChaseConfiguration(base)
        nulls = NullFactory("t")
        saturate(config, rules, nulls)
        mark = config.generation
        config.add(Atom("R", (C, A)))
        resumed = saturate(config, rules, nulls, since_generation=mark)
        assert resumed.reached_fixpoint
        # Oracle: chase everything from scratch, naively.
        oracle = ChaseConfiguration(base + [Atom("R", (C, A))])
        chase_to_fixpoint(
            oracle, rules, NullFactory("u"), ChasePolicy(strategy="naive")
        )
        assert set(config) == set(oracle)

    def test_chase_result_carries_stats(self):
        rules = [parse_tgd("R(x) -> S(x)"), parse_tgd("S(x) -> T(x)")]
        config = ChaseConfiguration([Atom("R", (A,))])
        result = chase_to_fixpoint(config, rules, NullFactory("t"))
        stats = result.stats
        assert stats.strategy == "semi-naive"
        assert stats.rounds >= 2
        assert stats.triggers_fired == 2
        assert stats.triggers_enumerated >= stats.triggers_fired
        assert stats.runs == 1

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            ChasePolicy(strategy="bogus")

    def test_for_saturation_preserves_strategy(self):
        policy = ChasePolicy(strategy="naive").for_saturation()
        assert policy.strategy == "naive"
