"""Unit tests for the guarded-bag blocking structure."""

import pytest

from repro.chase.blocking import BagTree, BlockingPolicy
from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Null


A = Constant("a")
N = [Null(f"n{i}") for i in range(6)]


class TestBagTree:
    def test_initial_bag_owns_initial_nulls(self):
        tree = BagTree()
        tree.register_initial([Atom("R", (N[0], N[1]))])
        assert tree.bag_of(N[0]) == 0
        assert tree.depth_of_bag(0) == 0

    def test_register_firing_creates_child(self):
        tree = BagTree()
        tree.register_initial([Atom("R", (N[0], N[1]))])
        bag = tree.register_firing(
            (Atom("R", (N[0], N[1])),), (Atom("R", (N[1], N[2])),)
        )
        assert tree.depth_of_bag(bag) == 1
        assert tree.bag_of(N[2]) == bag

    def test_home_bag_is_deepest_owner(self):
        tree = BagTree()
        tree.register_initial([Atom("R", (N[0], N[1]))])
        child = tree.register_firing(
            (Atom("R", (N[0], N[1])),), (Atom("R", (N[1], N[2])),)
        )
        assert tree.home_bag((Atom("R", (N[1], N[2])),)) == child
        assert tree.home_bag((Atom("R", (N[0], N[1])),)) == 0

    def test_is_blocked_by_homomorphic_bag(self):
        tree = BagTree()
        tree.register_initial([Atom("R", (N[0], N[1]))])
        # Candidate R(n1, n2) maps into bag 0's R(n0, n1) by null renaming.
        assert tree.is_blocked((Atom("R", (N[1], N[2])),))

    def test_not_blocked_when_constants_differ(self):
        tree = BagTree()
        tree.register_initial([Atom("R", (N[0], A))])
        # Candidate has constant "b" which cannot map to "a".
        assert not tree.is_blocked(
            (Atom("R", (N[1], Constant("b"))),)
        )

    def test_not_blocked_across_relations(self):
        tree = BagTree()
        tree.register_initial([Atom("R", (N[0],))])
        assert not tree.is_blocked((Atom("S", (N[1],)),))


class TestBlockingPolicy:
    def test_disabled_policy_allows_everything(self):
        policy = BlockingPolicy(enabled=False)
        tree = policy.fresh_tree([Atom("R", (N[0], N[1]))])
        assert policy.allows(
            tree, (Atom("R", (N[0], N[1])),), (Atom("R", (N[1], N[2])),)
        )

    def test_enabled_policy_blocks_homomorphic_bag(self):
        policy = BlockingPolicy(enabled=True)
        tree = policy.fresh_tree([Atom("R", (N[0], N[1]))])
        assert not policy.allows(
            tree, (Atom("R", (N[0], N[1])),), (Atom("R", (N[1], N[2])),)
        )

    def test_max_bag_depth_cap(self):
        policy = BlockingPolicy(enabled=True, max_bag_depth=0)
        tree = policy.fresh_tree([Atom("R", (N[0], A))])
        # Fresh shape (different constant) but depth cap forbids it.
        assert not policy.allows(
            tree,
            (Atom("R", (N[0], A)),),
            (Atom("S", (N[1], Constant("b"))),),
        )
