"""Copy-on-write configuration forking: independence and sharing."""

from collections import ChainMap

import pytest

from repro.chase.configuration import ChaseConfiguration, Provenance
from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Null

A, B, C = Constant("a"), Constant("b"), Constant("c")
N = Null("n")


def config_of(*facts):
    return ChaseConfiguration(facts)


class TestForkIndependence:
    def test_child_writes_do_not_leak_to_parent(self):
        parent = config_of(Atom("R", (A,)))
        child = parent.copy()
        assert child.add(Atom("R", (B,)))
        assert child.add(Atom("S", (C,)))
        assert Atom("R", (B,)) not in parent
        assert "S" not in set(parent.relations())
        assert len(parent) == 1
        assert parent.facts_of("R") == frozenset({Atom("R", (A,))})

    def test_parent_writes_do_not_leak_to_child(self):
        parent = config_of(Atom("R", (A,)))
        child = parent.copy()
        assert parent.add(Atom("R", (B,)))
        assert Atom("R", (B,)) not in child
        assert len(child) == 1

    def test_fork_of_fork(self):
        root = config_of(Atom("R", (A,)))
        middle = root.copy()
        middle.add(Atom("R", (B,)))
        leaf = middle.copy()
        leaf.add(Atom("R", (C,)))
        assert len(root) == 1
        assert len(middle) == 2
        assert len(leaf) == 3
        middle.add(Atom("S", (A,)))
        assert "S" not in set(leaf.relations())
        assert "S" not in set(root.relations())

    def test_sibling_forks_are_independent(self):
        parent = config_of(Atom("R", (A,)))
        left, right = parent.copy(), parent.copy()
        left.add(Atom("R", (B,)))
        right.add(Atom("R", (C,)))
        assert Atom("R", (B,)) not in right
        assert Atom("R", (C,)) not in left

    def test_accessible_terms_are_independent(self):
        parent = config_of(Atom("_accessible", (A,)))
        child = parent.copy()
        child.add(Atom("_accessible", (B,)))
        assert child.is_accessible(B)
        assert not parent.is_accessible(B)
        assert parent.is_accessible(A) and child.is_accessible(A)


class TestForkDeltas:
    def test_facts_since_spans_the_fork(self):
        parent = config_of(Atom("R", (A,)))
        watermark = parent.generation
        child = parent.copy()
        child.add(Atom("R", (B,)))
        child.add(Atom("S", (C,)))
        assert child.facts_since(watermark) == (
            Atom("R", (B,)),
            Atom("S", (C,)),
        )
        assert parent.facts_since(watermark) == ()

    def test_generation_carries_over_the_fork(self):
        parent = config_of(Atom("R", (A,)), Atom("R", (B,)))
        child = parent.copy()
        assert child.generation == parent.generation
        child.add(Atom("R", (C,)))
        assert child.generation == parent.generation + 1

    def test_delta_from_mid_parent_watermark(self):
        parent = ChaseConfiguration()
        parent.add(Atom("R", (A,)))
        watermark = parent.generation
        parent.add(Atom("R", (B,)))
        child = parent.copy()
        child.add(Atom("R", (C,)))
        assert child.facts_since(watermark) == (
            Atom("R", (B,)),
            Atom("R", (C,)),
        )


class TestForkProvenance:
    def test_inherited_provenance_readable(self):
        parent = config_of(Atom("R", (A,)))
        child = parent.copy()
        assert child.depth(Atom("R", (A,))) == 0
        assert child.provenance(Atom("R", (A,))).rule == "<initial>"

    def test_child_provenance_shadows_only_new_facts(self):
        parent = config_of(Atom("R", (A,)))
        child = parent.copy()
        derived = Provenance(
            rule="r1", trigger_facts=(Atom("R", (A,)),), depth=3
        )
        child.add(Atom("S", (B,)), derived)
        assert child.depth(Atom("S", (B,))) == 3
        with pytest.raises(KeyError):
            parent.provenance(Atom("S", (B,)))

    def test_readding_does_not_change_provenance(self):
        parent = config_of(Atom("R", (A,)))
        child = parent.copy()
        assert not child.add(
            Atom("R", (A,)), Provenance("late", (), depth=9)
        )
        assert child.depth(Atom("R", (A,))) == 0


class TestDeepCopy:
    def test_deep_copy_is_independent_both_ways(self):
        parent = config_of(Atom("R", (A,)))
        clone = parent.deep_copy()
        clone.add(Atom("R", (B,)))
        parent.add(Atom("R", (C,)))
        assert Atom("R", (B,)) not in parent
        assert Atom("R", (C,)) not in clone

    def test_deep_copy_flattens_provenance_layers(self):
        root = config_of(Atom("R", (A,)))
        forked = root.copy()
        forked.add(Atom("R", (B,)))
        flat = forked.deep_copy()
        assert not isinstance(flat._provenance, ChainMap)
        assert flat.depth(Atom("R", (A,))) == 0

    def test_deep_copy_and_fork_agree_on_contents(self):
        parent = config_of(Atom("R", (A,)), Atom("S", (N,)))
        assert set(parent.copy()) == set(parent.deep_copy()) == set(parent)

    def test_queries_work_across_forks(self):
        parent = config_of(Atom("R", (A, N)))
        child = parent.copy()
        child.add(Atom("R", (B, B)))
        assert child.nulls() == frozenset({N})
        assert child.relation_signature() == (("R", 2),)
        assert parent.relation_signature() == (("R", 1),)
