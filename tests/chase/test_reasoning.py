"""Unit tests for chase-based entailment and certain answers."""

import pytest

from repro.chase.engine import ChasePolicy
from repro.chase.reasoning import (
    certain_answer_holds,
    entails_under_constraints,
    is_contained_under,
)
from repro.logic.atoms import Atom
from repro.logic.dependencies import parse_tgd
from repro.logic.queries import cq
from repro.logic.terms import Constant


class TestEntailment:
    def test_direct_consequence(self):
        constraints = [parse_tgd("R(x) -> S(x)")]
        premise = cq(["?x"], [("R", ["?x"])])
        conclusion = cq(["?x"], [("S", ["?x"])])
        assert entails_under_constraints(premise, conclusion, constraints)

    def test_no_entailment_without_constraint(self):
        premise = cq(["?x"], [("R", ["?x"])])
        conclusion = cq(["?x"], [("S", ["?x"])])
        assert not entails_under_constraints(premise, conclusion, [])

    def test_transitive_chain(self):
        constraints = [
            parse_tgd("R(x) -> S(x)"),
            parse_tgd("S(x) -> T(x)"),
        ]
        premise = cq(["?x"], [("R", ["?x"])])
        conclusion = cq(["?x"], [("T", ["?x"])])
        assert entails_under_constraints(premise, conclusion, constraints)

    def test_existential_witnesses(self):
        constraints = [parse_tgd("Person(x) -> HasParent(x, y)")]
        premise = cq(["?x"], [("Person", ["?x"])])
        conclusion = cq(
            ["?x"], [("HasParent", ["?x", "?p"])]
        )
        assert entails_under_constraints(premise, conclusion, constraints)

    def test_free_variables_must_align(self):
        constraints = [parse_tgd("R(x, y) -> S(y, x)")]
        premise = cq(["?a", "?b"], [("R", ["?a", "?b"])])
        swapped = cq(["?b", "?a"], [("S", ["?a", "?b"])])
        not_swapped = cq(["?a", "?b"], [("S", ["?a", "?b"])])
        assert entails_under_constraints(premise, swapped, constraints)
        assert not entails_under_constraints(
            premise, not_swapped, constraints
        )

    def test_head_arity_mismatch_false(self):
        premise = cq(["?x"], [("R", ["?x"])])
        conclusion = cq([], [("R", ["?x"])])
        assert not entails_under_constraints(premise, conclusion, [])

    def test_containment_alias(self):
        constraints = [parse_tgd("R(x) -> S(x)")]
        sub = cq([], [("R", ["?x"])])
        sup = cq([], [("S", ["?x"])])
        assert is_contained_under(sub, sup, constraints)
        assert not is_contained_under(sup, sub, constraints)

    def test_bounded_policy_keeps_soundness(self):
        # A diverging constraint set with a tiny budget: entailment that
        # needs depth 2 only is still found.
        constraints = [parse_tgd("R(x, y) -> R(y, z)")]
        premise = cq([], [("R", ["?x", "?y"])])
        conclusion = cq([], [("R", ["?y", "?z"]), ("R", ["?x", "?y"])])
        policy = ChasePolicy(max_firings=50)
        assert entails_under_constraints(
            premise, conclusion, constraints, policy
        )


class TestCertainAnswers:
    def test_derived_fact_counts(self):
        constraints = [parse_tgd("R(x) -> S(x)")]
        facts = [Atom("R", (Constant("a"),))]
        query = cq([], [("S", ["?x"])])
        assert certain_answer_holds(query, facts, constraints)

    def test_absent_fact_does_not_count(self):
        query = cq([], [("S", ["?x"])])
        assert not certain_answer_holds(
            query, [Atom("R", (Constant("a"),))], []
        )
