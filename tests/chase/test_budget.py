"""Hard chase budgets: step and wall-clock caps that fail fast."""

import pytest

from repro.chase.engine import ChasePolicy, chase_to_fixpoint
from repro.errors import ChaseBudgetExceeded
from repro.logic.atoms import Atom
from repro.logic.dependencies import parse_tgd
from repro.logic.terms import Constant, NullFactory


def diverging_config():
    """The classic non-terminating existential cycle."""
    from repro.chase.configuration import ChaseConfiguration

    rules = [parse_tgd("R(x, y) -> R(y, z)")]
    config = ChaseConfiguration([Atom("R", (Constant("a"), Constant("b")))])
    return config, rules


class TestStepBudget:
    def test_max_steps_raises_with_partial_stats(self):
        config, rules = diverging_config()
        policy = ChasePolicy(max_steps=20)
        with pytest.raises(ChaseBudgetExceeded) as excinfo:
            chase_to_fixpoint(config, rules, NullFactory("t"), policy)
        error = excinfo.value
        assert error.steps == 21  # the step that crossed the cap
        assert error.stats is not None
        assert error.elapsed >= 0
        assert "20" in str(error)

    def test_max_steps_does_not_bite_a_terminating_chase(self):
        rules = [parse_tgd("R(x) -> S(x)"), parse_tgd("S(x) -> T(x)")]
        from repro.chase.configuration import ChaseConfiguration

        config = ChaseConfiguration([Atom("R", (Constant("a"),))])
        policy = ChasePolicy(max_steps=100)
        result = chase_to_fixpoint(config, rules, NullFactory("t"), policy)
        assert result.reached_fixpoint


class TestWallClockBudget:
    def test_max_seconds_raises_on_a_diverging_chase(self):
        config, rules = diverging_config()
        policy = ChasePolicy(max_firings=10**9, max_seconds=1e-4)
        with pytest.raises(ChaseBudgetExceeded) as excinfo:
            chase_to_fixpoint(config, rules, NullFactory("t"), policy)
        assert excinfo.value.elapsed > 1e-4

    def test_generous_budget_does_not_bite(self):
        rules = [parse_tgd("R(x) -> S(x)")]
        from repro.chase.configuration import ChaseConfiguration

        config = ChaseConfiguration([Atom("R", (Constant("a"),))])
        policy = ChasePolicy(max_seconds=60.0)
        result = chase_to_fixpoint(config, rules, NullFactory("t"), policy)
        assert result.reached_fixpoint


class TestPolicyPlumbing:
    def test_validation(self):
        with pytest.raises(ValueError):
            ChasePolicy(max_steps=0)
        with pytest.raises(ValueError):
            ChasePolicy(max_seconds=-1.0)

    def test_for_saturation_keeps_the_budgets(self):
        policy = ChasePolicy(max_steps=7, max_seconds=2.5)
        derived = policy.for_saturation()
        assert derived.max_steps == 7
        assert derived.max_seconds == 2.5

    def test_budget_error_is_importable_from_chase_package(self):
        from repro.chase import ChaseBudgetExceeded as FromChase
        from repro.errors import ReproError

        assert FromChase is ChaseBudgetExceeded
        assert issubclass(FromChase, ReproError)
