"""Unit tests for instances: storage, evaluation, constraint checks."""

import pytest

from repro.data.instance import Instance, InstanceError
from repro.logic.atoms import Atom
from repro.logic.dependencies import parse_tgd
from repro.logic.queries import cq
from repro.logic.terms import Constant, Variable


class TestStorage:
    def test_add_and_tuples(self):
        instance = Instance()
        assert instance.add("R", ("a", 1))
        assert not instance.add("R", ("a", 1))  # dedup
        assert instance.tuples("R") == {(Constant("a"), Constant(1))}

    def test_add_fact(self):
        instance = Instance()
        instance.add_fact(Atom("R", (Constant("a"),)))
        assert instance.size("R") == 1

    def test_add_fact_rejects_variables(self):
        with pytest.raises(InstanceError):
            Instance().add_fact(Atom("R", (Variable("x"),)))

    def test_bad_value_rejected(self):
        with pytest.raises(InstanceError):
            Instance().add("R", (object(),))

    def test_size_total_and_per_relation(self):
        instance = Instance({"R": [("a",)], "S": [("b",), ("c",)]})
        assert instance.size() == 3
        assert instance.size("S") == 2
        assert instance.size("T") == 0

    def test_domain(self):
        instance = Instance({"R": [("a", "b")], "S": [("b",)]})
        assert instance.domain() == {Constant("a"), Constant("b")}

    def test_copy_independent(self):
        instance = Instance({"R": [("a",)]})
        clone = instance.copy()
        clone.add("R", ("b",))
        assert instance.size() == 1

    def test_equality_ignores_empty_relations(self):
        a = Instance({"R": [("x",)], "S": []})
        b = Instance({"R": [("x",)]})
        assert a == b


class TestEvaluation:
    def test_evaluate_cq(self):
        instance = Instance({"R": [("a", "b"), ("c", "b")]})
        result = instance.evaluate(cq(["?x"], [("R", ["?x", "b"])]))
        assert result == {(Constant("a"),), (Constant("c"),)}

    def test_fact_index_cache_invalidated_on_add(self):
        instance = Instance({"R": [("a",)]})
        query = cq([], [("R", ["?x"])])
        assert instance.evaluate(query)
        instance.add("S", ("b",))
        assert instance.evaluate(cq([], [("S", ["?x"])]))


class TestConstraints:
    def test_satisfies_full_tgd(self):
        tgd = parse_tgd("R(x) -> S(x)")
        good = Instance({"R": [("a",)], "S": [("a",)]})
        bad = Instance({"R": [("a",)]})
        assert good.satisfies(tgd)
        assert not bad.satisfies(tgd)

    def test_satisfies_existential_tgd_any_witness(self):
        tgd = parse_tgd("R(x) -> S(x, y)")
        good = Instance({"R": [("a",)], "S": [("a", "w")]})
        assert good.satisfies(tgd)

    def test_violations_listed(self):
        tgds = [parse_tgd("R(x) -> S(x)"), parse_tgd("S(x) -> R(x)")]
        instance = Instance({"R": [("a",)]})
        violated = instance.violations(tgds)
        assert len(violated) == 1
        assert violated[0].name == "R=>S"

    def test_satisfies_all(self):
        tgds = [parse_tgd("R(x) -> S(x)")]
        assert Instance({"S": [("a",)]}).satisfies_all(tgds)
