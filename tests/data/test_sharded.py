"""Sharded in-memory sources: partitioning, merge semantics, metering.

The contract: sharding an instance is an *implementation detail* of
one logical source.  Every access answers exactly what the unsharded
source answers (the per-partition partial scans merge back to set
semantics), and the metering ledger is identical -- one logical access
is logged and charged once, regardless of shard count.
"""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.data.instance import Instance
from repro.data.source import (
    InMemorySource,
    ShardedInMemorySource,
    partition_instance,
    shard_of,
)
from repro.schema.core import SchemaBuilder


def schema():
    return (
        SchemaBuilder("sharded")
        .relation("R", 2)
        .access("mt_key", "R", inputs=[0], cost=2.0)
        .access("mt_scan", "R", inputs=[], cost=5.0)
        .build()
    )


def instance(n=40):
    return Instance({"R": [(f"k{i % 7}", f"v{i}") for i in range(n)]})


class TestPartitioning:
    def test_shard_of_is_deterministic_and_in_range(self):
        row = ("k1", "v1")
        for shards in (1, 2, 5, 16):
            first = shard_of("R", row, shards)
            assert 0 <= first < shards
            assert all(
                shard_of("R", row, shards) == first for _ in range(5)
            )

    def test_shard_of_depends_on_relation(self):
        # The same row in different relations may land differently --
        # the relation name is part of the hashed key.
        rows = [(f"k{i}", f"v{i}") for i in range(64)]
        assert any(
            shard_of("R", row, 8) != shard_of("S", row, 8) for row in rows
        )

    def test_partition_instance_is_a_disjoint_cover(self):
        whole = instance()
        parts = partition_instance(whole, 4)
        assert len(parts) == 4
        assert sum(part.size() for part in parts) == whole.size()
        seen = set()
        for part in parts:
            rows = part.tuples("R")
            assert not (seen & rows)
            seen |= rows
        assert len(seen) == whole.size()

    def test_single_shard_is_the_whole_instance(self):
        whole = instance()
        (only,) = partition_instance(whole, 1)
        assert only.size() == whole.size()


class TestShardedSource:
    @pytest.mark.parametrize("shards", [1, 2, 4, 7])
    def test_answers_identical_to_plain_source(self, shards):
        plain = InMemorySource(schema(), instance())
        sharded = ShardedInMemorySource(
            schema(), instance(), shards=shards
        )
        assert sharded.access("mt_scan") == plain.access("mt_scan")
        for key in ("k0", "k3", "missing"):
            assert sharded.access("mt_key", (key,)) == plain.access(
                "mt_key", (key,)
            )

    def test_metering_parity_with_plain_source(self):
        plain = InMemorySource(schema(), instance())
        sharded = ShardedInMemorySource(schema(), instance(), shards=4)
        for source in (plain, sharded):
            source.access("mt_scan")
            source.access("mt_key", ("k1",))
        # One logical access = one log entry and one charge, even
        # though the sharded source consulted four partitions.
        assert sharded.total_invocations == plain.total_invocations == 2
        assert sharded.charged_cost() == plain.charged_cost()
        assert [e.method for e in sharded.log] == [
            e.method for e in plain.log
        ]

    def test_parallel_partial_scans_merge_identically(self):
        plain = InMemorySource(schema(), instance(200))
        with ThreadPoolExecutor(max_workers=4) as pool:
            sharded = ShardedInMemorySource(
                schema(), instance(200), shards=4, pool=pool
            )
            assert sharded.access("mt_scan") == plain.access("mt_scan")
            assert sharded.access("mt_key", ("k2",)) == plain.access(
                "mt_key", ("k2",)
            )

    def test_mutation_triggers_repartition(self):
        inst = instance(10)
        sharded = ShardedInMemorySource(schema(), inst, shards=3)
        before = sharded.access("mt_scan")
        assert inst.add("R", ("k_new", "v_new"))
        after = sharded.access("mt_scan")
        assert len(after) == len(before) + 1
        total = sum(
            part.instance.size() for part in sharded.partitions
        )
        assert total == inst.size()

    def test_unindexed_sharded_source(self):
        sharded = ShardedInMemorySource(
            schema(), instance(), shards=3, indexed=False
        )
        plain = InMemorySource(schema(), instance())
        assert sharded.access("mt_key", ("k1",)) == plain.access(
            "mt_key", ("k1",)
        )
