"""Unit tests for the AccPart fixpoint (Section 3 semantics)."""

import pytest

from repro.data.accessible_part import accessible_part
from repro.data.instance import Instance
from repro.logic.terms import Constant
from repro.schema.core import SchemaBuilder


def uni_schema():
    return (
        SchemaBuilder("uni")
        .relation("Profinfo", 3)
        .relation("Udirect", 2)
        .access("mt_prof", "Profinfo", inputs=[0])
        .free_access("Udirect")
        .tgd("Profinfo(eid, onum, lname) -> Udirect(eid, lname)")
        .build()
    )


class TestFixpoint:
    def test_free_access_exposes_all(self):
        schema = uni_schema()
        instance = Instance({"Udirect": [("e1", "smith")]})
        part = accessible_part(schema, instance)
        assert part.accessed_tuples("Udirect") == {
            (Constant("e1"), Constant("smith"))
        }
        assert Constant("e1") in part.accessible_values

    def test_chained_exposure_through_inputs(self):
        schema = uni_schema()
        instance = Instance(
            {
                "Profinfo": [("e1", "o1", "smith")],
                "Udirect": [("e1", "smith")],
            }
        )
        part = accessible_part(schema, instance)
        # e1 flows from Udirect into the Profinfo access.
        assert (
            Constant("e1"),
            Constant("o1"),
            Constant("smith"),
        ) in part.accessed_tuples("Profinfo")
        assert Constant("o1") in part.accessible_values

    def test_unreachable_facts_stay_hidden(self):
        schema = uni_schema()
        instance = Instance(
            {
                "Profinfo": [("e9", "o9", "ghost")],  # e9 not in Udirect
                "Udirect": [("e1", "smith")],
            }
        )
        part = accessible_part(schema, instance)
        assert part.accessed_tuples("Profinfo") == frozenset()

    def test_schema_constants_seed_the_fixpoint(self):
        schema = (
            SchemaBuilder("s")
            .relation("R", 2)
            .access("mt_r", "R", inputs=[0])
            .constant("k")
            .build()
        )
        instance = Instance({"R": [("k", "v"), ("other", "w")]})
        part = accessible_part(schema, instance)
        assert part.accessed_tuples("R") == {
            (Constant("k"), Constant("v"))
        }

    def test_no_methods_no_access(self):
        schema = SchemaBuilder("s").relation("R", 1).build()
        instance = Instance({"R": [("a",)]})
        part = accessible_part(schema, instance)
        assert part.accessed_tuples("R") == frozenset()
        assert part.accessible_values == frozenset()


class TestOrderings:
    def test_subpart_reflexive(self):
        schema = uni_schema()
        instance = Instance({"Udirect": [("e1", "smith")]})
        part = accessible_part(schema, instance)
        assert part.is_subpart_of(part)
        assert part.is_induced_subpart_of(part)

    def test_subpart_of_larger_instance(self):
        schema = uni_schema()
        small = accessible_part(
            schema, Instance({"Udirect": [("e1", "smith")]})
        )
        large = accessible_part(
            schema,
            Instance({"Udirect": [("e1", "smith"), ("e2", "jones")]}),
        )
        assert small.is_subpart_of(large)
        assert not large.is_subpart_of(small)

    def test_induced_subpart_detects_hidden_visible_fact(self):
        schema = uni_schema()
        # Same accessible values, but 'large' has an extra accessed fact
        # whose values are accessible in 'small' too.
        small = accessible_part(
            schema, Instance({"Udirect": [("e1", "smith")]})
        )
        large = accessible_part(
            schema,
            Instance(
                {"Udirect": [("e1", "smith"), ("e1", "e1")]}
            ),
        )
        assert small.is_subpart_of(large)
        assert not small.is_induced_subpart_of(large)

    def test_as_instance_roundtrip(self):
        schema = uni_schema()
        instance = Instance({"Udirect": [("e1", "smith")]})
        part = accessible_part(schema, instance)
        as_inst = part.as_instance()
        assert as_inst.tuples("Udirect") == instance.tuples("Udirect")

    def test_plan_indistinguishability(self):
        """Two instances with equal AccPart give equal plan outputs."""
        from repro.data.source import InMemorySource
        from repro.planner import find_best_plan, SearchOptions
        from repro.logic.queries import cq

        schema = uni_schema()
        query = cq([], [("Profinfo", ["?e", "?o", "?l"])])
        plan = find_best_plan(schema, query).best_plan
        shared = {
            "Profinfo": [("e1", "o1", "smith")],
            "Udirect": [("e1", "smith")],
        }
        i1 = Instance(shared)
        i2 = Instance(
            {
                # An extra hidden Profinfo fact whose eid never surfaces.
                "Profinfo": shared["Profinfo"] + [("e9", "o9", "ghost")],
                "Udirect": shared["Udirect"],
            }
        )
        p1 = accessible_part(schema, i1)
        p2 = accessible_part(schema, i2)
        assert p1 == p2
        out1 = plan.run(InMemorySource(schema, i1))
        out2 = plan.run(InMemorySource(schema, i2))
        assert out1.rows == out2.rows
