"""Tests for source decorators and runtime cost calibration."""

import pytest

from repro.data.decorators import (
    AccessBudgetExceeded,
    BudgetedSource,
    CachingSource,
    FlakySource,
    SourceUnavailable,
    calibrate_costs,
)
from repro.data.instance import Instance
from repro.data.source import InMemorySource
from repro.planner.search import SearchOptions, find_best_plan
from repro.scenarios import example1
from repro.schema.core import SchemaBuilder


@pytest.fixture
def backend():
    schema = (
        SchemaBuilder("s")
        .relation("R", 2)
        .access("mt_key", "R", inputs=[0], cost=3.0)
        .free_access("R")
        .build()
    )
    instance = Instance({"R": [("a", "1"), ("b", "2")]})
    return InMemorySource(schema, instance)


class TestCachingSource:
    def test_repeat_accesses_hit_cache(self, backend):
        source = CachingSource(backend)
        first = source.access("mt_key", ("a",))
        second = source.access("mt_key", ("a",))
        assert first == second
        assert source.hits == 1
        assert source.misses == 1
        assert backend.total_invocations == 1

    def test_distinct_inputs_miss(self, backend):
        source = CachingSource(backend)
        source.access("mt_key", ("a",))
        source.access("mt_key", ("b",))
        assert source.misses == 2

    def test_plan_runs_through_cache(self):
        scenario = example1()
        plan = find_best_plan(scenario.schema, scenario.query).best_plan
        backend = InMemorySource(scenario.schema, scenario.instance(0))
        cached = CachingSource(backend)
        out_cached = plan.run(cached)
        fresh = InMemorySource(scenario.schema, scenario.instance(0))
        out_fresh = plan.run(fresh)
        assert out_cached.rows == out_fresh.rows


class TestBudgetedSource:
    def test_invocation_budget_enforced(self, backend):
        source = BudgetedSource(backend, max_invocations=2)
        source.access("mt_R")
        source.access("mt_R")
        with pytest.raises(AccessBudgetExceeded):
            source.access("mt_R")

    def test_cost_budget_enforced(self, backend):
        source = BudgetedSource(backend, max_cost=4.0)
        source.access("mt_key", ("a",))  # cost 3
        with pytest.raises(AccessBudgetExceeded):
            source.access("mt_key", ("b",))  # would exceed 4
        assert source.spent == pytest.approx(3.0)

    def test_plan_within_budget_succeeds(self):
        scenario = example1(professors=3, directory_extra=0)
        plan = find_best_plan(scenario.schema, scenario.query).best_plan
        backend = InMemorySource(scenario.schema, scenario.instance(0))
        # 1 scan + 3 probes fits in 10 invocations.
        source = BudgetedSource(backend, max_invocations=10)
        plan.run(source)

    def test_plan_over_budget_aborts(self):
        scenario = example1(professors=50, directory_extra=100)
        plan = find_best_plan(scenario.schema, scenario.query).best_plan
        backend = InMemorySource(scenario.schema, scenario.instance(0))
        source = BudgetedSource(backend, max_invocations=3)
        with pytest.raises(AccessBudgetExceeded):
            plan.run(source)


class TestFlakySource:
    def test_fails_on_selected_calls(self, backend):
        source = FlakySource(backend, fail_on=[1])
        source.access("mt_R")
        with pytest.raises(SourceUnavailable):
            source.access("mt_R")
        # Subsequent calls recover.
        source.access("mt_R")

    def test_predicate_failures(self, backend):
        source = FlakySource(
            backend,
            predicate=lambda method, inputs: method == "mt_key",
        )
        source.access("mt_R")
        with pytest.raises(SourceUnavailable):
            source.access("mt_key", ("a",))

    def test_plan_propagates_failure(self):
        scenario = example1()
        plan = find_best_plan(scenario.schema, scenario.query).best_plan
        backend = InMemorySource(scenario.schema, scenario.instance(0))
        source = FlakySource(backend, fail_on=[0])
        with pytest.raises(SourceUnavailable):
            plan.run(source)


class TestComposition:
    def test_cache_behind_budget(self, backend):
        """A cache inside a budget: repeats are free."""
        source = BudgetedSource(CachingSource(backend), max_invocations=5)
        for _ in range(5):
            source.access("mt_key", ("a",))
        # Budget counts the outer calls; backend saw only one.
        assert backend.total_invocations == 1

    def test_budget_behind_cache(self, backend):
        """A budget inside a cache: repeats don't consume budget."""
        source = CachingSource(BudgetedSource(backend, max_invocations=1))
        for _ in range(5):
            source.access("mt_key", ("a",))
        assert backend.total_invocations == 1


class TestCalibration:
    def test_weights_reflect_fanout(self):
        scenario = example1(professors=20, directory_extra=30)
        plan = find_best_plan(scenario.schema, scenario.query).best_plan
        source = InMemorySource(scenario.schema, scenario.instance(0))
        plan.run(source)
        weights = calibrate_costs(source)
        # The probe method was invoked many times: its calibrated weight
        # exceeds the one-shot scan's.
        assert weights["mt_prof"] > weights["mt_udir"]

    def test_replan_with_calibrated_costs(self):
        """Feedback loop: calibrated weights are usable for re-planning."""
        from repro.cost.functions import SimpleCostFunction

        scenario = example1()
        plan = find_best_plan(scenario.schema, scenario.query).best_plan
        source = InMemorySource(scenario.schema, scenario.instance(0))
        plan.run(source)
        cost = SimpleCostFunction(calibrate_costs(source))
        replanned = find_best_plan(
            scenario.schema,
            scenario.query,
            SearchOptions(cost=cost),
        )
        assert replanned.found
