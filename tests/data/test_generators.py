"""Unit tests for random instance generation and constraint repair."""

import pytest

from repro.data.generators import (
    InstanceGenerator,
    random_instance,
    repair_instance,
)
from repro.data.instance import Instance
from repro.logic.dependencies import parse_tgd
from repro.schema.core import SchemaBuilder


def schema_with_constraints():
    return (
        SchemaBuilder("s")
        .relation("R", 2)
        .relation("S", 1)
        .free_access("R")
        .tgd("R(x, y) -> S(y)")
        .build()
    )


class TestRandomInstance:
    def test_sizes_respected_before_repair(self):
        schema = SchemaBuilder("s").relation("R", 2).build()
        instance = random_instance(schema, sizes={"R": 5}, seed=1)
        assert instance.size("R") <= 5  # dedup can shrink

    def test_repair_makes_constraints_hold(self):
        schema = schema_with_constraints()
        instance = random_instance(schema, seed=2)
        assert instance.satisfies_all(schema.constraints)

    def test_deterministic_per_seed(self):
        schema = schema_with_constraints()
        a = random_instance(schema, seed=7)
        b = random_instance(schema, seed=7)
        assert a == b

    def test_different_seeds_differ(self):
        schema = schema_with_constraints()
        a = random_instance(schema, seed=1, default_size=20)
        b = random_instance(schema, seed=2, default_size=20)
        assert a != b

    def test_schema_constants_in_pool(self):
        schema = (
            SchemaBuilder("s").relation("R", 1).constant("special").build()
        )
        # With a tiny pool the constant almost surely appears somewhere
        # across seeds; just check generation does not crash and the pool
        # is honoured.
        instance = random_instance(schema, pool_size=1, seed=0)
        assert instance.size("R") >= 1


class TestRepair:
    def test_full_tgd_repair(self):
        instance = Instance({"R": [("a", "b")]})
        assert repair_instance(instance, [parse_tgd("R(x, y) -> S(y)")])
        assert instance.satisfies(parse_tgd("R(x, y) -> S(y)"))

    def test_existential_repair_invents_fresh_values(self):
        instance = Instance({"P": [("a",)]})
        tgd = parse_tgd("P(x) -> Q(x, y)")
        assert repair_instance(instance, [tgd])
        assert instance.size("Q") == 1

    def test_diverging_repair_gives_up_gracefully(self):
        instance = Instance({"R": [("a", "b")]})
        tgd = parse_tgd("R(x, y) -> R(y, z)")
        # Non-terminating: must return False, not hang.
        assert repair_instance(instance, [tgd], max_rounds=5) is False

    def test_noop_when_already_satisfied(self):
        instance = Instance({"S": [("a",)]})
        before = instance.copy()
        assert repair_instance(instance, [parse_tgd("R(x, y) -> S(y)")])
        assert instance == before


class TestGeneratorSeries:
    def test_series_distinct_seeds(self):
        schema = schema_with_constraints()
        generator = InstanceGenerator(schema, default_size=6)
        instances = list(generator.series(3))
        assert len(instances) == 3
        for instance in instances:
            assert instance.satisfies_all(schema.constraints)
