"""Unit tests for the access-enforced source and its metering."""

import pytest

from repro.data.instance import Instance
from repro.data.source import AccessViolation, InMemorySource
from repro.logic.terms import Constant
from repro.schema.core import SchemaBuilder


@pytest.fixture
def source():
    schema = (
        SchemaBuilder("s")
        .relation("R", 2)
        .access("mt_key", "R", inputs=[0], cost=2.0)
        .access("mt_scan", "R", inputs=[], cost=5.0)
        .build()
    )
    instance = Instance({"R": [("a", "1"), ("a", "2"), ("b", "3")]})
    return InMemorySource(schema, instance)


class TestAccess:
    def test_keyed_access_filters(self, source):
        rows = source.access("mt_key", ("a",))
        assert len(rows) == 2
        assert all(row[0] == Constant("a") for row in rows)

    def test_free_access_returns_all(self, source):
        assert len(source.access("mt_scan")) == 3

    def test_no_match_returns_empty(self, source):
        assert source.access("mt_key", ("zzz",)) == frozenset()

    def test_wrong_arity_raises(self, source):
        with pytest.raises(AccessViolation):
            source.access("mt_key", ())
        with pytest.raises(AccessViolation):
            source.access("mt_scan", ("a",))

    def test_unknown_method_raises(self, source):
        from repro.schema.core import SchemaError

        with pytest.raises(SchemaError):
            source.access("nope", ())


class TestInputCoercion:
    def test_constant_and_raw_inputs_are_equivalent(self, source):
        """`inputs` may mix `Constant` values and raw Python values."""
        via_raw = source.access("mt_key", ("a",))
        via_constant = source.access("mt_key", (Constant("a"),))
        assert via_raw == via_constant
        # Both invocations were logged with the same coerced inputs.
        assert source.log[0].inputs == source.log[1].inputs == (
            Constant("a"),
        )

    def test_arity_error_message_pinned(self, source):
        with pytest.raises(
            AccessViolation, match=r"method mt_key needs 1 inputs, got 0"
        ):
            source.access("mt_key", ())
        with pytest.raises(
            AccessViolation, match=r"method mt_scan needs 0 inputs, got 1"
        ):
            source.access("mt_scan", (Constant("a"),))

    def test_uncoercible_input_rejected(self, source):
        from repro.data.instance import InstanceError

        with pytest.raises(InstanceError):
            source.access("mt_key", (object(),))


class TestMethodIndex:
    def test_indexed_and_scan_agree(self):
        schema = (
            SchemaBuilder("s")
            .relation("R", 2)
            .access("mt_key", "R", inputs=[0], cost=2.0)
            .access("mt_scan", "R", inputs=[], cost=5.0)
            .build()
        )
        instance = Instance(
            {"R": [("a", "1"), ("a", "2"), ("b", "3"), ("c", "4")]}
        )
        indexed = InMemorySource(schema, instance, indexed=True)
        scanning = InMemorySource(schema, instance, indexed=False)
        for key in ("a", "b", "c", "zzz"):
            assert indexed.access("mt_key", (key,)) == scanning.access(
                "mt_key", (key,)
            )
        assert indexed.access("mt_scan") == scanning.access("mt_scan")

    def test_index_invalidated_on_instance_mutation(self, source):
        assert len(source.access("mt_key", ("a",))) == 2
        source.instance.add("R", ("a", "99"))
        assert len(source.access("mt_key", ("a",))) == 3
        assert len(source.access("mt_scan")) == 4

    def test_metering_identical_under_index(self, source):
        source.access("mt_key", ("a",))
        source.access("mt_key", ("a",))
        source.access("mt_scan")
        assert source.total_invocations == 3
        assert source.charged_cost() == pytest.approx(9.0)
        assert source.log[0].results == 2


class TestMetering:
    def test_log_records_everything(self, source):
        source.access("mt_key", ("a",))
        source.access("mt_key", ("a",))
        source.access("mt_scan")
        assert source.total_invocations == 3
        assert source.invocations_of("mt_key") == 2
        record = source.log[0]
        assert record.method == "mt_key"
        assert record.results == 2

    def test_distinct_accesses_deduplicates(self, source):
        source.access("mt_key", ("a",))
        source.access("mt_key", ("a",))
        source.access("mt_key", ("b",))
        assert len(source.distinct_accesses()) == 2

    def test_charged_cost_uses_declared_weights(self, source):
        source.access("mt_key", ("a",))
        source.access("mt_scan")
        assert source.charged_cost() == pytest.approx(7.0)

    def test_charged_cost_with_override(self, source):
        source.access("mt_key", ("a",))
        assert source.charged_cost({"mt_key": 10.0}) == pytest.approx(10.0)

    def test_reset_log(self, source):
        source.access("mt_scan")
        source.reset_log()
        assert source.total_invocations == 0
