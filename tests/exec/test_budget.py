"""Resource budgets: row ceilings, marked truncation, Plan.execute wiring."""

import pytest

from repro.data.instance import Instance
from repro.data.source import InMemorySource
from repro.errors import RowBudgetExceeded
from repro.exec import ExecStats, ResourceBudget
from repro.exec.budget import ERROR
from repro.logic.terms import Constant
from repro.plans.commands import AccessCommand, identity_output_map
from repro.plans.expressions import NamedTable, Singleton
from repro.plans.plan import Plan


@pytest.fixture
def schema():
    from repro.schema.core import SchemaBuilder

    return (
        SchemaBuilder("s")
        .relation("R", 2)
        .access("mt_R", "R", inputs=[], cost=1.0)
        .build()
    )


@pytest.fixture
def source(schema):
    rows = [(f"k{i}", f"v{i}") for i in range(6)]
    return InMemorySource(schema, Instance({"R": rows}))


def scan_plan():
    return Plan(
        (
            AccessCommand(
                "OUT",
                "mt_R",
                Singleton(),
                (),
                identity_output_map(("k", "v")),
            ),
        ),
        "OUT",
    )


class TestBudgetUnit:
    def test_resident_overflow_is_typed(self):
        budget = ResourceBudget(max_resident_rows=5)
        budget.check_resident(5)  # at the ceiling is fine
        with pytest.raises(RowBudgetExceeded) as info:
            budget.check_resident(6)
        assert info.value.kind == "resident"
        assert info.value.rows == 6
        assert info.value.budget == 5

    def test_truncation_is_a_deterministic_prefix(self):
        table = NamedTable.from_rows(
            ("x",), [(Constant(c),) for c in "fbdace"]
        )
        budget = ResourceBudget(max_result_rows=3)
        kept = budget.admit_result(table)
        assert kept.rows == frozenset(sorted(table.rows)[:3])
        assert budget.truncated_rows == 3
        assert budget.truncated
        # Re-admitting the same table truncates identically.
        assert budget.fresh().admit_result(table).rows == kept.rows

    def test_error_policy_raises_instead(self):
        table = NamedTable.from_rows(
            ("x",), [(Constant("a"),), (Constant("b"),)]
        )
        budget = ResourceBudget(max_result_rows=1, on_result_overflow=ERROR)
        with pytest.raises(RowBudgetExceeded) as info:
            budget.admit_result(table)
        assert info.value.kind == "result"

    def test_within_budget_is_untouched(self):
        table = NamedTable.from_rows(("x",), [(Constant("a"),)])
        budget = ResourceBudget(max_result_rows=5)
        assert budget.admit_result(table) is table
        assert not budget.truncated

    def test_fresh_resets_outcome_not_ceilings(self):
        budget = ResourceBudget(max_result_rows=1, truncated_rows=9)
        clean = budget.fresh()
        assert clean.truncated_rows == 0
        assert clean.max_result_rows == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ResourceBudget(max_result_rows=-1)
        with pytest.raises(ValueError):
            ResourceBudget(on_result_overflow="explode")
        assert "max_result_rows" in ResourceBudget().as_dict()


class TestPlanExecuteWiring:
    def test_result_budget_truncates_plan_output(self, source):
        budget = ResourceBudget(max_result_rows=2)
        out = scan_plan().execute(source, budget=budget)
        assert len(out.rows) == 2
        assert budget.truncated_rows == 4
        # The kept rows are the deterministic sorted prefix.
        full = scan_plan().execute(source)
        assert out.rows == frozenset(sorted(full.rows)[:2])

    def test_resident_budget_aborts_plan(self, source):
        with pytest.raises(RowBudgetExceeded):
            scan_plan().execute(
                source, budget=ResourceBudget(max_resident_rows=2)
            )

    def test_budget_and_stats_compose(self, source):
        stats = ExecStats()
        budget = ResourceBudget(max_result_rows=100)
        out = scan_plan().execute(source, stats=stats, budget=budget)
        assert len(out.rows) == 6
        assert stats.peak_resident_rows == 6
        assert not budget.truncated

    def test_no_budget_is_the_fast_path(self, source):
        assert len(scan_plan().execute(source).rows) == 6


class TestColumnarBudgetParity:
    """Truncation must be backend-independent: same sorted prefix, same
    ``truncated_rows`` -- the columnar executor routes its decoded
    output through the identical ``admit_result`` path."""

    def test_same_prefix_and_truncated_count(self, source):
        interp_budget = ResourceBudget(max_result_rows=2)
        columnar_budget = ResourceBudget(max_result_rows=2)
        interp = scan_plan().execute(source, budget=interp_budget)
        columnar = scan_plan().execute(
            source, budget=columnar_budget, executor="columnar"
        )
        assert columnar.rows == interp.rows
        assert columnar_budget.truncated_rows == interp_budget.truncated_rows == 4
        full = scan_plan().execute(source)
        assert columnar.rows == frozenset(sorted(full.rows)[:2])

    def test_differential_checks_truncation_too(self, source):
        budget = ResourceBudget(max_result_rows=2)
        out = scan_plan().execute(
            source, budget=budget, executor="differential"
        )
        assert len(out.rows) == 2
        assert budget.truncated_rows == 4

    def test_resident_budget_aborts_columnar_too(self, source):
        with pytest.raises(RowBudgetExceeded):
            scan_plan().execute(
                source,
                budget=ResourceBudget(max_resident_rows=2),
                executor="columnar",
            )
