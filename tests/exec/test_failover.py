"""Proof-driven failover: re-planning around dead access methods."""

import pytest

from repro.data.source import InMemorySource
from repro.errors import DeadlineExceeded, NoViablePlan
from repro.exec import (
    BreakerRegistry,
    Deadline,
    ExecStats,
    FailoverExecutor,
    ResilientDispatcher,
    RetryPolicy,
)
from repro.faults import FaultInjectingSource, FaultPolicy, VirtualClock
from repro.scenarios import example1, example5


def wrap(scenario, policy, clock=None, seed=0):
    inner = InMemorySource(scenario.schema, scenario.instance(seed))
    return FaultInjectingSource(inner, policy, clock=clock)


def dispatcher(clock=None, retries=2, deadline=None):
    clock = clock or VirtualClock()
    return ResilientDispatcher(
        retry=RetryPolicy(max_attempts=retries + 1),
        breakers=BreakerRegistry(clock=clock),
        deadline=deadline,
        sleep=clock.sleep,
    )


def reference_rows(scenario):
    """The fault-free answer via the normal planner/executor path."""
    from repro.planner.search import find_best_plan

    result = find_best_plan(scenario.schema, scenario.query)
    assert result.found
    source = InMemorySource(scenario.schema, scenario.instance(0))
    return result.best_plan.execute(source).rows


class TestFailover:
    def test_healthy_run_needs_no_failover(self):
        scenario = example5()
        executor = FailoverExecutor(
            scenario.schema,
            InMemorySource(scenario.schema, scenario.instance(0)),
        )
        outcome = executor.run(scenario.query)
        assert outcome.complete and outcome.ok and not outcome.partial
        assert outcome.failovers == 0
        assert len(outcome.plans_tried) == 1
        assert outcome.dead_methods == ()
        assert outcome.static_cost is not None
        assert "complete" in outcome.describe()

    def test_outage_fails_over_to_next_cheapest_plan(self):
        scenario = example5()
        source = wrap(scenario, FaultPolicy.outage("mt_udirect1"))
        stats = ExecStats()
        executor = FailoverExecutor(
            scenario.schema, source, resilience=dispatcher(), stats=stats
        )
        outcome = executor.run(scenario.query)
        assert outcome.complete
        assert outcome.failovers == 1
        assert outcome.dead_methods == ("mt_udirect1",)
        assert len(outcome.plans_tried) == 2
        assert outcome.plans_tried[1].endswith("~failover1")
        assert stats.failovers == 1
        # The failover plan computes the same certain answers.
        assert outcome.table.rows == reference_rows(scenario)

    def test_transient_faults_do_not_trigger_failover(self):
        scenario = example5()
        source = wrap(scenario, FaultPolicy.transient(0.4, seed=1))
        executor = FailoverExecutor(
            scenario.schema, source, resilience=dispatcher(retries=3)
        )
        outcome = executor.run(scenario.query)
        assert outcome.complete
        assert outcome.failovers == 0
        assert outcome.table.rows == reference_rows(scenario)

    def test_dead_method_stays_dead_across_queries(self):
        scenario = example5()
        source = wrap(scenario, FaultPolicy.outage("mt_udirect1"))
        executor = FailoverExecutor(
            scenario.schema, source, resilience=dispatcher()
        )
        first = executor.run(scenario.query)
        assert first.failovers == 1
        second = executor.run(scenario.query)
        # The second serving plans around the known-dead method directly.
        assert second.complete
        assert second.failovers == 0
        assert len(second.plans_tried) == 1
        assert second.plans_tried[0].endswith("~failover1")

    def test_cascading_outages_keep_failing_over(self):
        scenario = example5()
        source = wrap(
            scenario,
            FaultPolicy(
                seed=0, outages={"mt_udirect1": 0, "mt_udirect2": 0}
            ),
        )
        executor = FailoverExecutor(
            scenario.schema, source, resilience=dispatcher()
        )
        outcome = executor.run(scenario.query)
        assert outcome.complete
        assert outcome.failovers == 2
        assert set(outcome.dead_methods) == {"mt_udirect1", "mt_udirect2"}
        assert outcome.table.rows == reference_rows(scenario)


class TestPartialAnswers:
    def test_partial_answer_when_no_plan_survives(self):
        scenario = example1()
        source = wrap(scenario, FaultPolicy.outage("mt_udir"))
        executor = FailoverExecutor(
            scenario.schema, source, resilience=dispatcher()
        )
        outcome = executor.run(scenario.query)
        # mt_prof needs an eid input nobody can supply: no full plan.
        assert not outcome.complete
        assert outcome.partial and outcome.ok
        assert outcome.dead_methods == ("mt_udir",)
        assert outcome.table.rows == frozenset()
        assert "PARTIAL" in outcome.describe()
        assert isinstance(outcome.error, NoViablePlan)

    def test_allow_partial_false_reports_failure(self):
        scenario = example1()
        source = wrap(scenario, FaultPolicy.outage("mt_udir"))
        executor = FailoverExecutor(
            scenario.schema,
            source,
            resilience=dispatcher(),
            allow_partial=False,
        )
        outcome = executor.run(scenario.query)
        assert not outcome.ok
        assert isinstance(outcome.error, NoViablePlan)
        assert "FAILED" in outcome.describe()

    def test_all_methods_dead_raises_no_viable_plan_with_context(self):
        scenario = example1()
        executor = FailoverExecutor(
            scenario.schema,
            InMemorySource(scenario.schema, scenario.instance(0)),
        )
        executor.dead_methods = ["mt_prof", "mt_udir"]
        with pytest.raises(NoViablePlan) as excinfo:
            executor._plan(scenario.query)
        assert excinfo.value.dead_methods == ("mt_prof", "mt_udir")


class TestDeadlines:
    def test_expired_deadline_aborts_without_failover(self):
        scenario = example5()
        clock = VirtualClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(2.0)
        executor = FailoverExecutor(
            scenario.schema,
            InMemorySource(scenario.schema, scenario.instance(0)),
            resilience=dispatcher(clock=clock, deadline=deadline),
        )
        outcome = executor.run(scenario.query)
        assert not outcome.ok
        assert isinstance(outcome.error, DeadlineExceeded)
        assert outcome.failovers == 0
