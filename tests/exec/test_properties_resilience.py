"""Property tests pinning the determinism the service stack relies on.

Concurrent serving is only debuggable because every "random-looking"
decision is a pure seeded function: retry backoff jitter and fault
schedules replay identically across runs, processes, and thread
interleavings.  These properties pin that contract:

* :class:`~repro.exec.resilience.RetryPolicy` backoff never exceeds
  ``max_delay * (1 + jitter)``, is never negative, and is a
  deterministic function of (seed, method, inputs, attempt);
* :class:`~repro.faults.policy.FaultPolicy` schedules are pure: the
  same key always draws the same fault kind, rate 0 never fires,
  rate 1 always fires, and distinct seeds give independent schedules.
"""

from hypothesis import given, settings, strategies as st

from repro.exec.resilience import RetryPolicy
from repro.faults.policy import (
    TRANSIENT_KINDS,
    FaultPolicy,
    unit_interval,
)
from repro.logic.terms import Constant

methods = st.text(
    alphabet="abcdefgh_", min_size=1, max_size=8
).map(lambda s: f"mt_{s}")
inputs_strategy = st.tuples(
    *[st.sampled_from([Constant("a"), Constant("b"), Constant("c")])]
).map(tuple) | st.just(())
attempts = st.integers(min_value=1, max_value=12)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


class TestRetryPolicyBackoff:
    @given(
        seed=seeds,
        method=methods,
        attempt=attempts,
        base=st.floats(min_value=0.001, max_value=1.0),
        cap=st.floats(min_value=0.001, max_value=5.0),
        jitter=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_delay_is_bounded(self, seed, method, attempt, base, cap, jitter):
        policy = RetryPolicy(
            base_delay=base, max_delay=cap, jitter=jitter, seed=seed
        )
        delay = policy.delay(attempt, method, ())
        assert delay >= 0.0
        # The jitter stretches the capped delay by at most its factor.
        assert delay <= cap * (1.0 + jitter) + 1e-12

    @given(seed=seeds, method=methods, attempt=attempts)
    @settings(max_examples=200, deadline=None)
    def test_delay_is_deterministic_per_seed(self, seed, method, attempt):
        first = RetryPolicy(seed=seed).delay(attempt, method, ())
        second = RetryPolicy(seed=seed).delay(attempt, method, ())
        assert first == second

    @given(method=methods, attempt=attempts)
    @settings(max_examples=100, deadline=None)
    def test_delay_grows_until_the_cap(self, method, attempt):
        policy = RetryPolicy(
            base_delay=0.01, multiplier=2.0, max_delay=0.5, jitter=0.0
        )
        raw = 0.01 * 2.0 ** (attempt - 1)
        assert policy.delay(attempt, method, ()) == min(raw, 0.5)


class TestFaultPolicyDeterminism:
    @given(seed=seeds, method=methods, inputs=inputs_strategy)
    @settings(max_examples=200, deadline=None)
    def test_schedule_is_pure(self, seed, method, inputs):
        policy = FaultPolicy.transient(0.5, seed=seed)
        assert policy.kind_for(method, inputs) == policy.kind_for(
            method, inputs
        )

    @given(seed=seeds, method=methods, inputs=inputs_strategy)
    @settings(max_examples=100, deadline=None)
    def test_rate_zero_never_fires(self, seed, method, inputs):
        policy = FaultPolicy(seed=seed)
        assert policy.kind_for(method, inputs) is None

    @given(seed=seeds, method=methods, inputs=inputs_strategy)
    @settings(max_examples=100, deadline=None)
    def test_rate_one_always_fires_a_known_kind(self, seed, method, inputs):
        policy = FaultPolicy(seed=seed, unavailable_rate=1.0)
        assert policy.kind_for(method, inputs) in TRANSIENT_KINDS

    @given(method=methods, inputs=inputs_strategy)
    @settings(max_examples=100, deadline=None)
    def test_unit_interval_is_stable_and_in_range(self, method, inputs):
        draw = unit_interval(7, method, inputs)
        assert 0.0 <= draw < 1.0
        assert draw == unit_interval(7, method, inputs)

    @given(seed=seeds)
    @settings(max_examples=50, deadline=None)
    def test_two_seeds_eventually_disagree(self, seed):
        """Different seeds give different schedules on *some* key."""
        a = FaultPolicy.transient(0.5, seed=seed)
        b = FaultPolicy.transient(0.5, seed=seed + 1)
        keys = [(f"mt_{i}", ()) for i in range(64)]
        assert any(
            a.kind_for(m, i) != b.kind_for(m, i) for m, i in keys
        )
