"""ExecStats / CommandStats survive the dict trip across processes.

Workers ship their stats as ``as_dict()`` payloads; the parent
rebuilds them with ``from_dict`` and merges into the service ledger.
The derived totals must be *recomputed* from the command records --
never trusted from the payload -- so a corrupted or stale total cannot
poison the ledger.
"""

import json

from repro.data.instance import Instance
from repro.data.source import InMemorySource
from repro.exec.stats import CommandStats, ExecStats
from repro.plans.commands import AccessCommand, identity_output_map
from repro.plans.expressions import Singleton
from repro.plans.plan import Plan
from repro.schema.core import SchemaBuilder


def executed_stats():
    schema = (
        SchemaBuilder("stats")
        .relation("R", 2)
        .access("mt_R", "R", inputs=[], cost=1.0)
        .build()
    )
    source = InMemorySource(
        schema, Instance({"R": [("a", "1"), ("b", "2")]})
    )
    plan = Plan(
        (
            AccessCommand(
                "T", "mt_R", Singleton(), (), identity_output_map(("x", "y"))
            ),
        ),
        "T",
    )
    stats = ExecStats()
    plan.execute(source, stats=stats)
    return stats


class TestCommandStats:
    def test_round_trip(self):
        stats = executed_stats()
        command = stats.commands[0]
        revived = CommandStats.from_dict(
            json.loads(json.dumps(command.as_dict()))
        )
        assert revived.as_dict() == command.as_dict()


class TestExecStats:
    def test_round_trip_through_json(self):
        stats = executed_stats()
        shipped = json.loads(json.dumps(stats.as_dict()))
        revived = ExecStats.from_dict(shipped)
        assert revived.as_dict() == stats.as_dict()

    def test_totals_recomputed_not_trusted(self):
        stats = executed_stats()
        shipped = stats.as_dict()
        # A tampered top-level total must not survive the rebuild: the
        # command records are the ground truth.
        shipped["accesses_dispatched"] = 999999
        revived = ExecStats.from_dict(shipped)
        assert revived.accesses_dispatched == stats.accesses_dispatched

    def test_merge_after_round_trip(self):
        left = executed_stats()
        right = ExecStats.from_dict(executed_stats().as_dict())
        before = left.as_dict()["accesses_dispatched"]
        left.merge(right)
        assert left.as_dict()["accesses_dispatched"] == 2 * before
        assert len(left.commands) == 2

    def test_empty_stats_round_trip(self):
        empty = ExecStats()
        assert (
            ExecStats.from_dict(empty.as_dict()).as_dict() == empty.as_dict()
        )


class TestCalibrationFields:
    """The feedback-calibration fields survive the trip and default sanely."""

    def test_method_and_rows_fetched_recorded(self):
        stats = executed_stats()
        command = stats.commands[0]
        assert command.method == "mt_R"
        assert command.rows_fetched == 2
        assert command.rows_out <= command.rows_fetched

    def test_round_trip_preserves_calibration_fields(self):
        stats = executed_stats()
        revived = ExecStats.from_dict(stats.as_dict())
        assert revived.commands[0].method == "mt_R"
        assert revived.commands[0].rows_fetched == 2

    def test_old_payloads_without_the_fields_still_parse(self):
        # A worker running the previous stats schema ships no method /
        # rows_fetched keys; the parent must not reject the payload.
        payload = {"index": 0, "target": "T", "kind": "access"}
        revived = CommandStats.from_dict(payload)
        assert revived.method is None
        assert revived.rows_fetched == 0
