"""Tests for the tuned execution runtime: dedup, freeing, stats."""

import pytest

from repro.data.instance import Instance
from repro.data.source import InMemorySource
from repro.exec import AccessCache, ExecStats
from repro.plans.commands import AccessCommand, MiddlewareCommand, identity_output_map
from repro.plans.expressions import (
    Join,
    NamedTable,
    Project,
    Scan,
    Select,
    EqConst,
    Singleton,
)
from repro.plans.plan import Plan
from repro.logic.terms import Constant
from repro.schema.core import SchemaBuilder


@pytest.fixture
def schema():
    return (
        SchemaBuilder("s")
        .relation("R", 2)
        .relation("S", 2)
        .access("mt_R", "R", inputs=[], cost=1.0)
        .access("mt_S", "S", inputs=[0], cost=2.0)
        .build()
    )


@pytest.fixture
def instance():
    return Instance(
        {
            "R": [("a", "1"), ("a", "2"), ("b", "3")],
            "S": [("a", "x"), ("b", "y"), ("c", "z")],
        }
    )


def chained_plan():
    """Scan R, probe S once per distinct first column of R."""
    return Plan(
        (
            AccessCommand(
                "TR", "mt_R", Singleton(), (), identity_output_map(("k", "v"))
            ),
            MiddlewareCommand("TK", Project(Scan("TR"), ("k",))),
            AccessCommand(
                "TS",
                "mt_S",
                Scan("TK"),
                ("k",),
                identity_output_map(("k", "w")),
            ),
            MiddlewareCommand("OUT", Join(Scan("TR"), Scan("TS"))),
        ),
        "OUT",
    )


class TestExecuteEquivalence:
    def test_execute_matches_run(self, schema, instance):
        plan = chained_plan()
        reference = plan.run(InMemorySource(schema, instance, indexed=False))
        tuned = plan.execute(
            InMemorySource(schema, instance), cache=AccessCache()
        )
        assert tuned.attributes == reference.attributes
        assert tuned.rows == reference.rows

    def test_no_free_temps_still_matches(self, schema, instance):
        plan = chained_plan()
        reference = plan.run(InMemorySource(schema, instance))
        tuned = plan.execute(
            InMemorySource(schema, instance), free_temps=False
        )
        assert tuned.rows == reference.rows


class TestDedupDispatch:
    def test_duplicate_bindings_dispatch_once(self, schema, instance):
        # TR has rows (a,1), (a,2), (b,3); probing S on the first column
        # directly (without an explicit projection) must still dispatch
        # only the two distinct keys.
        plan = Plan(
            (
                AccessCommand(
                    "TR",
                    "mt_R",
                    Singleton(),
                    (),
                    identity_output_map(("k", "v")),
                ),
                AccessCommand(
                    "TS",
                    "mt_S",
                    Scan("TR"),
                    ("k",),
                    identity_output_map(("k", "w")),
                ),
            ),
            "TS",
        )
        source = InMemorySource(schema, instance)
        stats = ExecStats()
        plan.execute(source, stats=stats)
        probe = stats.commands[1]
        assert probe.rows_in == 3
        assert probe.dispatched == 2
        assert probe.deduped == 1
        assert source.invocations_of("mt_S") == 2

    def test_constant_binding_dispatches_once(self, schema, instance):
        plan = Plan(
            (
                AccessCommand(
                    "TR",
                    "mt_R",
                    Singleton(),
                    (),
                    identity_output_map(("k", "v")),
                ),
                AccessCommand(
                    "TS",
                    "mt_S",
                    Scan("TR"),
                    (Constant("a"),),
                    identity_output_map(("k", "w")),
                ),
            ),
            "TS",
        )
        source = InMemorySource(schema, instance)
        stats = ExecStats()
        plan.execute(source, stats=stats)
        # Three input rows all bind the same constant tuple.
        assert stats.commands[1].dispatched == 1
        assert stats.commands[1].deduped == 2
        assert source.invocations_of("mt_S") == 1


class TestCacheIntegration:
    def test_shared_cache_across_runs(self, schema, instance):
        plan = chained_plan()
        source = InMemorySource(schema, instance)
        cache = AccessCache()
        first = plan.execute(source, cache=cache)
        invocations_after_first = source.total_invocations
        second = plan.execute(source, cache=cache)
        assert first.rows == second.rows
        # Every access of the second run was served from the cache.
        assert source.total_invocations == invocations_after_first
        assert cache.hits > 0

    def test_charge_hits_keeps_invocation_series(self, schema, instance):
        plan = chained_plan()
        uncached = InMemorySource(schema, instance)
        plan.execute(uncached)
        plan.execute(uncached)
        charged = InMemorySource(schema, instance)
        plan.execute(charged, cache=AccessCache(charge_hits=True))
        plan.execute(charged, cache=AccessCache(charge_hits=True))
        # Per-run caches with charged hits reproduce the uncached books.
        assert charged.total_invocations == uncached.total_invocations
        assert charged.charged_cost() == pytest.approx(
            uncached.charged_cost()
        )


class TestTempFreeing:
    def test_intermediates_freed_after_last_reader(self, schema, instance):
        plan = chained_plan()
        stats = ExecStats()
        plan.execute(InMemorySource(schema, instance), stats=stats)
        # TK's last reader is the TS access (index 2); TR and TS feed the
        # final join.  Everything except OUT is freed by the end.
        assert sum(c.freed_tables for c in stats.commands) == 3
        assert stats.peak_resident_rows > 0

    def test_dead_target_freed_immediately(self, schema, instance):
        plan = Plan(
            (
                AccessCommand(
                    "TR",
                    "mt_R",
                    Singleton(),
                    (),
                    identity_output_map(("k", "v")),
                ),
                MiddlewareCommand("DEAD", Project(Scan("TR"), ("k",))),
                MiddlewareCommand("OUT", Scan("TR")),
            ),
            "OUT",
        )
        stats = ExecStats()
        output = plan.execute(
            InMemorySource(schema, instance), stats=stats
        )
        assert len(output.rows) == 3
        # DEAD is never read: released right after it is produced.
        assert stats.commands[1].freed_tables == 1

    def test_peak_resident_lower_with_freeing(self, schema, instance):
        plan = chained_plan()
        kept = ExecStats()
        plan.execute(
            InMemorySource(schema, instance), stats=kept, free_temps=False
        )
        freed = ExecStats()
        plan.execute(
            InMemorySource(schema, instance), stats=freed, free_temps=True
        )
        assert freed.peak_resident_rows <= kept.peak_resident_rows


class TestStats:
    def test_stats_shape(self, schema, instance):
        plan = chained_plan()
        stats = ExecStats()
        plan.execute(InMemorySource(schema, instance), stats=stats)
        assert stats.runs == 1
        assert len(stats.commands) == len(plan.commands)
        assert stats.wall_time > 0
        assert stats.accesses_dispatched == stats.source_invocations
        data = stats.as_dict()
        assert data["runs"] == 1
        assert len(data["commands"]) == 4
        assert "dispatched" in stats.summary()

    def test_selection_fused_into_join_same_result(self, schema, instance):
        # σ/π over a join evaluate through the fused path; the plan-level
        # result must match composing the unfused operators.
        env = {
            "A": NamedTable.from_rows(
                ("k", "v"),
                [(Constant("a"), Constant("1")), (Constant("b"), Constant("3"))],
            ),
            "B": NamedTable.from_rows(
                ("k", "w"),
                [(Constant("a"), Constant("x")), (Constant("b"), Constant("y"))],
            ),
        }
        fused = Select(
            Join(Scan("A"), Scan("B")), (EqConst("w", Constant("x")),)
        ).evaluate(env)
        unfused_join = Join(Scan("A"), Scan("B")).evaluate(env)
        expected = frozenset(
            row
            for row in unfused_join.rows
            if row[unfused_join.column("w")] == Constant("x")
        )
        assert fused.rows == expected
