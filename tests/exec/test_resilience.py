"""Retry policy, deadlines, breaker state machine, and the dispatcher."""

import pytest

from repro.errors import (
    AccessViolation,
    CircuitOpen,
    DeadlineExceeded,
    MethodOutage,
    SourceUnavailable,
)
from repro.exec.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerRegistry,
    CircuitBreaker,
    Deadline,
    ResilientDispatcher,
    RetryPolicy,
)
from repro.faults import VirtualClock


class FlakyFetch:
    """A thunk that fails ``failures`` times, then returns ``value``."""

    def __init__(self, failures, value="rows", error=SourceUnavailable):
        self.failures = failures
        self.value = value
        self.error = error
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error(f"flake #{self.calls}", method="mt")
        return self.value


class TestRetryPolicy:
    def test_backoff_is_capped_exponential(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, max_delay=0.3, jitter=0.0
        )
        delays = [policy.delay(n, "mt", ("a",)) for n in (1, 2, 3, 4)]
        assert delays == [0.1, 0.2, 0.3, 0.3]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=1.0, jitter=0.5, seed=9)
        once = policy.delay(1, "mt", ("a",))
        assert once == policy.delay(1, "mt", ("a",))
        assert 1.0 <= once <= 1.5
        assert once != policy.delay(2, "mt", ("a",))
        assert once != RetryPolicy(
            base_delay=1.0, max_delay=1.0, jitter=0.5, seed=10
        ).delay(1, "mt", ("a",))

    def test_should_retry_respects_cap_and_kind(self):
        policy = RetryPolicy(max_attempts=3)
        transient = SourceUnavailable("down")
        assert policy.should_retry(transient, 1)
        assert policy.should_retry(transient, 2)
        assert not policy.should_retry(transient, 3)
        assert not policy.should_retry(AccessViolation("bad arity"), 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class TestDeadline:
    def test_expiry_on_a_virtual_clock(self):
        clock = VirtualClock()
        deadline = Deadline(10.0, clock=clock)
        deadline.check("setup")
        assert deadline.remaining() == 10.0
        clock.advance(9.0)
        assert not deadline.expired
        clock.advance(1.5)
        assert deadline.expired
        with pytest.raises(DeadlineExceeded, match="during access mt_x"):
            deadline.check("access mt_x")

    def test_must_be_positive(self):
        with pytest.raises(ValueError):
            Deadline(0.0, clock=VirtualClock())


class TestCircuitBreaker:
    def make(self, clock=None, **kwargs):
        return CircuitBreaker(
            "mt", clock=clock or VirtualClock(), **kwargs
        )

    def test_trips_at_threshold_not_before(self):
        breaker = self.make(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_the_failure_streak(self):
        breaker = self.make(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_open_half_opens_after_recovery_then_closes(self):
        clock = VirtualClock()
        breaker = self.make(
            clock=clock, failure_threshold=1, recovery_time=30.0
        )
        breaker.record_failure()
        assert breaker.state == OPEN and not breaker.allow()
        clock.advance(29.0)
        assert not breaker.allow()
        clock.advance(1.0)
        assert breaker.allow()  # the probe is let through
        assert breaker.state == HALF_OPEN
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_half_open_failure_retrips_immediately(self):
        clock = VirtualClock()
        breaker = self.make(
            clock=clock, failure_threshold=3, recovery_time=5.0
        )
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()  # one probe failure is enough
        assert breaker.state == OPEN
        assert breaker.trips == 2

    def test_forced_open_never_half_opens(self):
        clock = VirtualClock()
        breaker = self.make(clock=clock, recovery_time=1.0)
        breaker.record_failure(permanent=True)
        assert breaker.state == OPEN and breaker.forced
        clock.advance(1000.0)
        assert not breaker.allow()
        error = breaker.refuse(("a",))
        assert isinstance(error, CircuitOpen)
        assert "hard outage" in str(error)

    def test_registry_shares_settings_and_counts_trips(self):
        registry = BreakerRegistry(failure_threshold=1, clock=VirtualClock())
        assert registry.for_method("mt_a") is registry.for_method("mt_a")
        registry.for_method("mt_a").record_failure()
        registry.for_method("mt_b").record_failure()
        assert registry.open_methods() == ("mt_a", "mt_b")
        assert registry.trips == 2


class TestResilientDispatcher:
    def test_retries_until_success(self):
        dispatcher = ResilientDispatcher(retry=RetryPolicy(max_attempts=4))
        fetch = FlakyFetch(failures=2)
        assert dispatcher.call(fetch, "mt") == "rows"
        assert fetch.calls == 3
        assert dispatcher.retries == 2
        assert dispatcher.faults == 2
        assert dispatcher.giveups == 0
        assert dispatcher.backoff_waited > 0

    def test_gives_up_past_the_attempt_cap(self):
        dispatcher = ResilientDispatcher(retry=RetryPolicy(max_attempts=2))
        fetch = FlakyFetch(failures=5)
        with pytest.raises(SourceUnavailable) as excinfo:
            dispatcher.call(fetch, "mt")
        assert fetch.calls == 2
        assert excinfo.value.attempts == 2
        assert dispatcher.giveups == 1

    def test_no_policy_means_fail_fast(self):
        dispatcher = ResilientDispatcher()
        with pytest.raises(SourceUnavailable):
            dispatcher.call(FlakyFetch(failures=1), "mt")
        assert dispatcher.retries == 0

    def test_permanent_errors_are_never_retried(self):
        dispatcher = ResilientDispatcher(retry=RetryPolicy(max_attempts=9))
        fetch = FlakyFetch(failures=5, error=MethodOutage)
        with pytest.raises(MethodOutage):
            dispatcher.call(fetch, "mt")
        assert fetch.calls == 1

    def test_backoff_that_overruns_the_deadline_aborts(self):
        clock = VirtualClock()
        dispatcher = ResilientDispatcher(
            retry=RetryPolicy(max_attempts=4, base_delay=5.0, jitter=0.0),
            deadline=Deadline(1.0, clock=clock),
            sleep=clock.sleep,
        )
        with pytest.raises(DeadlineExceeded, match="would overrun"):
            dispatcher.call(FlakyFetch(failures=1), "mt")
        assert dispatcher.giveups == 1

    def test_expired_deadline_refuses_before_fetching(self):
        clock = VirtualClock()
        dispatcher = ResilientDispatcher(deadline=Deadline(1.0, clock=clock))
        clock.advance(2.0)
        fetch = FlakyFetch(failures=0)
        with pytest.raises(DeadlineExceeded):
            dispatcher.call(fetch, "mt")
        assert fetch.calls == 0

    def test_breaker_opens_and_fails_fast(self):
        dispatcher = ResilientDispatcher(
            breakers=BreakerRegistry(
                failure_threshold=2, clock=VirtualClock()
            )
        )
        for _ in range(2):
            with pytest.raises(SourceUnavailable):
                dispatcher.call(FlakyFetch(failures=1), "mt")
        fetch = FlakyFetch(failures=0)
        with pytest.raises(CircuitOpen):
            dispatcher.call(fetch, "mt")
        assert fetch.calls == 0  # refused before touching the source
        assert dispatcher.breaker_trips == 1

    def test_outage_force_opens_the_breaker(self):
        dispatcher = ResilientDispatcher(
            breakers=BreakerRegistry(
                failure_threshold=99, clock=VirtualClock()
            )
        )
        with pytest.raises(MethodOutage):
            dispatcher.call(FlakyFetch(failures=1, error=MethodOutage), "mt")
        assert dispatcher.breakers.for_method("mt").forced
        with pytest.raises(CircuitOpen):
            dispatcher.call(FlakyFetch(failures=0), "mt")

    def test_sleep_receives_the_backoff(self):
        clock = VirtualClock()
        dispatcher = ResilientDispatcher(
            retry=RetryPolicy(max_attempts=2, base_delay=0.5, jitter=0.0),
            sleep=clock.sleep,
        )
        dispatcher.call(FlakyFetch(failures=1), "mt")
        assert clock.now() == pytest.approx(0.5)
        assert dispatcher.backoff_waited == pytest.approx(0.5)

    def test_summary_mentions_every_counter(self):
        dispatcher = ResilientDispatcher(retry=RetryPolicy(max_attempts=2))
        dispatcher.call(FlakyFetch(failures=1), "mt")
        text = dispatcher.summary()
        assert "1 retries" in text
        assert "1 faults seen" in text
        assert "breaker trips" in text
