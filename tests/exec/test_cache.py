"""Unit tests for the bounded LRU access cache and its metering policy."""

import pytest

from repro.data.instance import Instance
from repro.data.source import InMemorySource
from repro.exec import AccessCache
from repro.logic.terms import Constant
from repro.schema.core import SchemaBuilder


@pytest.fixture
def source():
    schema = (
        SchemaBuilder("s")
        .relation("R", 2)
        .access("mt_key", "R", inputs=[0], cost=2.0)
        .access("mt_scan", "R", inputs=[], cost=5.0)
        .build()
    )
    instance = Instance({"R": [("a", "1"), ("a", "2"), ("b", "3")]})
    return InMemorySource(schema, instance)


class TestHitMissAccounting:
    def test_miss_then_hit(self, source):
        cache = AccessCache()
        first = cache.fetch(source, "mt_key", (Constant("a"),))
        second = cache.fetch(source, "mt_key", (Constant("a"),))
        assert first == second
        assert len(first) == 2
        assert cache.misses == 1
        assert cache.hits == 1
        # The hit never reached the source.
        assert source.total_invocations == 1

    def test_distinct_inputs_are_distinct_entries(self, source):
        cache = AccessCache()
        cache.fetch(source, "mt_key", (Constant("a"),))
        cache.fetch(source, "mt_key", (Constant("b"),))
        cache.fetch(source, "mt_scan", ())
        assert cache.misses == 3
        assert cache.hits == 0
        assert len(cache) == 3

    def test_hits_are_free_by_default(self, source):
        cache = AccessCache()
        cache.fetch(source, "mt_key", (Constant("a"),))
        cache.fetch(source, "mt_key", (Constant("a"),))
        assert source.total_invocations == 1
        assert source.charged_cost() == pytest.approx(2.0)

    def test_charge_hits_restores_old_accounting(self, source):
        cache = AccessCache(charge_hits=True)
        cache.fetch(source, "mt_key", (Constant("a"),))
        cache.fetch(source, "mt_key", (Constant("a"),))
        assert source.total_invocations == 2
        assert source.charged_cost() == pytest.approx(4.0)
        # The re-logged record carries the method, inputs and result size.
        replayed = source.log[-1]
        assert replayed.method == "mt_key"
        assert replayed.relation == "R"
        assert replayed.inputs == (Constant("a"),)
        assert replayed.results == 2


class TestEvictionAndInvalidation:
    def test_lru_eviction(self, source):
        cache = AccessCache(maxsize=2)
        cache.fetch(source, "mt_key", (Constant("a"),))
        cache.fetch(source, "mt_key", (Constant("b"),))
        # Touch "a" so "b" is the least recently used entry.
        cache.fetch(source, "mt_key", (Constant("a"),))
        cache.fetch(source, "mt_key", (Constant("zzz"),))
        assert cache.evictions == 1
        assert len(cache) == 2
        # "a" survived, "b" was evicted.
        cache.fetch(source, "mt_key", (Constant("a"),))
        assert cache.hits == 2
        cache.fetch(source, "mt_key", (Constant("b"),))
        assert cache.misses == 4

    def test_instance_mutation_invalidates(self, source):
        cache = AccessCache()
        before = cache.fetch(source, "mt_key", (Constant("a"),))
        assert len(before) == 2
        source.instance.add("R", ("a", "99"))
        after = cache.fetch(source, "mt_key", (Constant("a"),))
        assert len(after) == 3
        assert cache.misses == 2  # the stale entry was dropped, not served

    def test_clear_resets_everything(self, source):
        cache = AccessCache()
        cache.fetch(source, "mt_key", (Constant("a"),))
        cache.fetch(source, "mt_key", (Constant("a"),))
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == cache.misses == cache.evictions == 0

    def test_maxsize_must_be_positive(self):
        with pytest.raises(ValueError):
            AccessCache(maxsize=0)


class TestReporting:
    def test_summary_and_dict(self, source):
        cache = AccessCache(maxsize=8)
        cache.fetch(source, "mt_scan", ())
        cache.fetch(source, "mt_scan", ())
        assert "1 hits" in cache.summary()
        data = cache.as_dict()
        assert data["hits"] == 1
        assert data["misses"] == 1
        assert data["maxsize"] == 8
        assert data["charge_hits"] is False


class _CountingSchema:
    """Schema proxy counting ``method()`` lookups (stale-read regression)."""

    def __init__(self, schema):
        self._schema = schema
        self.method_lookups = 0

    def method(self, name):
        self.method_lookups += 1
        return self._schema.method(name)

    def __getattr__(self, name):
        return getattr(self._schema, name)


class TestHitsNeverTouchSchema:
    """Regression: a charged hit replays from the cached entry alone.

    ``charge_hits`` used to re-read ``source.schema.method(method)`` on
    every hit to recover the relation name for the replayed log record;
    the relation is now hoisted into the entry at miss time, so a hit
    is pure cache reads plus one log append.
    """

    def test_charged_hit_does_not_read_schema(self, source):
        source.schema = _CountingSchema(source.schema)
        cache = AccessCache(charge_hits=True)
        cache.fetch(source, "mt_key", (Constant("a"),))
        lookups_after_miss = source.schema.method_lookups
        assert lookups_after_miss >= 1  # the miss hoisted the relation
        for _ in range(5):
            cache.fetch(source, "mt_key", (Constant("a"),))
        assert source.schema.method_lookups == lookups_after_miss
        # The replayed records still carry the hoisted relation.
        assert source.log[-1].relation == "R"
        assert source.total_invocations == 6

    def test_uncharged_hit_does_not_read_schema_either(self, source):
        source.schema = _CountingSchema(source.schema)
        cache = AccessCache()
        cache.fetch(source, "mt_key", (Constant("a"),))
        lookups_after_miss = source.schema.method_lookups
        cache.fetch(source, "mt_key", (Constant("a"),))
        assert source.schema.method_lookups == lookups_after_miss


class TestConcurrency:
    def test_stampede_collapses_to_one_invocation(self, source):
        import threading

        class SlowSource:
            def __init__(self, inner):
                self.inner = inner
                self.started = threading.Event()
                self.release = threading.Event()

            @property
            def schema(self):
                return self.inner.schema

            def __getattr__(self, name):
                return getattr(self.inner, name)

            def access(self, method, inputs=()):
                self.started.set()
                assert self.release.wait(10)
                return self.inner.access(method, inputs)

        slow = SlowSource(source)
        cache = AccessCache()
        results = []

        def fetch():
            results.append(cache.fetch(slow, "mt_key", (Constant("a"),)))

        threads = [threading.Thread(target=fetch) for _ in range(8)]
        threads[0].start()
        assert slow.started.wait(10)
        for thread in threads[1:]:
            thread.start()
        # Give the waiters time to park on the in-flight fetch, then
        # release the single source call.
        import time

        time.sleep(0.05)
        slow.release.set()
        for thread in threads:
            thread.join(10)
            assert not thread.is_alive()
        assert len(results) == 8
        assert all(rows == results[0] for rows in results)
        # One miss reached the source; everyone else was served from it.
        assert source.total_invocations == 1
        assert cache.misses == 1
        assert cache.hits == 7
        assert cache.stampedes_collapsed >= 1

    def test_failed_fetch_propagates_and_waiters_retry(self, source):
        import threading

        class FailOnceSource:
            def __init__(self, inner):
                self.inner = inner
                self.calls = 0
                self._lock = threading.Lock()

            @property
            def schema(self):
                return self.inner.schema

            def __getattr__(self, name):
                return getattr(self.inner, name)

            def access(self, method, inputs=()):
                with self._lock:
                    self.calls += 1
                    first = self.calls == 1
                if first:
                    raise RuntimeError("boom")
                return self.inner.access(method, inputs)

        flaky = FailOnceSource(source)
        cache = AccessCache()
        with pytest.raises(RuntimeError):
            cache.fetch(flaky, "mt_key", (Constant("a"),))
        # The failure was not cached: the next fetch retries the source.
        rows = cache.fetch(flaky, "mt_key", (Constant("a"),))
        assert len(rows) == 2
        assert flaky.calls == 2

    def test_many_threads_many_keys_consistent_accounting(self, source):
        import threading

        cache = AccessCache(maxsize=4)
        keys = [(Constant("a"),), (Constant("b"),), (Constant("c"),)]
        fetches_per_thread = 30
        errors = []

        def hammer(seed):
            try:
                for i in range(fetches_per_thread):
                    key = keys[(seed + i) % len(keys)]
                    rows = cache.fetch(source, "mt_key", key)
                    assert isinstance(rows, frozenset)
            except Exception as error:
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(seed,))
            for seed in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10)
            assert not thread.is_alive()
        assert not errors
        assert cache.hits + cache.misses == 8 * fetches_per_thread
        assert cache.misses == source.total_invocations
