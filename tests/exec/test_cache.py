"""Unit tests for the bounded LRU access cache and its metering policy."""

import pytest

from repro.data.instance import Instance
from repro.data.source import InMemorySource
from repro.exec import AccessCache
from repro.logic.terms import Constant
from repro.schema.core import SchemaBuilder


@pytest.fixture
def source():
    schema = (
        SchemaBuilder("s")
        .relation("R", 2)
        .access("mt_key", "R", inputs=[0], cost=2.0)
        .access("mt_scan", "R", inputs=[], cost=5.0)
        .build()
    )
    instance = Instance({"R": [("a", "1"), ("a", "2"), ("b", "3")]})
    return InMemorySource(schema, instance)


class TestHitMissAccounting:
    def test_miss_then_hit(self, source):
        cache = AccessCache()
        first = cache.fetch(source, "mt_key", (Constant("a"),))
        second = cache.fetch(source, "mt_key", (Constant("a"),))
        assert first == second
        assert len(first) == 2
        assert cache.misses == 1
        assert cache.hits == 1
        # The hit never reached the source.
        assert source.total_invocations == 1

    def test_distinct_inputs_are_distinct_entries(self, source):
        cache = AccessCache()
        cache.fetch(source, "mt_key", (Constant("a"),))
        cache.fetch(source, "mt_key", (Constant("b"),))
        cache.fetch(source, "mt_scan", ())
        assert cache.misses == 3
        assert cache.hits == 0
        assert len(cache) == 3

    def test_hits_are_free_by_default(self, source):
        cache = AccessCache()
        cache.fetch(source, "mt_key", (Constant("a"),))
        cache.fetch(source, "mt_key", (Constant("a"),))
        assert source.total_invocations == 1
        assert source.charged_cost() == pytest.approx(2.0)

    def test_charge_hits_restores_old_accounting(self, source):
        cache = AccessCache(charge_hits=True)
        cache.fetch(source, "mt_key", (Constant("a"),))
        cache.fetch(source, "mt_key", (Constant("a"),))
        assert source.total_invocations == 2
        assert source.charged_cost() == pytest.approx(4.0)
        # The re-logged record carries the method, inputs and result size.
        replayed = source.log[-1]
        assert replayed.method == "mt_key"
        assert replayed.relation == "R"
        assert replayed.inputs == (Constant("a"),)
        assert replayed.results == 2


class TestEvictionAndInvalidation:
    def test_lru_eviction(self, source):
        cache = AccessCache(maxsize=2)
        cache.fetch(source, "mt_key", (Constant("a"),))
        cache.fetch(source, "mt_key", (Constant("b"),))
        # Touch "a" so "b" is the least recently used entry.
        cache.fetch(source, "mt_key", (Constant("a"),))
        cache.fetch(source, "mt_key", (Constant("zzz"),))
        assert cache.evictions == 1
        assert len(cache) == 2
        # "a" survived, "b" was evicted.
        cache.fetch(source, "mt_key", (Constant("a"),))
        assert cache.hits == 2
        cache.fetch(source, "mt_key", (Constant("b"),))
        assert cache.misses == 4

    def test_instance_mutation_invalidates(self, source):
        cache = AccessCache()
        before = cache.fetch(source, "mt_key", (Constant("a"),))
        assert len(before) == 2
        source.instance.add("R", ("a", "99"))
        after = cache.fetch(source, "mt_key", (Constant("a"),))
        assert len(after) == 3
        assert cache.misses == 2  # the stale entry was dropped, not served

    def test_clear_resets_everything(self, source):
        cache = AccessCache()
        cache.fetch(source, "mt_key", (Constant("a"),))
        cache.fetch(source, "mt_key", (Constant("a"),))
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == cache.misses == cache.evictions == 0

    def test_maxsize_must_be_positive(self):
        with pytest.raises(ValueError):
            AccessCache(maxsize=0)


class TestReporting:
    def test_summary_and_dict(self, source):
        cache = AccessCache(maxsize=8)
        cache.fetch(source, "mt_scan", ())
        cache.fetch(source, "mt_scan", ())
        assert "1 hits" in cache.summary()
        data = cache.as_dict()
        assert data["hits"] == 1
        assert data["misses"] == 1
        assert data["maxsize"] == 8
        assert data["charge_hits"] is False
