"""End-to-end runtime soundness: every execution mode equals the truth.

The runtime counterpart of the PR 1/2 differential oracles: for every
scenario in :mod:`repro.scenarios` whose query has a complete plan, the
plan executed over an :class:`InMemorySource` -- naive scan, indexed,
cached, indexed+cached, with and without temp freeing, and through the
columnar and differential executors -- returns exactly
``Instance.evaluate(query)``.
"""

import pytest

from repro.data.source import InMemorySource
from repro.exec import (
    AccessCache,
    BreakerRegistry,
    ResilientDispatcher,
    RetryPolicy,
)
from repro.faults import FaultInjectingSource, FaultPolicy, VirtualClock
from repro.planner.search import SearchOptions, find_best_plan
from repro.scenarios import (
    example1,
    example2,
    example5,
    referential_chain,
    view_stack_scenario,
    webservices,
)

SCENARIOS = [
    ("example1", example1, 3),
    ("example2", example2, 4),
    ("example5", example5, 4),
    ("chain2", lambda: referential_chain(2), 4),
    ("views", view_stack_scenario, 4),
    ("webservices", webservices, 5),
]


def _answers(scenario, output):
    """Plan output normalized for comparison against the query answer."""
    if scenario.query.is_boolean:
        return bool(output.rows)
    return set(output.rows)


@pytest.mark.parametrize(
    "name,factory,budget", SCENARIOS, ids=[s[0] for s in SCENARIOS]
)
def test_every_execution_mode_is_complete(name, factory, budget):
    scenario = factory()
    result = find_best_plan(
        scenario.schema, scenario.query, SearchOptions(max_accesses=budget)
    )
    if not result.found:
        pytest.skip(f"{name}: no complete plan within {budget} accesses")
    plan = result.best_plan
    instance = scenario.instance(0)
    truth = (
        bool(instance.evaluate(scenario.query))
        if scenario.query.is_boolean
        else instance.evaluate(scenario.query)
    )

    naive_source = InMemorySource(scenario.schema, instance, indexed=False)
    naive = plan.run(naive_source)
    assert _answers(scenario, naive) == truth

    modes = {
        "indexed": dict(indexed=True, cache=None),
        "cached": dict(indexed=False, cache=AccessCache()),
        "indexed+cached": dict(indexed=True, cache=AccessCache()),
        "indexed+charged": dict(
            indexed=True, cache=AccessCache(charge_hits=True)
        ),
    }
    for executor in ("interpreter", "columnar", "differential"):
        for mode, config in modes.items():
            source = InMemorySource(
                scenario.schema, instance, indexed=config["indexed"]
            )
            output = plan.execute(
                source, cache=config["cache"], executor=executor
            )
            assert output.attributes == naive.attributes, (executor, mode)
            assert output.rows == naive.rows, (executor, mode)
            assert _answers(scenario, output) == truth, (executor, mode)

    # Temp freeing must not change the output either.
    for executor in ("interpreter", "columnar"):
        unfreed = plan.execute(
            InMemorySource(scenario.schema, instance),
            free_temps=False,
            executor=executor,
        )
        assert unfreed.rows == naive.rows, executor


@pytest.mark.parametrize(
    "name,factory,budget", SCENARIOS, ids=[s[0] for s in SCENARIOS]
)
def test_executors_agree_under_injected_faults(name, factory, budget):
    """Fault schedules are keyed by (method, inputs), not dispatch
    order, so columnar's different access ordering must not change the
    answer -- every executor retries through the same transients."""
    scenario = factory()
    result = find_best_plan(
        scenario.schema, scenario.query, SearchOptions(max_accesses=budget)
    )
    if not result.found:
        pytest.skip(f"{name}: no complete plan within {budget} accesses")
    plan = result.best_plan
    instance = scenario.instance(0)
    reference = plan.execute(InMemorySource(scenario.schema, instance))
    for executor in ("interpreter", "columnar", "differential"):
        clock = VirtualClock()
        source = FaultInjectingSource(
            InMemorySource(scenario.schema, instance),
            FaultPolicy.transient(0.3, seed=11),
            clock=clock,
        )
        dispatcher = ResilientDispatcher(
            retry=RetryPolicy(max_attempts=6, seed=11),
            breakers=BreakerRegistry(clock=clock),
            sleep=clock.sleep,
        )
        output = plan.execute(
            source, resilience=dispatcher, executor=executor
        )
        assert output.rows == reference.rows, executor


@pytest.mark.parametrize(
    "name,factory,budget", SCENARIOS, ids=[s[0] for s in SCENARIOS]
)
def test_differential_with_charged_cache(name, factory, budget):
    """charge_hits metering must not break differential agreement."""
    scenario = factory()
    result = find_best_plan(
        scenario.schema, scenario.query, SearchOptions(max_accesses=budget)
    )
    if not result.found:
        pytest.skip(f"{name}: no complete plan within {budget} accesses")
    plan = result.best_plan
    instance = scenario.instance(0)
    reference = plan.execute(InMemorySource(scenario.schema, instance))
    output = plan.execute(
        InMemorySource(scenario.schema, instance),
        cache=AccessCache(charge_hits=True),
        executor="differential",
    )
    assert output.rows == reference.rows


@pytest.mark.parametrize("seed", [1, 2])
def test_repeated_batch_execution_stays_sound(seed):
    """Cache reuse across repeated runs never changes an answer."""
    scenario = example5(sources=3, professors=15, noise_per_source=30)
    result = find_best_plan(
        scenario.schema, scenario.query, SearchOptions(max_accesses=4)
    )
    assert result.found
    instance = scenario.instance(seed)
    source = InMemorySource(scenario.schema, instance)
    cache = AccessCache()
    outputs = [
        result.best_plan.execute(source, cache=cache) for _ in range(3)
    ]
    reference = result.best_plan.run(
        InMemorySource(scenario.schema, instance, indexed=False)
    )
    for output in outputs:
        assert output.rows == reference.rows
