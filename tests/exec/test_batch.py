"""Tests for batch execution and constant-rebinding of plans."""

import pytest

from repro.data.instance import Instance
from repro.data.source import InMemorySource
from repro.exec import AccessCache, BatchExecutor, substitute_constants
from repro.logic.terms import Constant
from repro.plans.commands import AccessCommand, MiddlewareCommand, identity_output_map
from repro.plans.expressions import EqConst, Literal, NamedTable, Scan, Select, Singleton
from repro.plans.plan import Plan
from repro.schema.core import SchemaBuilder


@pytest.fixture
def schema():
    return (
        SchemaBuilder("s")
        .relation("R", 2)
        .access("mt_R", "R", inputs=[], cost=1.0)
        .access("mt_key", "R", inputs=[0], cost=2.0)
        .build()
    )


@pytest.fixture
def instance():
    return Instance(
        {"R": [("a", "1"), ("a", "2"), ("b", "3"), ("c", "4")]}
    )


def keyed_plan(key="a"):
    """Probe R on a constant key, then filter on a constant value."""
    return Plan(
        (
            AccessCommand(
                "TR",
                "mt_key",
                Singleton(),
                (Constant(key),),
                identity_output_map(("k", "v")),
            ),
            MiddlewareCommand(
                "OUT",
                Select(Scan("TR"), (EqConst("k", Constant(key)),)),
            ),
        ),
        "OUT",
    )


class TestSubstituteConstants:
    def test_rebinds_access_and_condition(self, schema, instance):
        plan = keyed_plan("a")
        rebound = substitute_constants(plan, {"a": "b"})
        source = InMemorySource(schema, instance)
        out = rebound.run(source)
        assert out.rows == frozenset({(Constant("b"), Constant("3"))})
        assert source.log[0].inputs == (Constant("b"),)

    def test_accepts_constant_keys(self, schema, instance):
        plan = keyed_plan("a")
        rebound = substitute_constants(
            plan, {Constant("a"): Constant("c")}
        )
        out = rebound.run(InMemorySource(schema, instance))
        assert out.rows == frozenset({(Constant("c"), Constant("4"))})

    def test_empty_mapping_is_identity(self):
        plan = keyed_plan("a")
        assert substitute_constants(plan, {}) is plan

    def test_rebinds_literal_tables(self, schema, instance):
        plan = Plan(
            (
                MiddlewareCommand(
                    "OUT",
                    Literal(
                        NamedTable.from_rows(("k",), [(Constant("a"),)])
                    ),
                ),
            ),
            "OUT",
        )
        rebound = substitute_constants(plan, {"a": "b"})
        out = rebound.run(InMemorySource(schema, instance))
        assert out.rows == frozenset({(Constant("b"),)})


class TestBatchExecutor:
    def test_bindings_sweep_shares_cache(self, schema, instance):
        source = InMemorySource(schema, instance)
        executor = BatchExecutor(source, cache=AccessCache())
        outputs = executor.run_bindings(
            keyed_plan("a"), [{}, {"a": "b"}, {}, {"a": "b"}]
        )
        assert len(outputs) == 4
        assert outputs[0].rows == outputs[2].rows
        assert outputs[1].rows == outputs[3].rows
        # Two distinct probes total; the repeats were cache hits.
        assert source.total_invocations == 2
        assert executor.cache.hits == 2
        assert executor.stats.runs == 4

    def test_run_plans_shares_cache_across_plans(self, schema, instance):
        source = InMemorySource(schema, instance)
        executor = BatchExecutor(source, cache=AccessCache())
        plan = keyed_plan("a")
        first, second = executor.run_plans([plan, plan])
        assert first.ok and second.ok
        assert first.table.rows == second.table.rows
        assert source.total_invocations == 1
        assert executor.failed == 0

    def test_run_plans_isolates_per_plan_failures(self, schema, instance):
        # Wrong arity: this plan dies with an AccessViolation at runtime.
        broken = Plan(
            (
                AccessCommand(
                    "TR",
                    "mt_key",
                    Singleton(),
                    (),
                    identity_output_map(("k", "v")),
                ),
            ),
            "TR",
        )
        executor = BatchExecutor(InMemorySource(schema, instance))
        items = executor.run_plans([keyed_plan("a"), broken, keyed_plan("b")])
        assert [item.ok for item in items] == [True, False, True]
        assert items[1].table is None
        assert "needs 1 inputs" in str(items[1].error)
        assert items[1].index == 1
        # The failure did not poison the neighbours.
        assert len(items[0].table.rows) == 2
        assert len(items[2].table.rows) == 1
        assert executor.failed == 1
        assert "1 plan run(s) FAILED" in executor.summary()
        assert "FAILED" in repr(items[1])

    def test_without_stats(self, schema, instance):
        executor = BatchExecutor(
            InMemorySource(schema, instance), collect_stats=False
        )
        out = executor.run(keyed_plan("a"))
        assert len(out.rows) == 2
        assert executor.stats is None
        assert "no instrumentation" in executor.summary()

    def test_summary_mentions_cache(self, schema, instance):
        executor = BatchExecutor(
            InMemorySource(schema, instance), cache=AccessCache()
        )
        executor.run(keyed_plan("a"))
        assert "cache:" in executor.summary()


class TestConcurrentRunPlans:
    """The ``workers=`` path must be indistinguishable from sequential."""

    def broken_plan(self):
        # Wrong arity: dies with an AccessViolation at runtime.
        return Plan(
            (
                AccessCommand(
                    "TR",
                    "mt_key",
                    Singleton(),
                    (),
                    identity_output_map(("k", "v")),
                ),
            ),
            "TR",
        )

    def test_workers_match_sequential_results(self, schema, instance):
        plans = [keyed_plan(k) for k in ("a", "b", "c", "a", "b")]
        sequential = BatchExecutor(
            InMemorySource(schema, instance)
        ).run_plans(plans)
        concurrent = BatchExecutor(
            InMemorySource(schema, instance), cache=AccessCache()
        ).run_plans(plans, workers=4)
        assert [item.plan for item in concurrent] == [
            item.plan for item in sequential
        ]
        assert [item.index for item in concurrent] == list(range(len(plans)))
        for seq, par in zip(sequential, concurrent):
            assert par.ok and seq.ok
            assert par.table.rows == seq.table.rows

    def test_workers_preserve_failure_isolation(self, schema, instance):
        plans = [keyed_plan("a"), self.broken_plan(), keyed_plan("b")]
        executor = BatchExecutor(InMemorySource(schema, instance))
        items = executor.run_plans(plans, workers=3)
        assert [item.ok for item in items] == [True, False, True]
        assert "needs 1 inputs" in str(items[1].error)
        assert executor.failed == 1
        assert len(items[0].table.rows) == 2
        assert len(items[2].table.rows) == 1

    def test_workers_merge_stats_into_the_batch_aggregate(
        self, schema, instance
    ):
        executor = BatchExecutor(InMemorySource(schema, instance))
        executor.run_plans([keyed_plan("a"), keyed_plan("b")], workers=2)
        assert executor.stats.runs == 2
        assert executor.stats.accesses_dispatched == 2

    def test_workers_one_takes_the_sequential_path(self, schema, instance):
        executor = BatchExecutor(InMemorySource(schema, instance))
        items = executor.run_plans([keyed_plan("a")], workers=1)
        assert items[0].ok

    def test_scenario_library_equality(self):
        from repro.planner.search import SearchOptions, find_best_plan
        from repro.scenarios import example1, example2, example5

        for factory, budget in (
            (example1, 3), (example2, 4), (example5, 4),
        ):
            scenario = factory()
            result = find_best_plan(
                scenario.schema,
                scenario.query,
                SearchOptions(max_accesses=budget),
            )
            assert result.found, scenario.name
            plans = [result.best_plan] * 4
            source = InMemorySource(scenario.schema, scenario.instance(0))
            sequential = BatchExecutor(source).run_plans(plans)
            concurrent = BatchExecutor(
                source, cache=AccessCache()
            ).run_plans(plans, workers=4)
            for seq, par in zip(sequential, concurrent):
                assert seq.ok and par.ok, scenario.name
                assert par.table.rows == seq.table.rows, scenario.name
