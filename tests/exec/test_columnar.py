"""The columnar backend: operator units, stats parity, differential mode.

The columnar executor must be *observationally identical* to the
interpreter -- same answers, same per-command stats, same cache and
budget accounting -- just faster.  These tests check the vectorized
operators one by one and the end-to-end contract; the scenario-wide
differential sweep lives in ``test_exec_soundness.py``.
"""

import numpy as np
import pytest

from repro.data.instance import Instance
from repro.data.source import InMemorySource
from repro.exec import AccessCache, ExecStats, ResourceBudget
from repro.exec.columnar import (
    ColumnarPlan,
    DifferentialMismatch,
    _Codec,
    _dedup,
    _match_pairs,
    _row_ids,
    compile_columnar,
    execute_differential,
)
from repro.logic.terms import Constant
from repro.plans.commands import (
    AccessCommand,
    MiddlewareCommand,
    identity_output_map,
)
from repro.plans.expressions import (
    Difference,
    EqAttr,
    EqConst,
    EvaluationError,
    Join,
    NamedTable,
    NeqConst,
    Project,
    Rename,
    Scan,
    Select,
    Singleton,
    Union,
)
from repro.plans.plan import Plan
from repro.schema.core import SchemaBuilder


def C(value):
    return Constant(value)


@pytest.fixture
def schema():
    return (
        SchemaBuilder("s")
        .relation("R", 2)
        .relation("S", 2)
        .access("mt_R", "R", inputs=[], cost=1.0)
        .access("mt_S", "S", inputs=[0], cost=1.0)
        .build()
    )


@pytest.fixture
def source(schema):
    instance = Instance(
        {
            "R": [(f"k{i % 4}", f"v{i}") for i in range(12)],
            "S": [(f"k{i}", f"s{i}") for i in range(6)],
        }
    )
    return InMemorySource(schema, instance)


def scan_r(target="T_R"):
    return AccessCommand(
        target, "mt_R", Singleton(), (), identity_output_map(("x", "y"))
    )


def run_both(plan, source_factory, **kwargs):
    interp = plan.execute(source_factory(), **kwargs)
    columnar = plan.execute(source_factory(), executor="columnar", **kwargs)
    assert columnar.attributes == interp.attributes
    assert columnar.rows == interp.rows
    return interp, columnar


class TestPrimitives:
    def test_row_ids_group_equal_rows(self):
        a = np.array([1, 2, 1, 2, 1], dtype=np.int64)
        b = np.array([5, 5, 5, 6, 5], dtype=np.int64)
        ids = _row_ids([a, b], 5)
        assert ids[0] == ids[2] == ids[4]
        assert ids[0] != ids[1] != ids[3]

    def test_row_ids_zero_columns(self):
        assert list(_row_ids([], 3)) == [0, 0, 0]

    def test_match_pairs_equals_python_join(self):
        rng = np.random.default_rng(0)
        codec = _Codec()
        left = codec.encode_rows(
            ("a",), [(C(int(v)),) for v in rng.integers(0, 8, 40)]
        )
        right = codec.encode_rows(
            ("a", "b"),
            [
                (C(int(v)), C(int(w)))
                for v, w in zip(
                    rng.integers(0, 8, 25), rng.integers(0, 99, 25)
                )
            ],
        )
        li, ri = _match_pairs(left, right, ["a"])
        got = {(int(l), int(r)) for l, r in zip(li, ri)}
        want = {
            (l, r)
            for l in range(left.nrows)
            for r in range(right.nrows)
            if left.columns[0][l] == right.columns[0][r]
        }
        assert got == want

    def test_match_pairs_cross_product(self):
        codec = _Codec()
        left = codec.encode_rows(("a",), [(C(1),), (C(2),)])
        right = codec.encode_rows(("b",), [(C(3),), (C(4),), (C(5),)])
        li, ri = _match_pairs(left, right, [])
        assert len(li) == len(ri) == 6
        assert {(int(l), int(r)) for l, r in zip(li, ri)} == {
            (l, r) for l in range(2) for r in range(3)
        }

    def test_dedup(self):
        codec = _Codec()
        table = codec.encode_rows(
            ("a", "b"), [(C(1), C(2)), (C(1), C(2)), (C(3), C(4))]
        )
        assert _dedup(table).nrows == 2

    def test_codec_decode_round_trips(self):
        codec = _Codec()
        rows = [(C("a"), C(1)), (C("b"), C(2.5))]
        table = codec.encode_rows(("x", "y"), rows)
        named = codec.decode_table(table)
        assert named.rows == frozenset(rows)
        assert named.attributes == ("x", "y")


def middleware_plan(expr):
    return Plan((scan_r(), MiddlewareCommand("OUT", expr)), "OUT")


class TestOperators:
    """Each RA operator, columnar vs interpreter on the same source."""

    def make_source(self, schema_source):
        return schema_source

    @pytest.mark.parametrize(
        "expr",
        [
            Project(Scan("T_R"), ("x",)),
            Select(Scan("T_R"), (EqConst("x", C("k1")),)),
            Select(Scan("T_R"), (NeqConst("x", C("k1")), EqAttr("x", "x"))),
            Rename(Scan("T_R"), (("x", "z"),)),
            Union(Scan("T_R"), Scan("T_R")),
            Difference(
                Scan("T_R"), Select(Scan("T_R"), (EqConst("x", C("k0")),))
            ),
            Join(Scan("T_R"), Rename(Scan("T_R"), (("y", "w"),))),
            Project(
                Select(
                    Join(Scan("T_R"), Rename(Scan("T_R"), (("y", "w"),))),
                    (NeqConst("w", C("v0")),),
                ),
                ("x", "w"),
            ),
        ],
        ids=[
            "project",
            "select-eq",
            "select-multi",
            "rename",
            "union",
            "difference",
            "join",
            "fused-select-project-join",
        ],
    )
    def test_operator_parity(self, source, schema, expr):
        instance = source  # the fixture IS the source
        plan = middleware_plan(expr)
        interp = plan.execute(source)
        columnar = plan.execute(source, executor="columnar")
        assert columnar.attributes == interp.attributes
        assert columnar.rows == interp.rows

    def test_unknown_attribute_raises_like_interpreter(self, source):
        plan = middleware_plan(Project(Scan("T_R"), ("nope",)))
        with pytest.raises(EvaluationError, match="no attribute 'nope'"):
            plan.execute(source, executor="columnar")
        with pytest.raises(EvaluationError, match="no attribute 'nope'"):
            plan.execute(source)

    def test_select_on_empty_with_unknown_attr_is_lazy(self, schema):
        # Interpreter semantics: the holds() fallback only raises when a
        # row is actually checked, so empty input passes through.
        source = InMemorySource(schema, Instance({"R": [], "S": []}))
        plan = middleware_plan(
            Select(Scan("T_R"), (EqConst("ghost", C("x")),))
        )
        assert plan.execute(source).rows == frozenset()
        assert (
            plan.execute(source, executor="columnar").rows == frozenset()
        )


class TestBoundAccess:
    def bound_plan(self):
        return Plan(
            (
                scan_r(),
                AccessCommand(
                    "OUT",
                    "mt_S",
                    # Unprojected input: the access command itself must
                    # dedup the 12 (x, y) rows to 4 distinct x bindings.
                    Scan("T_R"),
                    ("x",),
                    identity_output_map(("x", "s")),
                ),
            ),
            "OUT",
        )

    def test_bound_access_parity_and_dedup(self, schema, source):
        stats_i, stats_c = ExecStats(), ExecStats()
        interp = self.bound_plan().execute(source, stats=stats_i)
        columnar = self.bound_plan().execute(
            source, stats=stats_c, executor="columnar"
        )
        assert columnar.rows == interp.rows
        ci, cc = stats_i.commands[-1], stats_c.commands[-1]
        assert (ci.rows_in, ci.dispatched, ci.deduped) == (
            cc.rows_in,
            cc.dispatched,
            cc.deduped,
        )
        assert cc.deduped > 0  # the 12 R-rows share 4 distinct keys

    def test_constant_in_binding(self, schema):
        instance = Instance({"R": [], "S": [("fixed", "hit")]})
        source = InMemorySource(schema, instance)
        plan = Plan(
            (
                AccessCommand(
                    "OUT",
                    "mt_S",
                    Singleton(),
                    (C("fixed"),),
                    identity_output_map(("k", "s")),
                ),
            ),
            "OUT",
        )
        interp = plan.execute(source)
        columnar = plan.execute(source, executor="columnar")
        assert columnar.rows == interp.rows == frozenset(
            {(C("fixed"), C("hit"))}
        )

    def test_cache_accounting_parity(self, schema, source):
        cache_i, cache_c = AccessCache(), AccessCache()
        for _ in range(3):
            self.bound_plan().execute(source, cache=cache_i)
            self.bound_plan().execute(
                source, cache=cache_c, executor="columnar"
            )
        assert (cache_i.hits, cache_i.misses) == (cache_c.hits, cache_c.misses)


class TestRuntimeContract:
    def test_compiled_plan_is_cached_on_the_plan(self, source):
        plan = Plan((scan_r(),), "T_R")
        first = compile_columnar(plan)
        assert compile_columnar(plan) is first
        assert isinstance(first, ColumnarPlan)

    def test_stats_resident_and_freed_parity(self, schema, source):
        plan = Plan(
            (
                scan_r(),
                MiddlewareCommand("T2", Project(Scan("T_R"), ("x",))),
                MiddlewareCommand("OUT", Scan("T2")),
            ),
            "OUT",
        )
        si, sc = ExecStats(), ExecStats()
        plan.execute(source, stats=si)
        plan.execute(source, stats=sc, executor="columnar")
        assert si.peak_resident_rows == sc.peak_resident_rows
        assert [c.freed_tables for c in si.commands] == [
            c.freed_tables for c in sc.commands
        ]

    def test_budget_truncation_parity(self, source):
        plan = Plan((scan_r(),), "T_R")
        bi, bc = (
            ResourceBudget(max_result_rows=5),
            ResourceBudget(max_result_rows=5),
        )
        interp = plan.execute(source, budget=bi)
        columnar = plan.execute(source, budget=bc, executor="columnar")
        assert columnar.rows == interp.rows
        assert bc.truncated_rows == bi.truncated_rows > 0

    def test_differential_mode_passes_and_returns_answer(self, source):
        plan = Plan((scan_r(),), "T_R")
        reference = plan.execute(source)
        assert (
            plan.execute(source, executor="differential").rows
            == reference.rows
        )

    def test_differential_mismatch_raises(self, source):
        plan = Plan((scan_r(),), "T_R")
        compiled = compile_columnar(plan)

        class Lying:
            """Columnar half that drops a row."""

            def execute(self, *args, **kwargs):
                table = compiled.execute(*args, **kwargs)
                return NamedTable(
                    table.attributes, frozenset(list(table.rows)[1:])
                )

        object.__setattr__(plan, "_columnar_compiled", Lying())
        with pytest.raises(DifferentialMismatch):
            execute_differential(plan, source)

    def test_unknown_executor_rejected(self, source):
        with pytest.raises(ValueError, match="unknown executor"):
            Plan((scan_r(),), "T_R").execute(source, executor="turbo")


class TestAccessOutputEncoding:
    """The batched access-output path (one interning pass per column)."""

    def repeated_position_plan(self):
        # ("x", (0, 1)): both cell positions feed the same output
        # attribute, so only rows where they agree survive -- the
        # interpreter's per-row equality check, vectorized as a mask.
        return Plan(
            (
                AccessCommand(
                    "OUT",
                    "mt_R",
                    Singleton(),
                    (),
                    (("x", (0, 1)),),
                ),
            ),
            "OUT",
        )

    def test_repeated_position_equality_filter_parity(self, schema):
        instance = Instance(
            {
                "R": [("same", "same"), ("a", "b"), ("c", "c"), ("d", "e")],
                "S": [],
            }
        )
        plan = self.repeated_position_plan()
        interp, columnar = run_both(
            plan, lambda: InMemorySource(schema, instance)
        )
        assert interp.rows == frozenset(
            {(C("same"),), (C("c"),)}
        )

    def test_repeated_position_all_filtered(self, schema):
        instance = Instance({"R": [("a", "b"), ("c", "d")], "S": []})
        interp, columnar = run_both(
            self.repeated_position_plan(),
            lambda: InMemorySource(schema, instance),
        )
        assert interp.rows == frozenset()

    def test_boolean_access_empty_output_map(self, schema):
        # No output columns: the access answers a yes/no question with
        # a zero-attribute table (one empty row iff anything matched).
        plan = Plan(
            (AccessCommand("OUT", "mt_R", Singleton(), (), ()),),
            "OUT",
        )
        nonempty = Instance({"R": [("a", "b")], "S": []})
        interp, columnar = run_both(
            plan, lambda: InMemorySource(schema, nonempty)
        )
        assert interp.rows == frozenset({()})
        empty = Instance({"R": [], "S": []})
        interp, columnar = run_both(
            plan, lambda: InMemorySource(schema, empty)
        )
        assert interp.rows == frozenset()

    def test_access_output_dedups_projected_rows(self, schema):
        # Projecting to the key column collapses the 12 rows to the 4
        # distinct keys; the columnar path must dedup just as the
        # interpreter's set semantics do.
        instance = Instance(
            {
                "R": [(f"k{i % 4}", f"v{i}") for i in range(12)],
                "S": [],
            }
        )
        plan = Plan(
            (
                AccessCommand(
                    "OUT", "mt_R", Singleton(), (), (("x", (0,)),)
                ),
            ),
            "OUT",
        )
        stats = ExecStats()
        columnar = plan.execute(
            InMemorySource(schema, instance),
            executor="columnar",
            stats=stats,
        )
        interp = plan.execute(InMemorySource(schema, instance))
        assert columnar.rows == interp.rows
        assert len(columnar.rows) == 4
        assert stats.commands[-1].rows_out == 4
