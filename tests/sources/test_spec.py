"""Spec round trips for the real backends, alone and under wrappers.

The process tier ships sources across the process boundary as plain
JSON-able *specs*.  The new backends must survive that trip: a worker
rehydrating ``spec_to_source(json.loads(json.dumps(source_to_spec(s))))``
has to answer byte-identically to the original -- including when the
backend sits under the Latency / FaultInjecting wrapper stacks the
chaos matrix uses.  Transports that cannot describe themselves are
rejected with a typed :class:`SourceSpecError`, never pickled.
"""

import json

import pytest

from repro.data.decorators import LatencySource
from repro.data.instance import Instance
from repro.data.source import InMemorySource
from repro.errors import SourceUnavailable
from repro.faults import FaultInjectingSource, FaultPolicy
from repro.planner.search import SearchOptions, find_best_plan
from repro.scenarios import example1
from repro.service import (
    ProcessWorkerPool,
    QueryService,
    SourceSpecError,
    source_to_spec,
    spec_to_source,
)
from repro.sources import HTTPSource, SQLiteSource, StubTransport

_NO_SLEEP = lambda _seconds: None  # noqa: E731


def round_trip(source):
    """The exact trip a worker takes: spec -> JSON text -> source."""
    return spec_to_source(json.loads(json.dumps(source_to_spec(source))))


def scenario_fixture():
    scenario = example1(professors=8, directory_extra=3)
    return scenario.schema, scenario.instance(0)


def sqlite_backend(schema, instance):
    return SQLiteSource(schema, instance, sleep=_NO_SLEEP)


def http_backend(schema, instance):
    return HTTPSource(StubTransport(schema, instance, page_size=3))


BACKENDS = [("sqlite", sqlite_backend), ("http", http_backend)]


class TestBackendRoundTrip:
    @pytest.mark.parametrize("name,build", BACKENDS)
    def test_bare_backend_survives_the_json_trip(self, name, build):
        schema, instance = scenario_fixture()
        original = build(schema, instance)
        rebuilt = round_trip(original)
        assert type(rebuilt) is type(original)
        reference = InMemorySource(schema, instance)
        assert rebuilt.access("mt_udir") == reference.access("mt_udir")
        assert rebuilt.access("mt_prof", ("e1",)) == reference.access(
            "mt_prof", ("e1",)
        )

    @pytest.mark.parametrize("name,build", BACKENDS)
    def test_latency_wrapper_stack_survives_and_answers_identically(
        self, name, build
    ):
        schema, instance = scenario_fixture()
        stacked = LatencySource(build(schema, instance), 0.0)
        rebuilt = round_trip(stacked)
        assert isinstance(rebuilt, LatencySource)
        assert type(rebuilt.inner) is type(stacked.inner)
        assert rebuilt.access("mt_prof", ("e2",)) == InMemorySource(
            schema, instance
        ).access("mt_prof", ("e2",))

    @pytest.mark.parametrize("name,build", BACKENDS)
    def test_fault_wrapper_replays_the_same_schedule(self, name, build):
        schema, instance = scenario_fixture()
        policy = FaultPolicy(seed=7, unavailable_rate=1.0, burst=1)
        stacked = FaultInjectingSource(build(schema, instance), policy)
        rebuilt = round_trip(stacked)
        assert isinstance(rebuilt, FaultInjectingSource)
        assert rebuilt.policy == policy
        # Faults key on (seed, method, inputs): both copies fault on
        # the first attempt and answer identically on the retry.
        for copy in (stacked, rebuilt):
            with pytest.raises(SourceUnavailable):
                copy.access("mt_prof", ("e1",))
        assert stacked.access("mt_prof", ("e1",)) == rebuilt.access(
            "mt_prof", ("e1",)
        )

    def test_http_config_fields_round_trip(self):
        schema, instance = scenario_fixture()
        transport = StubTransport(
            schema,
            instance,
            page_size=2,
            rate_limit=500.0,
            burst=4.0,
            fault_policy=FaultPolicy(seed=5, timeout_rate=0.25, burst=2),
        )
        rebuilt = round_trip(
            HTTPSource(transport, max_retry_after_waits=3)
        )
        assert rebuilt.max_retry_after_waits == 3
        assert rebuilt.transport.page_size == 2
        assert rebuilt.transport.rate_limit == 500.0
        assert rebuilt.transport.fault_policy.seed == 5
        assert rebuilt.transport.fault_policy.burst == 2

    def test_sqlite_lifecycle_knobs_round_trip(self):
        schema, instance = scenario_fixture()
        rebuilt = round_trip(
            SQLiteSource(
                schema,
                instance,
                max_reconnects=2,
                backoff=0.005,
                drop_every=3,
                sleep=_NO_SLEEP,
            )
        )
        assert rebuilt.max_reconnects == 2
        assert rebuilt.backoff == pytest.approx(0.005)
        assert rebuilt.drop_every == 3


class TestUnspecable:
    def test_opaque_transport_is_rejected_with_a_typed_error(self):
        class OpaqueTransport:
            """A live-socket stand-in: no spec_config, not shippable."""

            def __init__(self, schema, instance):
                self.schema = schema
                self.instance = instance

            def request(self, verb, path, params):
                """Never reached by the spec check."""
                raise AssertionError("spec check must reject first")

        schema, instance = scenario_fixture()
        source = HTTPSource(OpaqueTransport(schema, instance))
        with pytest.raises(SourceSpecError, match="is not spec-able"):
            source_to_spec(source)

    def test_unknown_source_type_is_rejected(self):
        with pytest.raises(SourceSpecError):
            source_to_spec(object())


class TestProcessTierEndToEnd:
    @pytest.mark.parametrize("start_method", ["spawn", "fork"])
    @pytest.mark.parametrize("name,build", BACKENDS)
    def test_workers_rehydrate_backends_and_agree_with_the_oracle(
        self, name, build, start_method
    ):
        scenario = example1(professors=8, directory_extra=3)
        result = find_best_plan(
            scenario.schema, scenario.query, SearchOptions(max_accesses=3)
        )
        assert result.found
        plan = result.best_plan
        instance = scenario.instance(0)
        reference = plan.execute(
            InMemorySource(scenario.schema, instance)
        )
        source = build(scenario.schema, instance)
        pool = ProcessWorkerPool.for_source(
            source, workers=1, start_method=start_method
        )
        with QueryService(source, workers=1, worker_pool=pool) as svc:
            response = svc.serve(plan, timeout=300)
        assert response.complete, response.describe()
        assert response.table.attributes == reference.attributes
        assert sorted(map(repr, response.table.rows)) == sorted(
            map(repr, reference.rows)
        )
