"""Tests for the real-backend source adapters (repro.sources)."""
