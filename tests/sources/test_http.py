"""HTTPSource over StubTransport: pagination, 429s, faults, batching."""

import pytest

from repro.data.instance import Instance, _to_constant
from repro.data.source import InMemorySource
from repro.errors import (
    AccessTimeout,
    AccessViolation,
    RateLimited,
    SourceUnavailable,
)
from repro.faults.policy import KIND_UNAVAILABLE, FaultPolicy
from repro.schema.core import SchemaBuilder
from repro.sources import HTTPSource, StubTransport


def web_schema():
    return (
        SchemaBuilder("web")
        .relation("T", 2)
        .access("mt_T", "T", inputs=[0], cost=1.0)
        .access("mt_all", "T", inputs=[], cost=1.0)
        .build()
    )


def web_instance():
    return Instance(
        {"T": [("a", f"r{i}") for i in range(5)] + [("b", "solo")]}
    )


def oracle():
    return InMemorySource(web_schema(), web_instance())


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def sleep(self, seconds):
        self.now += seconds


class TestPagination:
    def test_paged_answers_are_byte_identical_to_the_oracle(self):
        transport = StubTransport(web_schema(), web_instance(), page_size=2)
        client = HTTPSource(transport)
        assert client.access("mt_T", ("a",)) == oracle().access(
            "mt_T", ("a",)
        )
        # Five matching rows at two per page: three round trips.
        assert transport.counters()["requests"] == 3
        assert client.access("mt_all") == oracle().access("mt_all")

    def test_epoch_change_mid_sequence_restarts_the_page_chain(self):
        class MovingSnapshotTransport(StubTransport):
            """Mutates the backend right after serving the first page."""

            moved = False

            def request(self, verb, path, params):
                """Serve, then move the snapshot once mid-pagination."""
                response = super().request(verb, path, params)
                if (
                    not self.moved
                    and response.payload.get("next_page") is not None
                ):
                    self.moved = True
                    self.instance.add("T", ("a", "late"))
                return response

        instance = web_instance()
        transport = MovingSnapshotTransport(
            web_schema(), instance, page_size=2
        )
        client = HTTPSource(transport)
        answer = client.access("mt_T", ("a",))
        # The restarted sequence reads purely from the new snapshot --
        # never a mix of rows from before and after the mutation.
        assert client.snapshot_restarts == 1
        assert answer == InMemorySource(web_schema(), instance).access(
            "mt_T", ("a",)
        )
        assert any(row[1].value == "late" for row in answer)


class TestRetryAfter:
    def test_client_honours_retry_after_and_converges(self):
        clock = FakeClock()
        transport = StubTransport(
            web_schema(), web_instance(),
            rate_limit=1.0, burst=1.0, clock=clock,
        )
        client = HTTPSource(transport, sleep=clock.sleep)
        first = client.access("mt_T", ("a",))
        second = client.access("mt_T", ("b",))
        assert first == oracle().access("mt_T", ("a",))
        assert second == oracle().access("mt_T", ("b",))
        assert client.retry_after_waits >= 1
        assert transport.counters()["over_budget"] >= 1

    def test_out_of_patience_is_typed_rate_limited(self):
        clock = FakeClock()
        transport = StubTransport(
            web_schema(), web_instance(),
            rate_limit=1.0, burst=1.0, clock=clock,
        )
        client = HTTPSource(
            transport, max_retry_after_waits=0, sleep=lambda _s: None
        )
        client.access("mt_T", ("a",))
        with pytest.raises(RateLimited):
            client.access("mt_T", ("b",))


class TestFaultMapping:
    def test_simulated_timeout_maps_to_access_timeout_then_recovers(self):
        transport = StubTransport(
            web_schema(), web_instance(),
            fault_policy=FaultPolicy(seed=0, timeout_rate=1.0, burst=1),
        )
        client = HTTPSource(transport)
        with pytest.raises(AccessTimeout):
            client.access("mt_T", ("a",))
        # The burst drains per key: the retry reaches the real answer.
        assert client.access("mt_T", ("a",)) == oracle().access(
            "mt_T", ("a",)
        )
        assert transport.counters()["timeouts_injected"] == 1

    def test_injected_5xx_maps_to_source_unavailable_then_recovers(self):
        transport = StubTransport(
            web_schema(), web_instance(),
            fault_policy=FaultPolicy(seed=0, unavailable_rate=1.0, burst=1),
        )
        client = HTTPSource(transport)
        with pytest.raises(SourceUnavailable):
            client.access("mt_T", ("a",))
        assert client.access("mt_T", ("a",)) == oracle().access(
            "mt_T", ("a",)
        )

    def test_wrong_input_count_is_typed_access_violation(self):
        client = HTTPSource(StubTransport(web_schema(), web_instance()))
        with pytest.raises(AccessViolation):
            client.access("mt_T", ())


class TestEpochToken:
    def test_epoch_reflects_the_last_observed_response_header(self):
        instance = web_instance()
        transport = StubTransport(web_schema(), instance)
        client = HTTPSource(transport)
        client.access("mt_all")
        seen = client.epoch()
        assert seen == transport.epoch()
        instance.add("T", ("c", "new"))
        # No request since the mutation: the client still reports the
        # snapshot it actually read from, not the backend's new state.
        assert client.epoch() == seen
        client.access("mt_all")
        assert client.epoch() == transport.epoch() > seen


class TestBatching:
    def test_batch_endpoint_matches_per_key_answers_and_metering(self):
        transport = StubTransport(web_schema(), web_instance())
        client = HTTPSource(transport)
        keys = [("a",), ("b",), ("nope",)]
        batched = client.access_batch("mt_T", keys)
        assert client.batched_calls == 1
        assert transport.counters()["requests"] == 1
        assert client.total_invocations == len(keys)
        reference = oracle()
        for key in keys:
            values = tuple(_to_constant(v) for v in key)
            assert batched[values] == reference.access("mt_T", key)

    def test_faulted_batch_falls_back_to_per_key_and_converges(self):
        policy = FaultPolicy(seed=3, unavailable_rate=0.5, burst=1)
        candidates = [(f"k{i}",) for i in range(20)]
        faulty = [
            key
            for key in candidates
            if policy.kind_for("mt_T", tuple(map(_to_constant, key)))
            == KIND_UNAVAILABLE
        ]
        clean = [
            key
            for key in candidates
            if policy.kind_for("mt_T", tuple(map(_to_constant, key)))
            is None
        ]
        assert faulty and clean  # the schedule must exercise both paths
        instance = Instance(
            {"T": [(key[0], "row") for key in candidates]}
        )
        transport = StubTransport(
            web_schema(), instance, fault_policy=policy
        )
        client = HTTPSource(transport)
        keys = [clean[0], faulty[0], clean[1]]
        batched = client.access_batch("mt_T", keys)
        # The bulk request failed on the faulty key, so the client fell
        # back to per-key lookups -- where the burst drains per key and
        # every answer still lands byte-identical to the oracle.
        assert transport.counters()["requests"] >= 1 + len(keys)
        reference = InMemorySource(web_schema(), instance)
        for key in keys:
            values = tuple(_to_constant(v) for v in key)
            assert batched[values] == reference.access("mt_T", key)
