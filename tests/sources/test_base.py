"""The shared adapter plumbing: epochs, buckets, defensive wrappers."""

import threading

import pytest

from repro.data.instance import Instance
from repro.data.source import InMemorySource
from repro.errors import AccessTimeout, RateLimited
from repro.schema.core import SchemaBuilder
from repro.sources import (
    AdaptiveConcurrencySource,
    CoalescingSource,
    PacedSource,
    SourceAdapter,
    TokenBucket,
    source_epoch,
)


def tiny_schema():
    return (
        SchemaBuilder("adapters")
        .relation("R", 2)
        .access("mt_R", "R", inputs=[0], cost=1.0)
        .access("mt_free", "R", inputs=[], cost=1.0)
        .build()
    )


def tiny_instance():
    return Instance({"R": [("a", 1), ("a", 2), ("b", 3)]})


def memory_source():
    return InMemorySource(tiny_schema(), tiny_instance())


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def sleep(self, seconds):
        self.now += seconds


# ------------------------------------------------------------ source_epoch
class TestSourceEpoch:
    def test_in_memory_source_epoch_is_instance_version(self):
        source = memory_source()
        assert source_epoch(source) == source.instance.version
        assert isinstance(source, SourceAdapter)

    def test_mutation_bumps_the_epoch(self):
        source = memory_source()
        before = source_epoch(source)
        source.instance.add("R", ("c", 4))
        assert source_epoch(source) > before

    def test_epochless_objects_answer_zero(self):
        class Bare:
            """No epoch, no instance."""

        assert source_epoch(Bare()) == 0

    def test_callable_epoch_wins_over_instance_version(self):
        class Epochal:
            """epoch() takes precedence over instance.version."""

            instance = memory_source().instance

            def epoch(self):
                """A fixed token."""
                return 41

        assert source_epoch(Epochal()) == 41

    def test_epoch_reads_through_wrapper_stacks(self):
        source = memory_source()
        stack = CoalescingSource(PacedSource(source, rate=1e9, capacity=8))
        assert source_epoch(stack) == source.instance.version


# ------------------------------------------------------------- TokenBucket
class TestTokenBucket:
    def test_grants_up_to_capacity_then_reports_wait(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, capacity=2.0, clock=clock)
        assert bucket.acquire() == 0.0
        assert bucket.acquire() == 0.0
        wait = bucket.acquire()
        assert wait == pytest.approx(0.5)
        # A positive return takes nothing: the shortfall is unchanged.
        assert bucket.acquire() == pytest.approx(0.5)

    def test_refills_on_the_injected_clock(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, capacity=2.0, clock=clock)
        bucket.acquire()
        bucket.acquire()
        clock.now += 1.0
        assert bucket.available() == pytest.approx(2.0)
        assert bucket.acquire() == 0.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, capacity=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, capacity=0.5)


# ------------------------------------------------------------- PacedSource
class TestPacedSource:
    def test_paces_with_injected_sleep_and_answers_exactly(self):
        clock = FakeClock()
        source = memory_source()
        paced = PacedSource(
            source, rate=2.0, capacity=1.0, max_wait=10.0,
            sleep=clock.sleep, clock=clock,
        )
        first = paced.access("mt_R", ("a",))
        second = paced.access("mt_R", ("a",))
        assert first == second == source.access("mt_R", ("a",))
        assert paced.paced_waits == 1
        assert paced.wait_seconds == pytest.approx(0.5)
        assert clock.now == pytest.approx(0.5)

    def test_dry_bucket_beyond_max_wait_is_typed_rate_limited(self):
        clock = FakeClock()
        paced = PacedSource(
            memory_source(), rate=0.001, capacity=1.0, max_wait=0.5,
            sleep=clock.sleep, clock=clock,
        )
        paced.access("mt_R", ("a",))
        with pytest.raises(RateLimited):
            paced.access("mt_R", ("b",))
        assert paced.refusals == 1

    def test_batch_pays_one_token_per_key(self):
        clock = FakeClock()
        source = memory_source()
        paced = PacedSource(
            source, rate=1.0, capacity=3.0, max_wait=10.0,
            sleep=clock.sleep, clock=clock,
        )
        answers = paced.access_batch("mt_R", [("a",), ("b",), ("x",)])
        # Three keys, capacity 3: all granted without waiting.
        assert paced.paced_waits == 0
        assert paced.bucket.available() == pytest.approx(0.0)
        # The answers match per-key accesses byte for byte.
        fresh = memory_source()
        for key, rows in answers.items():
            assert rows == fresh.access("mt_R", key)


# ----------------------------------------------- AdaptiveConcurrencySource
class BackpressuringSource:
    """A source that raises a scripted error sequence, then answers."""

    access_batch = None

    def __init__(self, inner, errors):
        self.inner = inner
        self.errors = list(errors)

    @property
    def schema(self):
        """The wrapped schema."""
        return self.inner.schema

    def access(self, method_name, inputs=()):
        """Pop one scripted error, or delegate."""
        if self.errors:
            raise self.errors.pop(0)
        return self.inner.access(method_name, inputs)

    def __getattr__(self, name):
        return getattr(self.inner, name)


class TestAdaptiveConcurrency:
    def test_success_grows_the_limit_additively(self):
        aimd = AdaptiveConcurrencySource(
            memory_source(), max_concurrency=8, initial=2.0, increase=1.0
        )
        before = aimd.limit
        aimd.access("mt_R", ("a",))
        assert aimd.limit == pytest.approx(before + 1.0 / before)

    def test_backpressure_halves_the_limit(self):
        inner = BackpressuringSource(
            memory_source(),
            [RateLimited("busy"), AccessTimeout("slow")],
        )
        aimd = AdaptiveConcurrencySource(
            inner, max_concurrency=8, initial=8.0
        )
        for expected in (4.0, 2.0):
            with pytest.raises((RateLimited, AccessTimeout)):
                aimd.access("mt_R", ("a",))
            assert aimd.limit == pytest.approx(expected)
        assert aimd.throttle_events == 2
        # Recovery: the next success grows it again from the floor.
        aimd.access("mt_R", ("a",))
        assert aimd.limit > 2.0

    def test_other_errors_do_not_shrink_the_limit(self):
        inner = BackpressuringSource(memory_source(), [ValueError("boom")])
        aimd = AdaptiveConcurrencySource(inner, initial=4.0)
        with pytest.raises(ValueError):
            aimd.access("mt_R", ("a",))
        assert aimd.limit >= 4.0
        assert aimd.throttle_events == 0

    def test_wrapper_blocks_batch_bypass(self):
        class Batchy:
            """An inner source with a batch endpoint."""

            schema = None

            def access_batch(self, method_name, inputs_list):
                """Would bypass the limiter if delegated."""
                return {}

        assert AdaptiveConcurrencySource(Batchy()).access_batch is None
        assert CoalescingSource(Batchy()).access_batch is None


# -------------------------------------------------------- CoalescingSource
class GatedSource:
    """A source whose accesses block until released (for overlap tests)."""

    access_batch = None

    def __init__(self, inner):
        self.inner = inner
        self.gate = threading.Event()
        self.calls = 0
        self._lock = threading.Lock()

    @property
    def schema(self):
        """The wrapped schema."""
        return self.inner.schema

    def access(self, method_name, inputs=()):
        """Count the call, wait for the gate, then delegate."""
        with self._lock:
            self.calls += 1
        assert self.gate.wait(timeout=30.0)
        return self.inner.access(method_name, inputs)

    def __getattr__(self, name):
        return getattr(self.inner, name)


class TestCoalescingSource:
    def test_identical_concurrent_accesses_collapse_to_one(self):
        gated = GatedSource(memory_source())
        coalesced = CoalescingSource(gated)
        results = []

        def worker():
            results.append(coalesced.access("mt_R", ("a",)))

        leader = threading.Thread(target=worker)
        leader.start()
        # Wait until the leader is inside the backend call...
        for _ in range(1000):
            if gated.calls == 1:
                break
            threading.Event().wait(0.005)
        assert gated.calls == 1
        # ...then pile on: everyone finds the in-flight entry and waits.
        followers = [threading.Thread(target=worker) for _ in range(5)]
        for thread in followers:
            thread.start()
        for _ in range(1000):
            if coalesced.leaders + len(coalesced._inflight) >= 1 and all(
                t.is_alive() for t in followers
            ):
                break
        gated.gate.set()
        leader.join(timeout=30.0)
        for thread in followers:
            thread.join(timeout=30.0)
        assert gated.calls <= 2  # followers raced the leader's finish
        assert len(results) == 6
        reference = memory_source().access("mt_R", ("a",))
        assert all(r == reference for r in results)
        assert coalesced.coalesced + coalesced.leaders == 6

    def test_leader_failure_reaches_a_retry_not_a_stale_answer(self):
        inner = BackpressuringSource(
            memory_source(), [RateLimited("leader dies")]
        )
        coalesced = CoalescingSource(inner)
        with pytest.raises(RateLimited):
            coalesced.access("mt_R", ("a",))
        # The failed flight was cleared: the next call leads and works.
        assert coalesced.access("mt_R", ("a",)) == memory_source().access(
            "mt_R", ("a",)
        )
