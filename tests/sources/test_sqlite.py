"""SQLiteSource: typed cells, reconnect lifecycle, epochs, batching."""

import pytest

from repro.data.instance import Instance
from repro.data.source import InMemorySource
from repro.errors import AccessViolation, SourceUnavailable
from repro.scenarios import example1
from repro.schema.core import SchemaBuilder
from repro.sources import SQLiteSource

_NO_SLEEP = lambda _seconds: None  # noqa: E731


def typed_schema():
    return (
        SchemaBuilder("typed")
        .relation("T", 2)
        .access("mt_T", "T", inputs=[0], cost=1.0)
        .access("mt_all", "T", inputs=[], cost=1.0)
        .build()
    )


def typed_instance():
    # 1, 1.0, True and "1" are distinct Constants; SQLite affinity
    # would collapse them -- the JSON cells must not.
    return Instance(
        {"T": [(1, "int"), (1.0, "float"), (True, "bool"), ("1", "str")]}
    )


class TestTypedRoundTrip:
    def test_mixed_types_survive_byte_for_byte(self):
        schema, instance = typed_schema(), typed_instance()
        sql = SQLiteSource(schema, instance, sleep=_NO_SLEEP)
        mem = InMemorySource(schema, instance)
        assert sql.access("mt_all") == mem.access("mt_all")
        for key in (1, 1.0, True, "1"):
            assert sql.access("mt_T", (key,)) == mem.access("mt_T", (key,))

    def test_scenario_parity_on_every_method(self):
        scenario = example1(professors=10, directory_extra=5)
        instance = scenario.instance(0)
        sql = SQLiteSource(scenario.schema, instance, sleep=_NO_SLEEP)
        mem = InMemorySource(scenario.schema, instance)
        assert sql.access("mt_udir") == mem.access("mt_udir")
        assert sql.access("mt_prof", ("e1",)) == mem.access(
            "mt_prof", ("e1",)
        )

    def test_wrong_input_count_is_typed(self):
        sql = SQLiteSource(typed_schema(), typed_instance(), sleep=_NO_SLEEP)
        with pytest.raises(AccessViolation):
            sql.access("mt_T", ())


class TestReconnectLifecycle:
    def test_severed_connection_reconnects_and_answers_identically(self):
        schema, instance = typed_schema(), typed_instance()
        sql = SQLiteSource(schema, instance, sleep=_NO_SLEEP)
        reference = sql.access("mt_all")
        sql.sever_connection()
        assert sql.access("mt_all") == reference
        assert sql.reconnects == 1

    def test_backoff_is_capped_exponential(self):
        sleeps = []
        sql = SQLiteSource(
            typed_schema(), typed_instance(),
            backoff=0.01, max_backoff=0.03, sleep=sleeps.append,
        )
        sql.sever_connection()
        sql.access("mt_all")
        assert sleeps == [pytest.approx(0.01)]

    def test_exhausted_reconnects_surface_as_source_unavailable(self):
        sql = SQLiteSource(
            typed_schema(), typed_instance(),
            max_reconnects=0, sleep=_NO_SLEEP,
        )
        sql.sever_connection()
        with pytest.raises(SourceUnavailable):
            sql.access("mt_all")

    def test_drop_every_severs_deterministically(self):
        sql = SQLiteSource(
            typed_schema(), typed_instance(),
            drop_every=2, sleep=_NO_SLEEP,
        )
        reference = InMemorySource(typed_schema(), typed_instance())
        for i in range(6):
            assert sql.access("mt_all") == reference.access("mt_all")
        assert sql._statements == 6
        assert sql.reconnects == 3  # statements 2, 4, 6 hit a dead conn


class TestEpochs:
    def test_reconnect_keeps_the_epoch(self):
        sql = SQLiteSource(typed_schema(), typed_instance(), sleep=_NO_SLEEP)
        before = sql.epoch()
        sql.sever_connection()
        sql.access("mt_all")
        assert sql.epoch() == before

    def test_mutation_bumps_the_epoch_and_reloads_the_snapshot(self):
        schema, instance = typed_schema(), typed_instance()
        sql = SQLiteSource(schema, instance, sleep=_NO_SLEEP)
        before = sql.epoch()
        stale = sql.access("mt_T", ("fresh",))
        assert stale == frozenset()
        instance.add("T", ("fresh", "row"))
        assert sql.epoch() > before
        assert sql.access("mt_T", ("fresh",)) == InMemorySource(
            schema, instance
        ).access("mt_T", ("fresh",))


class TestBatching:
    def test_batch_matches_per_key_answers_and_metering(self):
        scenario = example1(professors=8, directory_extra=0)
        instance = scenario.instance(0)
        sql = SQLiteSource(scenario.schema, instance, sleep=_NO_SLEEP)
        mem = InMemorySource(scenario.schema, instance)
        keys = [("e0",), ("e1",), ("e7",), ("nope",)]
        batched = sql.access_batch("mt_prof", keys)
        assert sql.batched_calls == 1
        # One logical access metered per key, same as the per-key loop.
        assert sql.total_invocations == len(keys)
        assert sql.invocations_of("mt_prof") == len(keys)
        for key in keys:
            assert batched[sql._check_method("mt_prof", key)[1]] == (
                mem.access("mt_prof", key)
            )

    def test_batch_uses_one_statement_for_single_input_methods(self):
        sql = SQLiteSource(typed_schema(), typed_instance(), sleep=_NO_SLEEP)
        before = sql._statements
        sql.access_batch("mt_T", [(1,), (True,), ("1",)])
        assert sql._statements == before + 1
