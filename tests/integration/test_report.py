"""Tests for the benchmark report renderer."""

import json

import pytest

from benchmarks.report import format_value, group_by_module, load, render


@pytest.fixture
def sample(tmp_path):
    data = {
        "benchmarks": [
            {
                "fullname": "benchmarks/bench_alpha.py::test_one[3]",
                "name": "test_one[3]",
                "stats": {"mean": 0.0123, "stddev": 0.001},
                "extra_info": {"nodes": 7, "cost": 6.0},
            },
            {
                "fullname": "benchmarks/bench_alpha.py::test_one[5]",
                "name": "test_one[5]",
                "stats": {"mean": 0.0004, "stddev": 0.00001},
                "extra_info": {"nodes": 9},
            },
            {
                "fullname": "benchmarks/bench_beta.py::test_two",
                "name": "test_two",
                "stats": {"mean": 2.5, "stddev": 0.2},
                "extra_info": {},
            },
        ]
    }
    path = tmp_path / "bench.json"
    path.write_text(json.dumps(data))
    return str(path)


class TestReport:
    def test_load(self, sample):
        assert len(load(sample)) == 3

    def test_grouping_by_module(self, sample):
        groups = group_by_module(load(sample))
        assert list(groups) == ["bench_alpha.py", "bench_beta.py"]
        assert len(groups["bench_alpha.py"]) == 2

    def test_render_has_tables_and_units(self, sample):
        text = render(load(sample))
        assert "### bench_alpha.py" in text
        assert "12.30 ms" in text
        assert "400 µs" in text
        assert "2.50 s" in text

    def test_extra_info_columns_merged(self, sample):
        text = render(load(sample))
        # Both keys appear as columns even though one row lacks 'cost'.
        assert "| nodes | cost |" in text
        assert "| test_one[3] | 12.30 ms" in text

    def test_format_value_list_arrow(self):
        assert format_value([11.0, 8.0, 6.0]) == "11 → 8 → 6"

    def test_format_value_float_precision(self):
        assert format_value(0.123456) == "0.1235"


class TestFaultsRenderer:
    def test_render_faults_tables(self):
        from benchmarks.report import render_faults

        report = {
            "mode": "smoke",
            "scenario": "example5[3]",
            "retries": 4,
            "transient": {
                "trials": 5,
                "rows": [
                    {
                        "rate": 0.2,
                        "unprotected": {
                            "success_rate": 0.0,
                            "mean_sim_latency": 0.1,
                        },
                        "resilient": {
                            "success_rate": 1.0,
                            "identical_to_reference": True,
                            "mean_retries": 3.2,
                            "mean_backoff": 0.25,
                            "mean_sim_latency": 0.35,
                        },
                    }
                ],
            },
            "outage": {
                "scenario": "example5[3]",
                "methods": 4,
                "complete": 3,
                "partial": 1,
                "failed": 0,
                "success_rate": 0.75,
                "served_rate": 1.0,
                "rows": [
                    {
                        "victim": "mt_udirect1",
                        "outcome": "complete",
                        "failovers": 1,
                        "plans_tried": ["Q5", "Q5~failover1"],
                        "rows": 1,
                    }
                ],
            },
        }
        text = render_faults(report)
        assert "unprotected vs resilient" in text
        assert "| 0.2 | 0% | 100% | yes | 3.2 |" in text
        assert "success rate 75%" in text
        assert "| mt_udirect1 | complete | 1 | 2 | 1 |" in text
