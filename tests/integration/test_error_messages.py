"""Error messages name the offending component (debuggability contract)."""

import pytest

from repro.logic.queries import QueryError, cq
from repro.planner.plan_state import PlanningError, PlanState
from repro.plans.expressions import EvaluationError, Project, Scan
from repro.plans.plan import Plan, PlanValidationError
from repro.plans.commands import MiddlewareCommand
from repro.schema.core import SchemaBuilder, SchemaError


class TestSchemaErrors:
    def test_unknown_relation_named(self):
        schema = SchemaBuilder("s").relation("R", 1).build()
        with pytest.raises(SchemaError, match="Zebra"):
            schema.relation("Zebra")

    def test_arity_mismatch_reports_both_arities(self):
        with pytest.raises(SchemaError, match="arity 2.*declared 1"):
            (
                SchemaBuilder("s")
                .relation("R", 1)
                .relation("S", 1)
                .tgd("R(x, y) -> S(x)")
                .build()
            )

    def test_method_position_error_names_method(self):
        with pytest.raises(SchemaError, match="mt_bad"):
            (
                SchemaBuilder("s")
                .relation("R", 1)
                .access("mt_bad", "R", inputs=[5])
                .build()
            )


class TestQueryErrors:
    def test_unbound_head_variable_named(self):
        with pytest.raises(QueryError, match="z"):
            cq(["?z"], [("R", ["?x"])])


class TestPlanErrors:
    def test_undefined_table_named(self):
        with pytest.raises(PlanValidationError, match="GHOST"):
            Plan((MiddlewareCommand("T", Scan("GHOST")),), "T")

    def test_missing_output_table(self):
        from repro.plans.expressions import Singleton

        with pytest.raises(PlanValidationError, match="NOPE"):
            Plan((MiddlewareCommand("T", Singleton()),), "NOPE")

    def test_unknown_attribute_in_projection(self):
        from repro.plans.expressions import NamedTable

        env = {"T": NamedTable.from_rows(["x"], [])}
        with pytest.raises(EvaluationError, match="zz"):
            Project(Scan("T"), ("zz",)).evaluate(env)


class TestPlannerErrors:
    def test_inaccessible_input_names_value_and_method(self):
        from repro.logic.atoms import Atom
        from repro.logic.terms import Null

        schema = (
            SchemaBuilder("s")
            .relation("R", 2)
            .access("mt_r", "R", inputs=[0])
            .build()
        )
        with pytest.raises(PlanningError, match="mt_r|accessible"):
            PlanState().expose(
                Atom("R", (Null("k"), Null("v"))), schema.method("mt_r")
            )

    def test_relation_method_mismatch_names_both(self):
        from repro.logic.atoms import Atom
        from repro.logic.terms import Null

        schema = (
            SchemaBuilder("s")
            .relation("R", 1)
            .relation("S", 1)
            .free_access("R")
            .free_access("S")
            .build()
        )
        with pytest.raises(PlanningError, match="mt_R.*S|S.*mt_R"):
            PlanState().expose(
                Atom("S", (Null("v"),)), schema.method("mt_R")
            )
