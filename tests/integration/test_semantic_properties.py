"""Cross-module semantic property tests.

* AccPart monotonicity: adding tuples never shrinks the accessible part.
* Weak acyclicity really implies chase termination (analysis vs engine).
* Certified plans stay complete under source decorators.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.chase.configuration import ChaseConfiguration
from repro.chase.engine import ChasePolicy, chase_to_fixpoint
from repro.data.accessible_part import accessible_part
from repro.data.instance import Instance
from repro.logic.analysis import is_weakly_acyclic
from repro.logic.atoms import Atom
from repro.logic.dependencies import TGD
from repro.logic.terms import Constant, NullFactory, Variable
from repro.scenarios import example1, example2


class TestAccPartMonotone:
    @pytest.mark.parametrize("seed", range(4))
    def test_adding_tuples_grows_accpart(self, seed):
        scenario = example2(directory_size=6)
        schema = scenario.schema
        small = scenario.instance(seed)
        large = small.copy()
        rng = random.Random(seed)
        # Add extra tuples (respecting nothing in particular: AccPart
        # monotonicity holds regardless of constraints).
        for _ in range(5):
            large.add("Names", (f"extra{rng.randrange(100)}",))
            large.add("Ids", (f"xid{rng.randrange(100)}",))
        part_small = accessible_part(schema, small)
        part_large = accessible_part(schema, large)
        assert part_small.is_subpart_of(part_large)
        assert (
            part_small.accessible_values
            <= part_large.accessible_values
        )

    def test_accpart_fixpoint_stable(self):
        """Re-running AccPart on the accessed copy changes nothing for a
        schema whose accesses reveal everything they return."""
        scenario = example1(professors=5, directory_extra=5)
        instance = scenario.instance(0)
        part = accessible_part(scenario.schema, instance)
        again = accessible_part(scenario.schema, part.as_instance())
        assert again.accessed == part.accessed


VARS = [Variable(n) for n in "xyz"]


@st.composite
def random_tgds(draw):
    """Random single-atom-body TGDs over binary relations R, S, T."""
    rels = ["R", "S", "T"]
    body_rel = draw(st.sampled_from(rels))
    body = Atom(body_rel, (VARS[0], VARS[1]))
    head_rel = draw(st.sampled_from(rels))
    pool = [VARS[0], VARS[1], VARS[2]]  # z is existential if used
    head = Atom(
        head_rel,
        (draw(st.sampled_from(pool)), draw(st.sampled_from(pool))),
    )
    return TGD((body,), (head,))


class TestWeakAcyclicityPredictsTermination:
    @given(st.lists(random_tgds(), min_size=1, max_size=3))
    @settings(max_examples=60, deadline=None)
    def test_wa_sets_terminate_within_generous_budget(self, tgds):
        if not is_weakly_acyclic(tgds):
            return  # the guarantee only goes one way
        config = ChaseConfiguration(
            [
                Atom("R", (Constant("a"), Constant("b"))),
                Atom("S", (Constant("b"), Constant("c"))),
            ]
        )
        result = chase_to_fixpoint(
            config, tgds, NullFactory("wa"), ChasePolicy(max_firings=5_000)
        )
        assert result.reached_fixpoint, [repr(t) for t in tgds]


class TestDecoratedCompleteness:
    def test_plan_complete_through_cache(self):
        from repro.data.decorators import CachingSource
        from repro.data.source import InMemorySource
        from repro.planner.search import find_best_plan

        scenario = example1(professors=8, directory_extra=8)
        plan = find_best_plan(scenario.schema, scenario.query).best_plan
        instance = scenario.instance(2)
        source = CachingSource(InMemorySource(scenario.schema, instance))
        out = plan.run(source)
        assert set(out.rows) == instance.evaluate(scenario.query)
