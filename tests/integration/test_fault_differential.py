"""Differential oracle for the fault stack: resilience changes nothing.

The acceptance bar of the fault-tolerance PR: for every scenario with a
complete plan, executing under a seeded fault schedule *with retries*
yields byte-identical tables to the fault-free reference, and failing
over around a hard outage yields the same certain answers (Proposition
2: every complete plan computes the certain answers, whichever methods
it uses).
"""

import pytest

from repro.data.source import InMemorySource
from repro.exec import (
    AccessCache,
    BreakerRegistry,
    FailoverExecutor,
    ResilientDispatcher,
    RetryPolicy,
)
from repro.faults import FaultInjectingSource, FaultPolicy, VirtualClock
from repro.planner.search import SearchOptions, find_best_plan
from repro.scenarios import (
    example1,
    example2,
    example5,
    referential_chain,
    view_stack_scenario,
    webservices,
)

SCENARIOS = [
    ("example1", example1, 3),
    ("example2", example2, 4),
    ("example5", example5, 4),
    ("chain2", lambda: referential_chain(2), 4),
    ("views", view_stack_scenario, 4),
    ("webservices", webservices, 5),
]

FAULT_SEED = 13


def planned(factory, budget):
    scenario = factory()
    result = find_best_plan(
        scenario.schema, scenario.query, SearchOptions(max_accesses=budget)
    )
    if not result.found:
        pytest.skip("no complete plan within the access budget")
    return scenario, result.best_plan


def faulty_source(scenario, policy, clock=None):
    return FaultInjectingSource(
        InMemorySource(scenario.schema, scenario.instance(0)),
        policy,
        clock=clock,
    )


def resilient(retries=4, clock=None):
    clock = clock or VirtualClock()
    return ResilientDispatcher(
        retry=RetryPolicy(max_attempts=retries + 1, seed=FAULT_SEED),
        breakers=BreakerRegistry(clock=clock),
        sleep=clock.sleep,
    )


def canonical(table):
    """A byte-comparable rendering of a table: sorted row reprs."""
    return (table.attributes, tuple(sorted(map(repr, table.rows))))


@pytest.mark.parametrize(
    "name,factory,budget", SCENARIOS, ids=[s[0] for s in SCENARIOS]
)
@pytest.mark.parametrize("rate", [0.2, 0.5])
def test_faulty_run_with_retries_is_byte_identical(name, factory, budget, rate):
    scenario, plan = planned(factory, budget)
    reference = plan.execute(
        InMemorySource(scenario.schema, scenario.instance(0))
    )
    policy = FaultPolicy.transient(rate, seed=FAULT_SEED)
    source = faulty_source(scenario, policy)
    dispatcher = resilient()
    output = plan.execute(source, resilience=dispatcher)
    assert canonical(output) == canonical(reference)
    assert dispatcher.giveups == 0
    # The schedule actually bit on at least one scenario-rate combo; the
    # per-case assertion is just that recovery was total.
    assert dispatcher.faults == dispatcher.retries


@pytest.mark.parametrize(
    "name,factory,budget", SCENARIOS[:3], ids=[s[0] for s in SCENARIOS[:3]]
)
def test_fault_bursts_recover_with_enough_retries(name, factory, budget):
    scenario, plan = planned(factory, budget)
    reference = plan.execute(
        InMemorySource(scenario.schema, scenario.instance(0))
    )
    policy = FaultPolicy.transient(0.4, seed=FAULT_SEED, burst=2)
    output = plan.execute(
        faulty_source(scenario, policy), resilience=resilient(retries=4)
    )
    assert canonical(output) == canonical(reference)


def test_fault_schedule_and_backoff_are_reproducible():
    scenario, plan = planned(example5, 4)

    def trace():
        clock = VirtualClock()
        source = faulty_source(
            scenario,
            FaultPolicy.transient(0.5, seed=FAULT_SEED),
            clock=clock,
        )
        dispatcher = resilient(clock=clock)
        table = plan.execute(source, resilience=dispatcher)
        return (
            canonical(table),
            source.stats.as_dict(),
            dispatcher.retries,
            dispatcher.backoff_waited,
            clock.now(),
        )

    assert trace() == trace()


def test_cache_and_resilience_compose():
    scenario, plan = planned(example5, 4)
    reference = plan.execute(
        InMemorySource(scenario.schema, scenario.instance(0))
    )
    source = faulty_source(
        scenario, FaultPolicy.transient(0.3, seed=FAULT_SEED)
    )
    output = plan.execute(
        source, cache=AccessCache(), resilience=resilient()
    )
    assert canonical(output) == canonical(reference)


@pytest.mark.parametrize("victim", ["mt_udirect1", "mt_udirect2", "mt_udirect3"])
def test_failover_returns_the_same_certain_answers(victim):
    scenario, plan = planned(example5, 4)
    reference = plan.execute(
        InMemorySource(scenario.schema, scenario.instance(0))
    )
    source = faulty_source(scenario, FaultPolicy.outage(victim))
    executor = FailoverExecutor(
        scenario.schema, source, resilience=resilient()
    )
    outcome = executor.run(scenario.query)
    assert outcome.complete
    assert canonical(outcome.table) == canonical(reference)


@pytest.mark.parametrize(
    "name,factory,budget", SCENARIOS, ids=[s[0] for s in SCENARIOS]
)
def test_partial_answers_are_sound(name, factory, budget):
    """Killing the first method of the best plan degrades soundly.

    Whatever the outcome -- a failover plan or a marked partial answer
    -- every returned row is a true answer of the query on the hidden
    instance.
    """
    scenario, plan = planned(factory, budget)
    first_access = next(
        command.method
        for command in plan.commands
        if hasattr(command, "method")
    )
    instance = scenario.instance(0)
    truth = instance.evaluate(scenario.query)
    source = FaultInjectingSource(
        InMemorySource(scenario.schema, instance),
        FaultPolicy.outage(first_access),
    )
    executor = FailoverExecutor(
        scenario.schema, source, resilience=resilient()
    )
    outcome = executor.run(scenario.query)
    assert outcome.ok, outcome.describe()
    assert set(outcome.table.rows) <= truth or scenario.query.is_boolean
    if outcome.complete:
        if scenario.query.is_boolean:
            assert bool(outcome.table.rows) == bool(truth)
        else:
            assert set(outcome.table.rows) == truth
