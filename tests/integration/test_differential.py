"""Differential tests: independent code paths must agree.

* Algorithm 1's success (proof search with plan construction) vs the
  plain chase entailment check of `repro.fo.determinacy` (which fires
  accessibility axioms as ordinary chase rules, no plans involved):
  both decide "Q entails InferredAccQ over AcSch" and must agree
  whenever neither is budget-truncated.
* The view-rewriting verdict vs classical containment of the rewriting.
"""

import pytest

from repro.chase.engine import ChasePolicy
from repro.fo.determinacy import is_monotonically_determined
from repro.logic.queries import cq
from repro.planner.search import SearchOptions, find_best_plan
from repro.scenarios import example1, example2, example5, referential_chain
from repro.schema.core import SchemaBuilder


def _agree(schema, query, max_accesses=8):
    search = find_best_plan(
        schema, query, SearchOptions(max_accesses=max_accesses)
    )
    entailment = is_monotonically_determined(
        schema, query, ChasePolicy(max_firings=50_000)
    )
    return search.found, entailment


class TestSearchVsChaseEntailment:
    @pytest.mark.parametrize(
        "factory",
        [example1, example2, lambda: example5(sources=2)],
    )
    def test_positive_scenarios_agree(self, factory):
        scenario = factory()
        found, entailed = _agree(scenario.schema, scenario.query)
        assert found and entailed

    def test_chain_scenarios_agree(self):
        for length in (1, 2, 3):
            scenario = referential_chain(length)
            found, entailed = _agree(scenario.schema, scenario.query)
            assert found and entailed

    def test_negative_cases_agree(self):
        hidden = SchemaBuilder("h").relation("H", 1).build()
        query = cq([], [("H", ["?x"])])
        found, entailed = _agree(hidden, query)
        assert not found and not entailed

    def test_uncovered_input_agree(self):
        schema = (
            SchemaBuilder("s")
            .relation("R", 2)
            .access("mt_r", "R", inputs=[1])
            .build()
        )
        query = cq([], [("R", ["?x", "?y"])])
        found, entailed = _agree(schema, query)
        assert not found and not entailed

    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_schemas_agree(self, seed):
        """Random small schemas over a fixed template family."""
        import random

        rng = random.Random(seed)
        builder = SchemaBuilder(f"d{seed}")
        builder.relation("A", 2).relation("B", 2).relation("C", 1)
        # Random access patterns.
        for name, rel, arity in (
            ("mA", "A", 2),
            ("mB", "B", 2),
            ("mC", "C", 1),
        ):
            inputs = sorted(
                rng.sample(range(arity), rng.randint(0, arity - 1))
            )
            builder.access(name, rel, inputs=inputs)
        # Random full referential constraints (weakly acyclic family).
        if rng.random() < 0.8:
            builder.tgd("A(x, y) -> B(x, y)")
        if rng.random() < 0.8:
            builder.tgd("B(x, y) -> C(y)")
        schema = builder.build()
        queries = [
            cq([], [("A", ["?x", "?y"])], name="qa"),
            cq([], [("B", ["?x", "?y"])], name="qb"),
            cq([], [("A", ["?x", "?y"]), ("C", ["?y"])], name="qac"),
        ]
        for query in queries:
            found, entailed = _agree(schema, query, max_accesses=5)
            assert found == entailed, (seed, query.name)


class TestViewVerdictVsContainment:
    def test_rewriting_always_equivalent_to_query_on_data(self):
        """For every rewritable case, evaluating the rewriting over view
        contents equals evaluating the query over the base -- across all
        generated instances (the semantic definition of a rewriting)."""
        from repro.planner.views import rewrite_over_views
        from repro.scenarios import view_stack_scenario

        for views in (1, 2, 3):
            scenario = view_stack_scenario(views)
            result = rewrite_over_views(scenario.schema, scenario.query)
            assert result.rewritable
            for seed in range(2):
                instance = scenario.instance(seed)
                assert instance.evaluate(
                    result.rewriting
                ) == instance.evaluate(scenario.query)
