"""Corollaries 1-2 of the paper: monotonicity <-> rewritability on views.

Corollary 1: a query monotone in a set of views iff it has a USPJ
rewriting over them.  In our effective (TGD + chase) reading this says:
the AcSch entailment check over a view schema (which is exactly the
subinstance-monotonicity proxy of Claim 2) agrees with the planner's
rewritability verdict -- two implementations of the same property.
"""

import pytest

from repro.chase.engine import ChasePolicy
from repro.fo.determinacy import is_monotonically_determined
from repro.logic.queries import cq
from repro.planner.views import (
    ViewDefinition,
    rewrite_over_views,
    views_schema,
)
from repro.schema.core import Relation


BASE = [Relation("R", 2), Relation("S", 2)]

VIEW_SETS = {
    "identity": [
        ViewDefinition("VR", cq(["?x", "?y"], [("R", ["?x", "?y"])])),
    ],
    "both": [
        ViewDefinition("VR", cq(["?x", "?y"], [("R", ["?x", "?y"])])),
        ViewDefinition("VS", cq(["?y", "?z"], [("S", ["?y", "?z"])])),
    ],
    "join-only": [
        ViewDefinition(
            "VJ",
            cq(
                ["?x", "?z"],
                [("R", ["?x", "?y"]), ("S", ["?y", "?z"])],
            ),
        ),
    ],
    "s-only": [
        ViewDefinition("VS", cq(["?y", "?z"], [("S", ["?y", "?z"])])),
    ],
}

QUERIES = {
    "r": cq(["?x", "?y"], [("R", ["?x", "?y"])], name="qr"),
    "join": cq(
        ["?x", "?z"],
        [("R", ["?x", "?y"]), ("S", ["?y", "?z"])],
        name="qj",
    ),
    "middle": cq(
        ["?y"],
        [("R", ["?x", "?y"]), ("S", ["?y", "?z"])],
        name="qm",
    ),
}


@pytest.mark.parametrize("view_key", sorted(VIEW_SETS))
@pytest.mark.parametrize("query_key", sorted(QUERIES))
def test_monotonicity_agrees_with_rewritability(view_key, query_key):
    schema = views_schema(BASE, VIEW_SETS[view_key], name=view_key)
    query = QUERIES[query_key]
    rewritable = rewrite_over_views(schema, query).rewritable
    monotone = is_monotonically_determined(
        schema, query, ChasePolicy(max_firings=50_000)
    )
    assert rewritable == monotone, (view_key, query_key)


def test_expected_verdict_grid():
    """Spot-check the grid against hand-derived expectations."""
    expectations = {
        ("identity", "r"): True,
        ("identity", "join"): False,   # no S view
        ("both", "join"): True,
        ("both", "middle"): True,      # VR and VS both expose y
        ("join-only", "join"): True,
        ("join-only", "middle"): False,  # y projected away
        ("s-only", "r"): False,
    }
    for (view_key, query_key), expected in expectations.items():
        schema = views_schema(BASE, VIEW_SETS[view_key], name=view_key)
        result = rewrite_over_views(schema, QUERIES[query_key])
        assert result.rewritable == expected, (view_key, query_key)
