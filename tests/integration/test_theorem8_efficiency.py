"""Theorem 8 / Theorem 9 behavioural checks.

Theorem 8: proof-based plans are access-efficient -- the best plan never
makes more *runtime* accesses (distinct (method, input) pairs) than
worse proof-based plans for the same query, and cheap static cost
translates into cheap runtime cost for simple cost functions.

Theorem 9: Algorithm 1's result matches exhaustive search with all
pruning disabled (brute force over the bounded proof space).
"""

import pytest

from repro.cost.functions import CountingCostFunction, SimpleCostFunction
from repro.data.source import InMemorySource
from repro.planner.proof_to_plan import plan_from_proof
from repro.planner.search import SearchOptions, find_best_plan
from repro.scenarios import example1, example5, referential_chain
from repro.schema.accessible import AccessibleSchema, Variant


class TestTheorem9BruteForceAgreement:
    """Pruned search == exhaustive search on the bounded proof space."""

    @pytest.mark.parametrize(
        "costs",
        [
            [1.0, 2.0, 3.0],
            [3.0, 2.0, 1.0],
            [5.0, 5.0, 5.0],
            [0.5, 9.0, 2.5],
        ],
    )
    def test_example5_cost_grid(self, costs):
        scenario = example5(sources=3, source_costs=costs)
        pruned = find_best_plan(
            scenario.schema, scenario.query, SearchOptions(max_accesses=4)
        )
        exhaustive = find_best_plan(
            scenario.schema,
            scenario.query,
            SearchOptions(
                max_accesses=4, prune_by_cost=False, domination=False
            ),
        )
        assert pruned.best_cost == pytest.approx(exhaustive.best_cost)

    def test_chain_scenario(self):
        scenario = referential_chain(2)
        pruned = find_best_plan(
            scenario.schema, scenario.query, SearchOptions(max_accesses=4)
        )
        exhaustive = find_best_plan(
            scenario.schema,
            scenario.query,
            SearchOptions(
                max_accesses=4, prune_by_cost=False, domination=False
            ),
        )
        assert pruned.best_cost == pytest.approx(exhaustive.best_cost)


class TestRuntimeAccessEfficiency:
    def test_best_plan_beats_padded_proof_at_runtime(self):
        """A proof exposing extra sources yields a plan making at least
        the runtime accesses of the minimal proof's plan."""
        scenario = example5(
            sources=3, professors=10, noise_per_source=20
        )
        acc = AccessibleSchema(scenario.schema, Variant.FORWARD)
        best = find_best_plan(
            scenario.schema, scenario.query, SearchOptions(max_accesses=4)
        )
        # The all-sources proof (Figure 1's n4 plan).
        exhaustive = find_best_plan(
            scenario.schema,
            scenario.query,
            SearchOptions(
                max_accesses=4,
                prune_by_cost=False,
                domination=False,
                collect_tree=True,
                candidate_order="method",
            ),
        )
        padded_nodes = [
            n
            for n in exhaustive.tree
            if n.successful and len(n.exposures) == 4
        ]
        assert padded_nodes
        padded_plan = plan_from_proof(
            acc,
            # Rebuild the padded proof from the recorded node.
            __import__(
                "repro.planner.proof_to_plan", fromlist=["ChaseProof"]
            ).ChaseProof(scenario.query, padded_nodes[0].exposures),
        )
        instance = scenario.instance(0)
        src_best = InMemorySource(scenario.schema, instance)
        src_padded = InMemorySource(scenario.schema, instance)
        out_best = best.best_plan.run(src_best)
        out_padded = padded_plan.run(src_padded)
        assert set(out_best.rows) == set(out_padded.rows)
        # The paper's intro trade-off, observable at runtime: the padded
        # plan pays more bulk source accesses but feeds Profinfo only the
        # *intersection* of the directories, so its probe accesses are a
        # subset of the minimal plan's.
        best_probes = {
            rec.inputs
            for rec in src_best.log
            if rec.method == "mt_prof"
        }
        padded_probes = {
            rec.inputs
            for rec in src_padded.log
            if rec.method == "mt_prof"
        }
        assert padded_probes <= best_probes
        assert src_padded.invocations_of(
            "mt_udirect2"
        ) > src_best.invocations_of("mt_udirect2")

    def test_best_plan_runtime_cost_tracks_static_cost(self):
        """Cheaper static plans charge no more at runtime (simple cost)."""
        scenario = example5(
            sources=2, source_costs=[1.0, 8.0], professors=10
        )
        result = find_best_plan(
            scenario.schema, scenario.query, SearchOptions(max_accesses=3)
        )
        instance = scenario.instance(0)
        source = InMemorySource(scenario.schema, instance)
        result.best_plan.run(source)
        assert source.invocations_of("mt_udirect2") == 0  # pricey skipped


class TestPlanOutputsAgreeAcrossProofs:
    def test_all_successful_proofs_compute_same_answer(self):
        """Completeness makes every successful proof's plan equivalent."""
        scenario = example5(sources=3, professors=6, noise_per_source=6)
        acc = AccessibleSchema(scenario.schema, Variant.FORWARD)
        result = find_best_plan(
            scenario.schema,
            scenario.query,
            SearchOptions(
                max_accesses=4,
                prune_by_cost=False,
                domination=False,
                collect_tree=True,
            ),
        )
        successes = [n for n in result.tree if n.successful]
        assert len(successes) >= 2
        instance = scenario.instance(1)
        outputs = set()
        from repro.planner.proof_to_plan import ChaseProof

        for node in successes[:5]:
            plan = plan_from_proof(
                acc, ChaseProof(scenario.query, node.exposures)
            )
            out = plan.run(InMemorySource(scenario.schema, instance))
            outputs.add(frozenset(out.rows))
        assert len(outputs) == 1
