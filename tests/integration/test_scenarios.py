"""Tests for the scenario factories themselves."""

import pytest

from repro.scenarios import (
    example1,
    example2,
    example5,
    redundant_sources,
    referential_chain,
    view_stack_scenario,
)


class TestExample1Factory:
    def test_schema_shape(self):
        scenario = example1()
        assert scenario.schema.method("mt_prof").input_positions == (0,)
        assert scenario.schema.method("mt_udir").is_free

    def test_instances_satisfy_constraints(self):
        scenario = example1(professors=5, directory_extra=5)
        for seed in range(3):
            assert scenario.instance(seed).satisfies_all(
                scenario.schema.constraints
            )

    def test_lastname_parameter(self):
        scenario = example1(lastname="chen")
        assert any(
            c.value == "chen" for c in scenario.schema.constants
        )
        instance = scenario.instance(0)
        assert instance.evaluate(scenario.query)


class TestExample2Factory:
    def test_constraints_are_inclusion_dependencies(self):
        scenario = example2()
        assert scenario.schema.has_only_guarded_constraints

    def test_instance_sizes_scale(self):
        small = example2(directory_size=5).instance(0)
        large = example2(directory_size=50).instance(0)
        assert large.size() > small.size()

    def test_instances_valid(self):
        scenario = example2(directory_size=10)
        assert scenario.instance(1).satisfies_all(
            scenario.schema.constraints
        )


class TestExample5Factory:
    def test_source_count_parameter(self):
        scenario = example5(sources=5)
        names = {r.name for r in scenario.schema.relations}
        assert {"Udirect1", "Udirect5"} <= names

    def test_cost_vector_validated(self):
        with pytest.raises(ValueError):
            example5(sources=3, source_costs=[1.0])

    def test_every_professor_in_every_source(self):
        scenario = example5(sources=2, professors=4, noise_per_source=0)
        instance = scenario.instance(0)
        assert instance.satisfies_all(scenario.schema.constraints)
        assert instance.size("Udirect1") == instance.size("Udirect2") == 4

    def test_noise_adds_non_matching_entries(self):
        quiet = example5(sources=2, professors=4, noise_per_source=0)
        noisy = example5(sources=2, professors=4, noise_per_source=20)
        assert noisy.instance(0).size("Udirect1") > quiet.instance(
            0
        ).size("Udirect1")

    def test_redundant_sources_alias(self):
        assert redundant_sources(3).schema.name == example5(3).schema.name


class TestChainFactory:
    @pytest.mark.parametrize("length", [1, 3, 5])
    def test_chain_instances_valid(self, length):
        scenario = referential_chain(length, chain_size=5)
        instance = scenario.instance(0)
        assert instance.satisfies_all(scenario.schema.constraints)

    def test_length_validation(self):
        with pytest.raises(ValueError):
            referential_chain(0)

    def test_only_last_key_table_free(self):
        scenario = referential_chain(3)
        free = [m for m in scenario.schema.methods if m.is_free]
        assert [m.name for m in free] == ["mt_K2"]


class TestViewStackFactory:
    def test_views_materialized_consistently(self):
        scenario = view_stack_scenario(2)
        instance = scenario.instance(0)
        # Every view's contents equal its definition's evaluation.
        assert instance.satisfies_all(scenario.schema.constraints)

    def test_closing_view_flag(self):
        with_close = view_stack_scenario(2, include_closing_view=True)
        without = view_stack_scenario(2, include_closing_view=False)
        assert with_close.schema.has_relation("VFULL")
        assert not without.schema.has_relation("VFULL")
