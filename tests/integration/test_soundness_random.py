"""Randomized soundness (Theorem 5): plans answer queries completely.

Strategy: build random schemas from a template family where plan
existence is guaranteed by construction (free accesses and referential
constraints), draw random queries, plan them, and check plan output ==
direct query evaluation on randomized constraint-repaired instances.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.data.generators import random_instance
from repro.data.source import InMemorySource
from repro.logic.queries import cq
from repro.planner.search import SearchOptions, find_best_plan
from repro.schema.core import SchemaBuilder


def free_schema(relation_arities, seed=0):
    """All relations freely accessible: every CQ is answerable."""
    builder = SchemaBuilder(f"free{seed}")
    for name, arity in relation_arities.items():
        builder.relation(name, arity).free_access(name)
    return builder.build()


@st.composite
def free_cases(draw):
    arities = {
        "R": draw(st.integers(1, 3)),
        "S": draw(st.integers(1, 3)),
        "T": draw(st.integers(1, 2)),
    }
    schema = free_schema(arities)
    variables = ["?x", "?y", "?z", "?u"]
    atoms = []
    for _ in range(draw(st.integers(1, 3))):
        relation = draw(st.sampled_from(list(arities)))
        terms = [
            draw(st.sampled_from(variables))
            for _ in range(arities[relation])
        ]
        atoms.append((relation, terms))
    used = {t for _, ts in atoms for t in ts}
    head_pool = sorted(used)
    head = head_pool[: draw(st.integers(0, min(2, len(head_pool))))]
    query = cq(head, atoms, name="QR")
    return schema, query, draw(st.integers(0, 10_000))


@given(free_cases())
@settings(max_examples=40, deadline=None)
def test_random_queries_over_free_schemas_complete(case):
    schema, query, seed = case
    result = find_best_plan(schema, query, SearchOptions(max_accesses=4))
    assert result.found, "free schemas answer every CQ"
    instance = random_instance(
        schema, default_size=8, pool_size=5, seed=seed
    )
    source = InMemorySource(schema, instance)
    output = set(result.best_plan.run(source).rows)
    truth = instance.evaluate(query)
    if query.is_boolean:
        assert bool(output) == bool(truth)
    else:
        assert output == truth


@pytest.mark.parametrize("seed", range(8))
def test_restricted_referential_schemas_complete(seed):
    """Randomized Example-1-shaped schemas with a restricted relation."""
    rng = random.Random(seed)
    key_pos = rng.randrange(2)
    builder = (
        SchemaBuilder(f"rr{seed}")
        .relation("Hiddenish", 2)
        .relation("Lookup", 2)
        .access("mt_hidden", "Hiddenish", inputs=[key_pos], cost=2.0)
        .free_access("Lookup")
    )
    if key_pos == 0:
        builder.tgd("Hiddenish(k, v) -> Lookup(k, v)")
    else:
        builder.tgd("Hiddenish(v, k) -> Lookup(k, v)")
    schema = builder.build()
    query = cq(["?a", "?b"], [("Hiddenish", ["?a", "?b"])], name="QH")
    result = find_best_plan(schema, query, SearchOptions(max_accesses=3))
    assert result.found
    instance = random_instance(
        schema, default_size=10, pool_size=6, seed=seed
    )
    source = InMemorySource(schema, instance)
    assert set(result.best_plan.run(source).rows) == instance.evaluate(
        query
    )


@pytest.mark.parametrize("seed", range(5))
def test_plan_never_overreports(seed):
    """Even on instances *violating* the constraints, proof-based SPJ
    plans never invent tuples outside the relation being queried.

    (Completeness needs the constraints; soundness of what IS returned
    only needs the join structure -- assertion 2 of Theorem 5's proof.)
    """
    scenario_schema = (
        SchemaBuilder("v")
        .relation("Profinfo", 3)
        .relation("Udirect", 2)
        .access("mt_prof", "Profinfo", inputs=[0])
        .free_access("Udirect")
        .tgd("Profinfo(eid, onum, lname) -> Udirect(eid, lname)")
        .build()
    )
    query = cq(
        ["?e", "?o"], [("Profinfo", ["?e", "?o", "?l"])], name="QS"
    )
    result = find_best_plan(scenario_schema, query)
    instance = random_instance(
        scenario_schema,
        default_size=12,
        pool_size=5,
        seed=seed,
        repair=False,  # deliberately violating
    )
    source = InMemorySource(scenario_schema, instance)
    output = set(result.best_plan.run(source).rows)
    truth = instance.evaluate(query)
    assert output <= truth
