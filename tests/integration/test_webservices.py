"""End-to-end tests for the bibliography web-services scenario."""

import pytest

from repro.data.source import InMemorySource
from repro.planner.answerability import Answerability, decide_answerability
from repro.planner.search import SearchOptions, find_best_plan
from repro.scenarios import webservices


class TestWebservices:
    def test_four_hop_plan_found(self):
        scenario = webservices()
        result = find_best_plan(
            scenario.schema, scenario.query, SearchOptions(max_accesses=5)
        )
        assert result.found
        assert result.best_plan.methods_used() == (
            "mt_venues",
            "mt_listing",
            "mt_article",
            "mt_authors",
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_plan_complete_on_generated_data(self, seed):
        scenario = webservices(venues=3, articles_per_venue=5)
        result = find_best_plan(
            scenario.schema, scenario.query, SearchOptions(max_accesses=5)
        )
        instance = scenario.instance(seed)
        assert instance.satisfies_all(scenario.schema.constraints)
        out = result.best_plan.run(
            InMemorySource(scenario.schema, instance)
        )
        assert set(out.rows) == instance.evaluate(scenario.query)

    def test_needs_all_four_accesses(self):
        scenario = webservices()
        verdict3 = decide_answerability(
            scenario.schema, scenario.query, max_accesses=3
        )
        verdict4 = decide_answerability(
            scenario.schema, scenario.query, max_accesses=4
        )
        assert verdict3 is Answerability.NO_PLAN_WITHIN_BUDGET
        assert verdict4 is Answerability.ANSWERABLE

    def test_constraints_weakly_acyclic(self):
        from repro.logic.analysis import analyze_constraints

        scenario = webservices()
        assert analyze_constraints(
            scenario.schema.constraints
        ).weakly_acyclic
