"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.scenarios import example1
from repro.schema.serialize import schema_to_dict


@pytest.fixture
def schema_file(tmp_path):
    path = tmp_path / "schema.json"
    path.write_text(json.dumps(schema_to_dict(example1().schema)))
    return str(path)


class TestDemo:
    def test_example1_demo_succeeds(self, capsys):
        assert main(["demo", "example1"]) == 0
        out = capsys.readouterr().out
        assert "complete: yes" in out
        assert "mt_udir" in out

    def test_chain_demo(self, capsys):
        assert main(["demo", "chain"]) == 0
        assert "complete: yes" in capsys.readouterr().out

    def test_budget_too_small_exit_code(self, capsys):
        assert main(["demo", "example2", "--max-accesses", "1"]) == 2

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["demo", "not-a-scenario"])


class TestServeDemoResilience:
    def test_hedged_thread_tier_serves_clean(self, capsys):
        code = main(
            [
                "serve-demo",
                "example1",
                "--worker-tier", "thread",
                "--hedge",
                "--watchdog-seconds", "5",
                "--requests", "4",
                "--latency", "0",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "'hedge': True" in out
        assert "'watchdog_seconds': 5.0" in out

    def test_resilience_flags_without_a_tier_print_a_note(self, capsys):
        code = main(
            [
                "serve-demo",
                "example1",
                "--hedge",
                "--requests", "2",
                "--latency", "0",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "pass --worker-tier" in out

    def test_chaos_scenario_flag_runs_the_matrix_entry(self, capsys):
        code = main(
            ["serve-demo", "example1", "--chaos-scenario", "latency_storm"]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "latency_storm[seed=0]: OK" in out
        assert "0 violations" in out

    def test_unknown_chaos_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["serve-demo", "example1", "--chaos-scenario", "meteor"])


class TestPlan:
    def test_plan_query_over_schema_file(self, schema_file, capsys):
        code = main(
            ["plan", schema_file, "q(eid) :- Profinfo(eid, o, 'smith')"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mt_prof" in out
        assert "static cost" in out

    def test_plan_sql_flag(self, schema_file, capsys):
        main(
            [
                "plan",
                schema_file,
                "q(eid) :- Profinfo(eid, o, 'smith')",
                "--sql",
            ]
        )
        out = capsys.readouterr().out
        assert "CREATE TEMP TABLE" in out

    def test_unanswerable_exit_code(self, schema_file, capsys):
        # Two-variable query over Udirect is answerable; use a fresh
        # schema with a hidden relation for the negative case.
        code = main(
            [
                "plan",
                schema_file,
                "q() :- Profinfo(e, o, l)",
                "--max-accesses",
                "1",
            ]
        )
        assert code == 2


class TestCheck:
    def test_answerable(self, schema_file, capsys):
        assert (
            main(["check", schema_file, "q() :- Profinfo(e, o, l)"]) == 0
        )
        assert "answerable" in capsys.readouterr().out

    def test_not_answerable_within_budget(self, schema_file):
        code = main(
            [
                "check",
                schema_file,
                "q() :- Profinfo(e, o, l)",
                "--max-accesses",
                "1",
            ]
        )
        assert code == 2
