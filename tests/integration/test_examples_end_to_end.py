"""End-to-end: every paper example, planned and executed, is *complete*.

The defining requirement (Section 1): a plan must return exactly the
query's answer on every instance satisfying the constraints.  These tests
compare plan outputs against direct (unrestricted) query evaluation over
many generated instances.
"""

import pytest

from repro.cost.functions import SimpleCostFunction
from repro.data.source import InMemorySource
from repro.planner.search import SearchOptions, find_best_plan
from repro.scenarios import (
    example1,
    example2,
    example5,
    referential_chain,
    view_stack_scenario,
)


def assert_plan_complete(scenario, plan, seeds=range(3)):
    for seed in seeds:
        instance = scenario.instance(seed)
        assert instance.satisfies_all(
            scenario.schema.constraints
        ), f"generator broke constraints (seed {seed})"
        source = InMemorySource(scenario.schema, instance)
        output = set(plan.run(source).rows)
        truth = instance.evaluate(scenario.query)
        if scenario.query.is_boolean:
            assert bool(output) == bool(truth), f"seed {seed}"
        else:
            assert output == truth, f"seed {seed}"


class TestExample1:
    def test_plan_found_and_complete(self):
        scenario = example1(professors=20, directory_extra=30)
        result = find_best_plan(scenario.schema, scenario.query)
        assert result.found
        assert_plan_complete(scenario, result.best_plan)

    def test_plan_uses_directory_then_profinfo(self):
        scenario = example1()
        result = find_best_plan(scenario.schema, scenario.query)
        assert result.best_plan.methods_used() == ("mt_udir", "mt_prof")

    def test_constant_selection_respected(self):
        scenario = example1(lastname="garcia")
        result = find_best_plan(scenario.schema, scenario.query)
        assert result.found
        assert_plan_complete(scenario, result.best_plan)


class TestExample2:
    def test_plan_found_and_complete(self):
        scenario = example2(directory_size=15)
        result = find_best_plan(
            scenario.schema, scenario.query, SearchOptions(max_accesses=5)
        )
        assert result.found
        assert_plan_complete(scenario, result.best_plan)

    def test_four_access_chain(self):
        scenario = example2()
        result = find_best_plan(
            scenario.schema, scenario.query, SearchOptions(max_accesses=5)
        )
        assert len(result.best_plan.access_commands) == 4


class TestExample5:
    @pytest.mark.parametrize("sources", [1, 2, 3, 4])
    def test_plans_complete_for_k_sources(self, sources):
        scenario = example5(
            sources=sources, professors=6, noise_per_source=8
        )
        result = find_best_plan(
            scenario.schema,
            scenario.query,
            SearchOptions(max_accesses=sources + 1),
        )
        assert result.found
        assert_plan_complete(scenario, result.best_plan)

    def test_cost_reflects_cheapest_source(self):
        scenario = example5(sources=3, source_costs=[9.0, 1.0, 9.0])
        result = find_best_plan(
            scenario.schema, scenario.query, SearchOptions(max_accesses=4)
        )
        assert result.best_cost == pytest.approx(1.0 + 5.0)


class TestChains:
    @pytest.mark.parametrize("length", [1, 2, 3, 4])
    def test_chain_plans_complete(self, length):
        scenario = referential_chain(length, chain_size=8)
        result = find_best_plan(
            scenario.schema,
            scenario.query,
            SearchOptions(max_accesses=length + 2),
        )
        assert result.found
        assert len(result.best_plan.access_commands) == length + 1
        assert_plan_complete(scenario, result.best_plan)


class TestViewScenario:
    def test_view_plan_complete_on_materialized_views(self):
        scenario = view_stack_scenario(3)
        result = find_best_plan(
            scenario.schema, scenario.query, SearchOptions(max_accesses=4)
        )
        assert result.found
        assert_plan_complete(scenario, result.best_plan)


class TestRuntimeCostAccounting:
    def test_source_charges_match_plan_structure(self):
        scenario = example1()
        result = find_best_plan(scenario.schema, scenario.query)
        instance = scenario.instance(0)
        source = InMemorySource(scenario.schema, instance)
        result.best_plan.run(source)
        # One bulk Udirect access; one Profinfo probe per directory eid.
        assert source.invocations_of("mt_udir") == 1
        assert source.invocations_of("mt_prof") >= 1

    def test_static_cost_is_simple_sum(self):
        scenario = example1()
        result = find_best_plan(scenario.schema, scenario.query)
        cost = SimpleCostFunction.from_schema(scenario.schema)
        assert result.best_cost == pytest.approx(
            cost.plan_cost(result.best_plan)
        )
