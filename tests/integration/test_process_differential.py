"""Differential: worker-tier answers are byte-identical to in-process.

The strongest guarantee the process tier can offer is that routing a
request through spawned workers is *unobservable* in the results:
identical answer bytes for complete answers, identical sorted prefixes
for budget-truncated partial answers, and identical deterministic
fault outcomes (the fault schedule keys on (seed, method, inputs), so
a rehydrated source in a worker draws the same faults the parent
would).  spawn and fork must also agree with each other -- any
divergence means hidden state leaked across the boundary.
"""

import pytest

from repro.data.source import InMemorySource
from repro.exec.budget import ResourceBudget
from repro.exec.resilience import RetryPolicy
from repro.faults import FaultInjectingSource, FaultPolicy
from repro.planner.search import SearchOptions, find_best_plan
from repro.scenarios import example1, example5, referential_chain
from repro.service import ProcessWorkerPool, QueryService, ThreadWorkerPool

SCENARIOS = [
    ("example1", example1, 3),
    ("example5", example5, 4),
    ("chain", lambda: referential_chain(3), 6),
]


def planned(factory, budget):
    scenario = factory()
    result = find_best_plan(
        scenario.schema, scenario.query, SearchOptions(max_accesses=budget)
    )
    assert result.found, scenario.name
    return scenario, result.best_plan


def canonical(table):
    return (table.attributes, tuple(sorted(map(repr, table.rows))))


def serve_once(source, plan, worker_pool=None, **kwargs):
    with QueryService(source, workers=1, worker_pool=worker_pool) as svc:
        return svc.serve(plan, timeout=300, **kwargs)


@pytest.mark.parametrize("name,factory,budget", SCENARIOS)
def test_all_tiers_agree_on_scenarios(name, factory, budget):
    scenario, plan = planned(factory, budget)
    instance = scenario.instance(0)
    reference = canonical(
        plan.execute(InMemorySource(scenario.schema, instance))
    )
    answers = {}
    for tier, make_pool in [
        ("none", lambda s: None),
        ("thread", lambda s: ThreadWorkerPool(s, workers=2)),
        (
            "spawn",
            lambda s: ProcessWorkerPool.for_source(
                s, workers=2, start_method="spawn"
            ),
        ),
        (
            "fork",
            lambda s: ProcessWorkerPool.for_source(
                s, workers=2, start_method="fork"
            ),
        ),
    ]:
        source = InMemorySource(scenario.schema, instance)
        response = serve_once(source, plan, worker_pool=make_pool(source))
        assert response.complete, (name, tier, response.describe())
        answers[tier] = canonical(response.table)
    assert all(a == reference for a in answers.values()), (name, answers)


def test_budget_truncation_prefix_identical_across_tiers():
    scenario, plan = planned(example1, 3)
    instance = scenario.instance(0)
    reference = sorted(
        plan.execute(InMemorySource(scenario.schema, instance)).rows
    )
    assert len(reference) > 2, "need a multi-row answer to truncate"
    keep = len(reference) // 2
    prefixes = {}
    for tier in ("none", "spawn", "fork"):
        source = InMemorySource(scenario.schema, instance)
        pool = (
            None
            if tier == "none"
            else ProcessWorkerPool.for_source(
                source, workers=1, start_method=tier
            )
        )
        response = serve_once(
            source,
            plan,
            worker_pool=pool,
            budget=ResourceBudget(max_result_rows=keep),
        )
        assert response.partial, (tier, response.describe())
        assert response.truncated_rows == len(reference) - keep
        prefixes[tier] = sorted(response.table.rows)
    assert prefixes["spawn"] == prefixes["fork"] == reference[:keep]


def test_deterministic_faults_identical_across_tiers():
    """The same fault schedule fires in the worker as in the parent.

    Faults key on (seed, method, inputs), not call order, so the
    rehydrated per-worker fault wrapper reproduces the parent's
    behaviour exactly: with retries enabled, every tier converges to
    the same complete answer.
    """
    scenario, plan = planned(example1, 3)
    instance = scenario.instance(0)
    reference = canonical(
        plan.execute(InMemorySource(scenario.schema, instance))
    )
    for tier in ("none", "spawn", "fork"):
        source = FaultInjectingSource(
            InMemorySource(scenario.schema, instance),
            FaultPolicy.transient(0.3, seed=11),
        )
        pool = (
            None
            if tier == "none"
            else ProcessWorkerPool.for_source(
                source, workers=1, start_method=tier
            )
        )
        service = QueryService(
            source,
            workers=1,
            worker_pool=pool,
            retry=RetryPolicy(max_attempts=6, base_delay=0.001),
        )
        with service:
            response = service.serve(plan, timeout=300)
        assert response.complete, (tier, response.describe())
        assert canonical(response.table) == reference, tier
