"""Every CLI demo scenario runs end to end and reports completeness."""

import pytest

from repro.cli import SCENARIOS, main


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_demo_scenarios_complete(scenario, capsys):
    code = main(["demo", scenario])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "complete: yes" in out
    assert "static cost" in out
