"""The deterministic fault schedule: replayable, transient, recoverable."""

import pytest

from repro.data.instance import Instance
from repro.data.source import InMemorySource
from repro.errors import (
    AccessTimeout,
    MethodOutage,
    RateLimited,
    ResultTruncated,
    SourceUnavailable,
    TransientAccessError,
)
from repro.faults import FaultInjectingSource, FaultPolicy, VirtualClock
from repro.faults.policy import TRANSIENT_KINDS, unit_interval
from repro.schema.core import SchemaBuilder


@pytest.fixture
def schema():
    return (
        SchemaBuilder("s")
        .relation("R", 2)
        .access("mt_free", "R", inputs=[], cost=1.0)
        .access("mt_key", "R", inputs=[0], cost=2.0)
        .build()
    )


@pytest.fixture
def instance():
    return Instance(
        {"R": [("a", "1"), ("a", "2"), ("b", "3"), ("c", "4")]}
    )


def make_source(schema, instance, policy, clock=None):
    return FaultInjectingSource(
        InMemorySource(schema, instance), policy, clock=clock
    )


class TestScheduleDeterminism:
    def test_unit_interval_is_stable_and_uniformish(self):
        a = unit_interval(0, "mt", ("x",))
        assert a == unit_interval(0, "mt", ("x",))
        assert a != unit_interval(1, "mt", ("x",))
        draws = [unit_interval(0, "mt", (i,)) for i in range(500)]
        assert all(0 <= d < 1 for d in draws)
        assert 0.4 < sum(draws) / len(draws) < 0.6

    def test_same_seed_same_failures(self, schema, instance):
        def observe(seed):
            source = make_source(
                schema, instance, FaultPolicy.transient(0.5, seed=seed)
            )
            outcomes = []
            for key in ("a", "b", "c", "d"):
                try:
                    source.access("mt_key", (key,))
                    outcomes.append("ok")
                except TransientAccessError as error:
                    outcomes.append(type(error).__name__)
            return outcomes

        assert observe(7) == observe(7)

    def test_different_seeds_differ_somewhere(self, schema, instance):
        def fault_keys(seed):
            policy = FaultPolicy.transient(0.5, seed=seed)
            return {
                i
                for i in range(40)
                if policy.kind_for("mt_key", (i,)) is not None
            }

        assert fault_keys(0) != fault_keys(1)

    def test_rate_scales_fault_fraction(self, schema, instance):
        for rate in (0.0, 0.2, 0.8):
            policy = FaultPolicy.transient(rate, seed=3)
            hits = sum(
                policy.kind_for("mt_key", (i,)) is not None
                for i in range(1000)
            )
            assert abs(hits / 1000 - rate) < 0.07, rate


class TestTransientKinds:
    def test_each_kind_raises_its_error(self, schema, instance):
        by_kind = {
            "unavailable": SourceUnavailable,
            "timeout": AccessTimeout,
            "rate_limit": RateLimited,
        }
        for kind, error_cls in by_kind.items():
            policy = FaultPolicy(seed=0, **{f"{kind}_rate": 1.0})
            source = make_source(schema, instance, policy)
            with pytest.raises(error_cls) as excinfo:
                source.access("mt_key", ("a",))
            assert excinfo.value.method == "mt_key"
            assert excinfo.value.relation == "R"
            assert source.stats.injected[kind] == 1

    def test_burst_then_recovery(self, schema, instance):
        policy = FaultPolicy(seed=0, unavailable_rate=1.0, burst=3)
        source = make_source(schema, instance, policy)
        for _ in range(3):
            with pytest.raises(SourceUnavailable):
                source.access("mt_key", ("a",))
        rows = source.access("mt_key", ("a",))
        assert len(rows) == 2  # the real answer, after the burst
        assert source.stats.injected_total == 3
        assert source.stats.delivered == 1

    def test_attempt_counters_are_per_key(self, schema, instance):
        policy = FaultPolicy(seed=0, unavailable_rate=1.0, burst=1)
        source = make_source(schema, instance, policy)
        with pytest.raises(SourceUnavailable):
            source.access("mt_key", ("a",))
        # A different key is on its own attempt clock: still faults.
        with pytest.raises(SourceUnavailable):
            source.access("mt_key", ("b",))
        assert len(source.access("mt_key", ("a",))) == 2

    def test_failed_calls_are_not_logged_or_charged(self, schema, instance):
        policy = FaultPolicy(seed=0, unavailable_rate=1.0)
        source = make_source(schema, instance, policy)
        with pytest.raises(SourceUnavailable):
            source.access("mt_free", ())
        assert source.inner.total_invocations == 0
        assert len(source.access("mt_free", ())) == 4
        assert source.inner.total_invocations == 1


class TestTruncation:
    def test_truncation_carries_partial_rows_and_reaches_backend(
        self, schema, instance
    ):
        policy = FaultPolicy(seed=0, truncation_rate=1.0, truncation_keep=1)
        source = make_source(schema, instance, policy)
        with pytest.raises(ResultTruncated) as excinfo:
            source.access("mt_free", ())
        assert len(excinfo.value.rows) == 1
        assert excinfo.value.rows < frozenset(instance.tuples("R"))
        # The call reached (and was logged by) the backend: it was paid.
        assert source.inner.total_invocations == 1

    def test_retry_past_burst_gets_full_result(self, schema, instance):
        policy = FaultPolicy(seed=0, truncation_rate=1.0, truncation_keep=0)
        source = make_source(schema, instance, policy)
        with pytest.raises(ResultTruncated):
            source.access("mt_free", ())
        assert len(source.access("mt_free", ())) == 4


class TestOutages:
    def test_outage_from_start(self, schema, instance):
        source = make_source(
            schema, instance, FaultPolicy.outage("mt_key")
        )
        for _ in range(2):
            with pytest.raises(MethodOutage):
                source.access("mt_key", ("a",))
        # Other methods are unaffected.
        assert len(source.access("mt_free", ())) == 4
        assert source.stats.outage_refusals == 2

    def test_outage_after_n_invocations(self, schema, instance):
        source = make_source(
            schema, instance, FaultPolicy.outage("mt_key", after=2)
        )
        assert len(source.access("mt_key", ("a",))) == 2
        assert len(source.access("mt_key", ("b",))) == 1
        with pytest.raises(MethodOutage):
            source.access("mt_key", ("c",))


class TestLatencyAndPlumbing:
    def test_latency_advances_the_virtual_clock_only(self, schema, instance):
        clock = VirtualClock()
        policy = FaultPolicy(seed=0, latency=0.25)
        source = make_source(schema, instance, policy, clock=clock)
        source.access("mt_free", ())
        source.access("mt_key", ("a",))
        assert clock.now() == pytest.approx(0.5)
        assert source.stats.injected_latency == pytest.approx(0.5)

    def test_delegation_and_reset(self, schema, instance):
        source = make_source(schema, instance, FaultPolicy(seed=0))
        source.access("mt_free", ())
        assert source.total_invocations == 1  # delegated to the inner log
        assert source.schema.name == "s"
        source.reset_faults()
        assert source.stats.calls == 0

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            FaultPolicy(unavailable_rate=0.9, timeout_rate=0.3)
        with pytest.raises(ValueError):
            FaultPolicy(burst=0)
        with pytest.raises(ValueError):
            FaultPolicy(outages={"mt": -1})

    def test_stats_dict_round_trip(self, schema, instance):
        source = make_source(
            schema, instance, FaultPolicy(seed=0, unavailable_rate=1.0)
        )
        with pytest.raises(SourceUnavailable):
            source.access("mt_free", ())
        payload = source.stats.as_dict()
        assert payload["injected_total"] == 1
        assert set(payload["injected"]) == set(TRANSIENT_KINDS)
        assert "transient faults" in source.stats.summary()
