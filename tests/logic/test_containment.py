"""Unit tests for CQ containment and minimization (cores)."""

import pytest

from repro.logic.containment import (
    containment_mapping,
    is_contained_in,
    is_equivalent,
    minimize,
)
from repro.logic.queries import cq


class TestContainment:
    def test_reflexive(self):
        q = cq(["?x"], [("R", ["?x", "?y"])])
        assert is_contained_in(q, q)

    def test_adding_atoms_restricts(self):
        narrow = cq(["?x"], [("R", ["?x", "?y"]), ("S", ["?y"])])
        wide = cq(["?x"], [("R", ["?x", "?y"])])
        assert is_contained_in(narrow, wide)
        assert not is_contained_in(wide, narrow)

    def test_constant_specialization(self):
        specific = cq(["?x"], [("R", ["?x", "a"])])
        general = cq(["?x"], [("R", ["?x", "?y"])])
        assert is_contained_in(specific, general)
        assert not is_contained_in(general, specific)

    def test_incomparable_relations(self):
        q1 = cq([], [("R", ["?x"])])
        q2 = cq([], [("S", ["?x"])])
        assert not is_contained_in(q1, q2)
        assert not is_contained_in(q2, q1)

    def test_head_arity_mismatch(self):
        q1 = cq(["?x"], [("R", ["?x", "?y"])])
        q2 = cq(["?x", "?y"], [("R", ["?x", "?y"])])
        assert not is_contained_in(q1, q2)

    def test_containment_mapping_witness(self):
        narrow = cq(["?x"], [("R", ["?x", "?y"]), ("S", ["?y"])])
        wide = cq(["?x"], [("R", ["?x", "?y"])])
        assert containment_mapping(wide, narrow) is not None

    def test_path_queries(self):
        # Length-2 path is contained in length-1 pattern.
        p2 = cq(
            ["?x"],
            [("E", ["?x", "?y"]), ("E", ["?y", "?z"])],
        )
        p1 = cq(["?x"], [("E", ["?x", "?y"])])
        assert is_contained_in(p2, p1)
        assert not is_contained_in(p1, p2)

    def test_equivalence_of_renamed_copies(self):
        q1 = cq(["?x"], [("R", ["?x", "?y"])])
        q2 = cq(["?a"], [("R", ["?a", "?b"])])
        assert is_equivalent(q1, q2)


class TestMinimize:
    def test_redundant_atom_removed(self):
        query = cq(
            ["?x"],
            [("R", ["?x", "?y"]), ("R", ["?x", "?z"])],
        )
        core = minimize(query)
        assert len(core.atoms) == 1
        assert is_equivalent(query, core)

    def test_core_of_already_minimal_query(self):
        query = cq(["?x"], [("R", ["?x", "?y"]), ("S", ["?y"])])
        assert minimize(query).atoms == query.atoms

    def test_constant_blocks_folding(self):
        query = cq(
            ["?x"],
            [("R", ["?x", "a"]), ("R", ["?x", "?z"])],
        )
        core = minimize(query)
        # The second atom folds onto the first (z -> a), not vice versa.
        assert len(core.atoms) == 1
        assert core.atoms[0].terms[1].value == "a"

    def test_triangle_vs_edge(self):
        # A boolean triangle query is its own core.
        triangle = cq(
            [],
            [
                ("E", ["?x", "?y"]),
                ("E", ["?y", "?z"]),
                ("E", ["?z", "?x"]),
            ],
        )
        assert len(minimize(triangle).atoms) == 3

    def test_path_folds_to_loop_free_core(self):
        # exists x y z: E(x,y), E(y,z) with boolean head has a 1-atom core
        # only if it maps into itself; it does not (no loop), so stays 2.
        path = cq([], [("E", ["?x", "?y"]), ("E", ["?y", "?z"])])
        assert len(minimize(path).atoms) == 2

    def test_head_variables_protected(self):
        query = cq(
            ["?x", "?y"],
            [("R", ["?x", "?y"]), ("R", ["?x", "?z"])],
        )
        core = minimize(query)
        assert len(core.atoms) == 2 or core.head == (
            query.head[0],
            query.head[1],
        )
        # The head-preserving fold exists (z -> y), so 1 atom suffices.
        assert len(core.atoms) == 1
