"""Tests for constraint analysis: weak acyclicity and classification."""

import pytest

from repro.logic.analysis import (
    analyze_constraints,
    is_weakly_acyclic,
    position_dependency_graph,
)
from repro.logic.dependencies import parse_tgd


class TestPositionGraph:
    def test_normal_edge_for_copied_variable(self):
        graph = position_dependency_graph([parse_tgd("R(x) -> S(x)")])
        assert graph.has_edge(("R", 0), ("S", 0))
        assert not graph[("R", 0)][("S", 0)]["special"]

    def test_special_edge_for_existential(self):
        graph = position_dependency_graph([parse_tgd("R(x) -> S(x, y)")])
        assert graph.has_edge(("R", 0), ("S", 1))
        assert graph[("R", 0)][("S", 1)]["special"]

    def test_non_frontier_body_variable_no_edges(self):
        graph = position_dependency_graph([parse_tgd("R(x, z) -> S(x)")])
        assert not graph.has_edge(("R", 1), ("S", 0))


class TestWeakAcyclicity:
    def test_acyclic_full_tgds(self):
        assert is_weakly_acyclic(
            [parse_tgd("R(x) -> S(x)"), parse_tgd("S(x) -> T(x)")]
        )

    def test_cycle_without_existentials_ok(self):
        # R -> S -> R is a cycle, but with no special edge: WA.
        assert is_weakly_acyclic(
            [parse_tgd("R(x) -> S(x)"), parse_tgd("S(x) -> R(x)")]
        )

    def test_self_special_loop_not_wa(self):
        # The classic diverging ID: R(x,y) -> exists z R(y,z).
        assert not is_weakly_acyclic([parse_tgd("R(x, y) -> R(y, z)")])

    def test_two_rule_special_cycle_not_wa(self):
        assert not is_weakly_acyclic(
            [
                parse_tgd("P(x) -> E(x, y)"),
                parse_tgd("E(x, y) -> P(y)"),
            ]
        )

    def test_existential_into_sink_is_wa(self):
        # Existentials that never flow back are fine.
        assert is_weakly_acyclic(
            [parse_tgd("R(x) -> S(x, y)"), parse_tgd("S(x, y) -> T(x)")]
        )

    def test_example_schemas_are_wa(self):
        from repro.scenarios import example1, example2, example5

        for factory in (example1, example2, example5):
            schema = factory().schema
            assert is_weakly_acyclic(schema.constraints)

    def test_empty_set_trivially_wa(self):
        assert is_weakly_acyclic([])


class TestAnalyzeConstraints:
    def test_census(self):
        analysis = analyze_constraints(
            [
                parse_tgd("R(x, y) -> S(y, x)"),  # full ID... no: full
                parse_tgd("R(x, y) -> T(x, z)"),
            ]
        )
        assert analysis.total == 2
        assert analysis.full_tgds == 1
        assert analysis.guarded
        assert analysis.weakly_acyclic
        assert analysis.chase_terminates

    def test_describe_mentions_properties(self):
        analysis = analyze_constraints([parse_tgd("R(x) -> S(x)")])
        text = analysis.describe()
        assert "weakly acyclic" in text
        assert "guarded" in text

    def test_non_wa_flagged(self):
        analysis = analyze_constraints([parse_tgd("R(x, y) -> R(y, z)")])
        assert not analysis.weakly_acyclic
        assert not analysis.chase_terminates


class TestPolicySelection:
    def test_wa_schema_gets_plain_policy(self):
        from repro.planner.answerability import default_policy_for
        from repro.scenarios import example2

        policy = default_policy_for(example2().schema)
        assert policy.blocking is None
        assert policy.max_depth is None

    def test_cyclic_guarded_gets_blocking(self):
        from repro.planner.answerability import default_policy_for
        from repro.schema.core import SchemaBuilder

        schema = (
            SchemaBuilder("s")
            .relation("R", 2)
            .tgd("R(x, y) -> R(y, z)")
            .build()
        )
        policy = default_policy_for(schema)
        assert policy.blocking is not None
