"""Unit tests for the homomorphism search and fact index."""

import pytest

from repro.logic.atoms import Atom, Substitution
from repro.logic.homomorphisms import (
    FactIndex,
    extend_homomorphism,
    find_homomorphism,
    find_homomorphisms,
    has_homomorphism,
)
from repro.logic.terms import Constant, Null, Variable


X, Y, Z = Variable("x"), Variable("y"), Variable("z")
A, B, C = Constant("a"), Constant("b"), Constant("c")
N1, N2 = Null("n1"), Null("n2")


def index_of(*facts):
    return FactIndex(facts)


class TestFactIndex:
    def test_add_and_contains(self):
        index = FactIndex()
        fact = Atom("R", (A, B))
        assert index.add(fact)
        assert fact in index
        assert not index.add(fact)  # duplicate
        assert len(index) == 1

    def test_facts_of_relation(self):
        index = index_of(Atom("R", (A,)), Atom("S", (B,)))
        assert index.facts_of("R") == frozenset({Atom("R", (A,))})
        assert index.facts_of("T") == frozenset()

    def test_copy_is_independent(self):
        index = index_of(Atom("R", (A,)))
        clone = index.copy()
        clone.add(Atom("R", (B,)))
        assert len(index) == 1
        assert len(clone) == 2

    def test_candidates_uses_position_index(self):
        index = index_of(
            Atom("R", (A, B)), Atom("R", (A, C)), Atom("R", (B, C))
        )
        binding = Substitution({X: A})
        candidates = set(index.candidates(Atom("R", (X, Y)), binding, False))
        assert candidates == {Atom("R", (A, B)), Atom("R", (A, C))}

    def test_candidates_unknown_constant_empty(self):
        index = index_of(Atom("R", (A,)))
        assert list(
            index.candidates(Atom("R", (B,)), Substitution(), False)
        ) == []


class TestExtendHomomorphism:
    def test_binds_variables(self):
        result = extend_homomorphism(
            Atom("R", (X, Y)), Atom("R", (A, B)), Substitution()
        )
        assert result is not None
        assert result[X] == A and result[Y] == B

    def test_conflicting_binding_fails(self):
        binding = Substitution({X: B})
        assert (
            extend_homomorphism(Atom("R", (X,)), Atom("R", (A,)), binding)
            is None
        )

    def test_repeated_variable_must_agree(self):
        assert (
            extend_homomorphism(
                Atom("R", (X, X)), Atom("R", (A, B)), Substitution()
            )
            is None
        )
        ok = extend_homomorphism(
            Atom("R", (X, X)), Atom("R", (A, A)), Substitution()
        )
        assert ok is not None

    def test_constants_are_rigid(self):
        assert (
            extend_homomorphism(Atom("R", (A,)), Atom("R", (B,)), Substitution())
            is None
        )

    def test_nulls_rigid_by_default(self):
        assert (
            extend_homomorphism(
                Atom("R", (N1,)), Atom("R", (A,)), Substitution()
            )
            is None
        )

    def test_nulls_mappable_when_requested(self):
        result = extend_homomorphism(
            Atom("R", (N1,)), Atom("R", (A,)), Substitution(), map_nulls=True
        )
        assert result is not None
        assert result[N1] == A

    def test_relation_mismatch(self):
        assert (
            extend_homomorphism(Atom("R", (X,)), Atom("S", (A,)), Substitution())
            is None
        )


class TestFindHomomorphisms:
    def test_single_atom_all_matches(self):
        index = index_of(Atom("R", (A,)), Atom("R", (B,)))
        homs = list(find_homomorphisms([Atom("R", (X,))], index))
        assert {h[X] for h in homs} == {A, B}

    def test_join_via_shared_variable(self):
        index = index_of(
            Atom("R", (A, B)),
            Atom("S", (B, C)),
            Atom("S", (A, C)),
        )
        homs = list(
            find_homomorphisms([Atom("R", (X, Y)), Atom("S", (Y, Z))], index)
        )
        assert len(homs) == 1
        assert homs[0][Y] == B

    def test_empty_pattern_yields_identity(self):
        homs = list(find_homomorphisms([], index_of()))
        assert len(homs) == 1

    def test_respects_seed_binding(self):
        index = index_of(Atom("R", (A,)), Atom("R", (B,)))
        homs = list(
            find_homomorphisms(
                [Atom("R", (X,))], index, Substitution({X: B})
            )
        )
        assert len(homs) == 1
        assert homs[0][X] == B

    def test_no_match(self):
        assert not has_homomorphism([Atom("T", (X,))], index_of(Atom("R", (A,))))

    def test_find_homomorphism_returns_first_or_none(self):
        index = index_of(Atom("R", (A,)))
        assert find_homomorphism([Atom("R", (X,))], index) is not None
        assert find_homomorphism([Atom("S", (X,))], index) is None

    def test_cartesian_product_count(self):
        index = index_of(
            Atom("R", (A,)), Atom("R", (B,)), Atom("S", (A,)), Atom("S", (B,))
        )
        homs = list(
            find_homomorphisms([Atom("R", (X,)), Atom("S", (Y,))], index)
        )
        assert len(homs) == 4

    def test_null_pattern_maps_into_constants(self):
        index = index_of(Atom("R", (A, B)))
        homs = list(
            find_homomorphisms(
                [Atom("R", (N1, N2))], index, map_nulls=True
            )
        )
        assert len(homs) == 1
        assert homs[0][N1] == A
