"""Unit tests for the homomorphism search and fact index."""

import pytest

from repro.logic.atoms import Atom, Substitution
from repro.logic.homomorphisms import (
    FactIndex,
    HomStats,
    extend_homomorphism,
    find_homomorphism,
    find_homomorphisms,
    find_homomorphisms_through,
    has_homomorphism,
)
from repro.logic.terms import Constant, Null, Variable


X, Y, Z = Variable("x"), Variable("y"), Variable("z")
A, B, C = Constant("a"), Constant("b"), Constant("c")
N1, N2 = Null("n1"), Null("n2")


def index_of(*facts):
    return FactIndex(facts)


class TestFactIndex:
    def test_add_and_contains(self):
        index = FactIndex()
        fact = Atom("R", (A, B))
        assert index.add(fact)
        assert fact in index
        assert not index.add(fact)  # duplicate
        assert len(index) == 1

    def test_facts_of_relation(self):
        index = index_of(Atom("R", (A,)), Atom("S", (B,)))
        assert index.facts_of("R") == frozenset({Atom("R", (A,))})
        assert index.facts_of("T") == frozenset()

    def test_copy_is_independent(self):
        index = index_of(Atom("R", (A,)))
        clone = index.copy()
        clone.add(Atom("R", (B,)))
        assert len(index) == 1
        assert len(clone) == 2

    def test_candidates_uses_position_index(self):
        index = index_of(
            Atom("R", (A, B)), Atom("R", (A, C)), Atom("R", (B, C))
        )
        binding = Substitution({X: A})
        candidates = set(index.candidates(Atom("R", (X, Y)), binding, False))
        assert candidates == {Atom("R", (A, B)), Atom("R", (A, C))}

    def test_candidates_unknown_constant_empty(self):
        index = index_of(Atom("R", (A,)))
        assert list(
            index.candidates(Atom("R", (B,)), Substitution(), False)
        ) == []


class TestExtendHomomorphism:
    def test_binds_variables(self):
        result = extend_homomorphism(
            Atom("R", (X, Y)), Atom("R", (A, B)), Substitution()
        )
        assert result is not None
        assert result[X] == A and result[Y] == B

    def test_conflicting_binding_fails(self):
        binding = Substitution({X: B})
        assert (
            extend_homomorphism(Atom("R", (X,)), Atom("R", (A,)), binding)
            is None
        )

    def test_repeated_variable_must_agree(self):
        assert (
            extend_homomorphism(
                Atom("R", (X, X)), Atom("R", (A, B)), Substitution()
            )
            is None
        )
        ok = extend_homomorphism(
            Atom("R", (X, X)), Atom("R", (A, A)), Substitution()
        )
        assert ok is not None

    def test_constants_are_rigid(self):
        assert (
            extend_homomorphism(Atom("R", (A,)), Atom("R", (B,)), Substitution())
            is None
        )

    def test_nulls_rigid_by_default(self):
        assert (
            extend_homomorphism(
                Atom("R", (N1,)), Atom("R", (A,)), Substitution()
            )
            is None
        )

    def test_nulls_mappable_when_requested(self):
        result = extend_homomorphism(
            Atom("R", (N1,)), Atom("R", (A,)), Substitution(), map_nulls=True
        )
        assert result is not None
        assert result[N1] == A

    def test_relation_mismatch(self):
        assert (
            extend_homomorphism(Atom("R", (X,)), Atom("S", (A,)), Substitution())
            is None
        )


class TestFindHomomorphisms:
    def test_single_atom_all_matches(self):
        index = index_of(Atom("R", (A,)), Atom("R", (B,)))
        homs = list(find_homomorphisms([Atom("R", (X,))], index))
        assert {h[X] for h in homs} == {A, B}

    def test_join_via_shared_variable(self):
        index = index_of(
            Atom("R", (A, B)),
            Atom("S", (B, C)),
            Atom("S", (A, C)),
        )
        homs = list(
            find_homomorphisms([Atom("R", (X, Y)), Atom("S", (Y, Z))], index)
        )
        assert len(homs) == 1
        assert homs[0][Y] == B

    def test_empty_pattern_yields_identity(self):
        homs = list(find_homomorphisms([], index_of()))
        assert len(homs) == 1

    def test_respects_seed_binding(self):
        index = index_of(Atom("R", (A,)), Atom("R", (B,)))
        homs = list(
            find_homomorphisms(
                [Atom("R", (X,))], index, Substitution({X: B})
            )
        )
        assert len(homs) == 1
        assert homs[0][X] == B

    def test_no_match(self):
        assert not has_homomorphism([Atom("T", (X,))], index_of(Atom("R", (A,))))

    def test_find_homomorphism_returns_first_or_none(self):
        index = index_of(Atom("R", (A,)))
        assert find_homomorphism([Atom("R", (X,))], index) is not None
        assert find_homomorphism([Atom("S", (X,))], index) is None

    def test_cartesian_product_count(self):
        index = index_of(
            Atom("R", (A,)), Atom("R", (B,)), Atom("S", (A,)), Atom("S", (B,))
        )
        homs = list(
            find_homomorphisms([Atom("R", (X,)), Atom("S", (Y,))], index)
        )
        assert len(homs) == 4

    def test_null_pattern_maps_into_constants(self):
        index = index_of(Atom("R", (A, B)))
        homs = list(
            find_homomorphisms(
                [Atom("R", (N1, N2))], index, map_nulls=True
            )
        )
        assert len(homs) == 1
        assert homs[0][N1] == A


class TestGenerationLog:
    def test_generation_and_facts_since(self):
        index = FactIndex()
        assert index.generation == 0
        index.add(Atom("R", (A,)))
        index.add(Atom("R", (B,)))
        assert index.generation == 2
        assert index.facts_since(0) == (Atom("R", (A,)), Atom("R", (B,)))
        assert index.facts_since(1) == (Atom("R", (B,)),)
        assert index.facts_since(2) == ()

    def test_duplicates_do_not_advance_generation(self):
        index = index_of(Atom("R", (A,)))
        index.add(Atom("R", (A,)))
        assert index.generation == 1

    def test_facts_since_is_stable_snapshot(self):
        index = index_of(Atom("R", (A,)))
        delta = index.facts_since(0)
        index.add(Atom("R", (B,)))
        assert delta == (Atom("R", (A,)),)

    def test_copy_preserves_log(self):
        index = index_of(Atom("R", (A,)))
        clone = index.copy()
        clone.add(Atom("R", (B,)))
        assert clone.facts_since(0) == (Atom("R", (A,)), Atom("R", (B,)))
        assert index.facts_since(0) == (Atom("R", (A,)),)


class TestFactsOfCaching:
    def test_cached_view_shared_between_calls(self):
        index = index_of(Atom("R", (A,)))
        assert index.facts_of("R") is index.facts_of("R")

    def test_cache_invalidated_on_add(self):
        index = index_of(Atom("R", (A,)))
        before = index.facts_of("R")
        index.add(Atom("R", (B,)))
        after = index.facts_of("R")
        assert before == frozenset({Atom("R", (A,))})
        assert after == frozenset({Atom("R", (A,)), Atom("R", (B,))})

    def test_size_of(self):
        index = index_of(Atom("R", (A,)), Atom("R", (B,)), Atom("S", (A,)))
        assert index.size_of("R") == 2
        assert index.size_of("S") == 1
        assert index.size_of("T") == 0


class TestSnapshotCandidates:
    def test_snapshot_returns_immutable_copy(self):
        index = index_of(Atom("R", (A,)))
        snap = index.candidates(Atom("R", (X,)), Substitution(), False, True)
        assert isinstance(snap, tuple)
        index.add(Atom("R", (B,)))
        assert snap == (Atom("R", (A,)),)

    def test_streaming_search_survives_insertion(self):
        index = index_of(Atom("R", (A,)), Atom("R", (B,)))
        seen = []
        for hom in find_homomorphisms(
            [Atom("R", (X,))], index, snapshot=True
        ):
            seen.append(hom[X])
            index.add(Atom("R", (C,)))  # mutate mid-stream: must not blow up
        assert set(seen) == {A, B}


class TestFindHomomorphismsThrough:
    def test_pivot_restricts_matches(self):
        index = index_of(Atom("R", (A, B)), Atom("R", (B, C)))
        homs = list(
            find_homomorphisms_through(
                [Atom("R", (X, Y))], index, Atom("R", (X, Y)), Atom("R", (B, C))
            )
        )
        assert len(homs) == 1
        assert homs[0][X] == B and homs[0][Y] == C

    def test_pivot_joins_remaining_atoms(self):
        index = index_of(
            Atom("R", (A, B)), Atom("S", (B, C)), Atom("S", (B, A))
        )
        pattern = [Atom("R", (X, Y)), Atom("S", (Y, Z))]
        homs = list(
            find_homomorphisms_through(
                pattern, index, pattern[0], Atom("R", (A, B))
            )
        )
        assert {h[Z] for h in homs} == {A, C}

    def test_pivot_clash_yields_nothing(self):
        index = index_of(Atom("R", (A, A)))
        pattern = [Atom("R", (X, X))]
        homs = list(
            find_homomorphisms_through(
                pattern, index, pattern[0], Atom("R", (A, A))
            )
        )
        assert len(homs) == 1
        clashing = list(
            find_homomorphisms_through(
                [Atom("R", (X, X))],
                index_of(Atom("R", (A, B))),
                Atom("R", (X, X)),
                Atom("R", (A, B)),
            )
        )
        assert clashing == []

    def test_pivot_must_be_a_pattern_atom(self):
        index = index_of(Atom("R", (A,)))
        with pytest.raises(ValueError):
            list(
                find_homomorphisms_through(
                    [Atom("R", (X,))], index, Atom("S", (X,)), Atom("R", (A,))
                )
            )

    def test_agrees_with_unrestricted_search(self):
        index = index_of(
            Atom("R", (A, B)), Atom("R", (B, C)), Atom("S", (B, C))
        )
        pattern = [Atom("R", (X, Y)), Atom("S", (Y, Z))]
        unrestricted = {
            tuple(sorted(h.items(), key=repr))
            for h in find_homomorphisms(pattern, index)
        }
        through = set()
        for atom in pattern:
            for fact in index.facts_of(atom.relation):
                for h in find_homomorphisms_through(
                    pattern, index, atom, fact
                ):
                    through.add(tuple(sorted(h.items(), key=repr)))
        assert through == unrestricted


class TestHomStats:
    def test_counts_candidate_scans_and_backtracks(self):
        index = index_of(Atom("R", (A, B)), Atom("R", (B, C)))
        stats = HomStats()
        # Both positions unbound: the full bucket is scanned, and the
        # repeated variable makes every candidate clash.
        list(find_homomorphisms([Atom("R", (X, X))], index, stats=stats))
        assert stats.candidates_scanned == 2
        assert stats.backtracks == 2

    def test_absorb_accumulates(self):
        left = HomStats(candidates_scanned=3, backtracks=1)
        left.absorb(HomStats(candidates_scanned=2, backtracks=2))
        assert left.candidates_scanned == 5
        assert left.backtracks == 3


class TestFactIndexFork:
    def test_fork_shares_prefix_but_not_writes(self):
        index = index_of(Atom("R", (A, B)))
        clone = index.fork()
        assert clone.add(Atom("R", (B, C)))
        assert Atom("R", (B, C)) not in index
        assert index.add(Atom("S", (A,)))
        assert Atom("S", (A,)) not in clone

    def test_fork_generation_and_facts_since(self):
        index = index_of(Atom("R", (A, B)))
        watermark = index.generation
        clone = index.fork()
        assert clone.generation == watermark
        clone.add(Atom("R", (B, C)))
        clone.add(Atom("S", (A,)))
        assert clone.facts_since(watermark) == (
            Atom("R", (B, C)),
            Atom("S", (A,)),
        )
        assert index.facts_since(watermark) == ()

    def test_facts_since_walks_prefix_segments(self):
        index = FactIndex()
        index.add(Atom("R", (A,)))
        watermark = index.generation
        index.add(Atom("R", (B,)))
        middle = index.fork()
        middle.add(Atom("R", (C,)))
        leaf = middle.fork()
        leaf.add(Atom("S", (A,)))
        assert leaf.facts_since(watermark) == (
            Atom("R", (B,)),
            Atom("R", (C,)),
            Atom("S", (A,)),
        )

    def test_fork_of_fork_isolated_buckets(self):
        root = index_of(Atom("R", (A, B)))
        middle = root.fork()
        middle.add(Atom("R", (A, C)))
        leaf = middle.fork()
        leaf.add(Atom("R", (A, A)))
        assert root.facts_of("R") == frozenset({Atom("R", (A, B))})
        assert middle.facts_of("R") == frozenset(
            {Atom("R", (A, B)), Atom("R", (A, C))}
        )
        assert len(leaf.facts_of("R")) == 3

    def test_homomorphisms_work_on_forks(self):
        index = index_of(Atom("R", (A, B)))
        clone = index.fork()
        clone.add(Atom("R", (B, C)))
        pattern = [Atom("R", (X, Y)), Atom("R", (Y, Z))]
        assert has_homomorphism(pattern, clone)
        assert not has_homomorphism(pattern, index)


class TestFactsWith:
    def test_lookup_by_relation_position_term(self):
        index = index_of(
            Atom("R", (A, B)), Atom("R", (A, C)), Atom("R", (B, A))
        )
        assert set(index.facts_with("R", 0, A)) == {
            Atom("R", (A, B)),
            Atom("R", (A, C)),
        }
        assert index.facts_with("R", 1, A) == (Atom("R", (B, A)),)

    def test_missing_key_returns_empty(self):
        index = index_of(Atom("R", (A, B)))
        assert index.facts_with("R", 0, C) == ()
        assert index.facts_with("S", 0, A) == ()

    def test_sees_facts_through_fork(self):
        index = index_of(Atom("R", (A, B)))
        clone = index.fork()
        clone.add(Atom("R", (A, C)))
        assert set(clone.facts_with("R", 0, A)) == {
            Atom("R", (A, B)),
            Atom("R", (A, C)),
        }
        assert index.facts_with("R", 0, A) == (Atom("R", (A, B)),)
