"""Property-based tests (hypothesis) for the logic substrate.

Invariants exercised:

* substitution composition is associative in its action on atoms,
* canonical-database homomorphism: every CQ maps into its own canonical db,
* containment is reflexive and transitive on random CQs,
* the core is equivalent to, and no larger than, the original query,
* homomorphism search agrees with brute-force enumeration on small inputs.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings, strategies as st

from repro.logic.atoms import Atom, Substitution
from repro.logic.containment import is_contained_in, is_equivalent, minimize
from repro.logic.homomorphisms import FactIndex, find_homomorphisms
from repro.logic.queries import ConjunctiveQuery
from repro.logic.terms import Constant, Variable


VARIABLES = [Variable(n) for n in "xyzuvw"]
CONSTANTS = [Constant(c) for c in "abc"]
RELATIONS = ["R", "S", "T"]

terms = st.sampled_from(VARIABLES + CONSTANTS)
relation_names = st.sampled_from(RELATIONS)


@st.composite
def atoms(draw, max_arity: int = 3):
    relation = draw(relation_names)
    arity = draw(st.integers(1, max_arity))
    return Atom(f"{relation}{arity}", tuple(draw(terms) for _ in range(arity)))


@st.composite
def queries(draw, max_atoms: int = 4):
    body = tuple(
        draw(atoms()) for _ in range(draw(st.integers(1, max_atoms)))
    )
    body_vars = sorted(
        {v for atom in body for v in atom.variables()},
        key=lambda v: v.name,
    )
    if body_vars:
        head_count = draw(st.integers(0, min(2, len(body_vars))))
        head = tuple(body_vars[:head_count])
    else:
        head = ()
    return ConjunctiveQuery(head, body, name="H")


@st.composite
def substitutions(draw):
    mapping = {}
    for variable in VARIABLES:
        if draw(st.booleans()):
            mapping[variable] = draw(terms)
    return Substitution(mapping)


@given(atoms(), substitutions(), substitutions())
def test_substitution_composition_acts_correctly(atom, s1, s2):
    composed = s1.compose(s2)
    stepwise = atom.apply(s1).apply(s2)
    assert atom.apply(composed) == stepwise


@given(queries())
def test_query_maps_into_own_canonical_database(query):
    facts, frozen = query.canonical_database()
    index = FactIndex(facts)
    seed = Substitution({v: frozen[v] for v in query.head})
    homs = list(find_homomorphisms(list(query.atoms), index, seed))
    assert homs, "a CQ must match its own canonical database"


@given(queries())
def test_containment_reflexive(query):
    assert is_contained_in(query, query)


@given(queries(), queries(), queries())
@settings(max_examples=40, deadline=None)
def test_containment_transitive(q1, q2, q3):
    if is_contained_in(q1, q2) and is_contained_in(q2, q3):
        assert is_contained_in(q1, q3)


@given(queries())
@settings(max_examples=60, deadline=None)
def test_core_equivalent_and_no_larger(query):
    core = minimize(query)
    assert len(core.atoms) <= len(query.atoms)
    assert is_equivalent(query, core)


@given(queries())
@settings(max_examples=60, deadline=None)
def test_core_is_idempotent(query):
    core = minimize(query)
    again = minimize(core)
    assert len(again.atoms) == len(core.atoms)


@given(st.lists(atoms(max_arity=2), min_size=1, max_size=4))
@settings(max_examples=40, deadline=None)
def test_homomorphism_search_matches_bruteforce(pattern_atoms):
    """Search results equal brute-force enumeration over all bindings."""
    facts = [
        Atom("R2", (Constant("a"), Constant("b"))),
        Atom("R2", (Constant("b"), Constant("a"))),
        Atom("S1", (Constant("a"),)),
        Atom("T2", (Constant("a"), Constant("a"))),
        Atom("R1", (Constant("b"),)),
        Atom("S2", (Constant("a"), Constant("c"))),
        Atom("T1", (Constant("c"),)),
    ]
    index = FactIndex(facts)
    found = {
        frozenset(
            (k, v)
            for k, v in hom.items()
            if isinstance(k, Variable)
        )
        for hom in find_homomorphisms(pattern_atoms, index)
    }
    variables = sorted(
        {v for atom in pattern_atoms for v in atom.variables()},
        key=lambda v: v.name,
    )
    domain = [Constant(c) for c in "abc"]
    brute = set()
    for combo in itertools.product(domain, repeat=len(variables)):
        binding = Substitution(dict(zip(variables, combo)))
        if all(atom.apply(binding) in index for atom in pattern_atoms):
            brute.add(frozenset(zip(variables, combo)))
    assert found == brute
