"""Unit tests for TGDs: classification, parsing, renaming."""

import pytest

from repro.logic.atoms import Atom
from repro.logic.dependencies import (
    DependencyError,
    TGD,
    inclusion_dependency,
    parse_tgd,
)
from repro.logic.terms import Constant, Variable


X, Y, Z = Variable("x"), Variable("y"), Variable("z")


class TestTGDBasics:
    def test_frontier_and_existentials(self):
        tgd = TGD(
            (Atom("R", (X, Y)),),
            (Atom("S", (X, Z)),),
        )
        assert tgd.frontier() == {X}
        assert tgd.existential_variables() == {Z}

    def test_full_tgd(self):
        tgd = TGD((Atom("R", (X, Y)),), (Atom("S", (Y, X)),))
        assert tgd.is_full

    def test_empty_body_rejected(self):
        with pytest.raises(DependencyError):
            TGD((), (Atom("S", (X,)),))

    def test_empty_head_rejected(self):
        with pytest.raises(DependencyError):
            TGD((Atom("R", (X,)),), ())

    def test_default_name(self):
        tgd = TGD((Atom("R", (X,)),), (Atom("S", (X,)),))
        assert tgd.name == "R=>S"


class TestGuardedness:
    def test_single_atom_body_is_guarded(self):
        tgd = TGD((Atom("R", (X, Y)),), (Atom("S", (X,)),))
        assert tgd.is_guarded
        assert tgd.guard == Atom("R", (X, Y))

    def test_guard_must_cover_all_body_variables(self):
        tgd = TGD(
            (Atom("R", (X, Y)), Atom("S", (Y, Z))),
            (Atom("T", (X,)),),
        )
        assert not tgd.is_guarded
        assert tgd.guard is None

    def test_wide_guard(self):
        tgd = TGD(
            (Atom("G", (X, Y, Z)), Atom("S", (Y, Z))),
            (Atom("T", (X,)),),
        )
        assert tgd.is_guarded


class TestInclusionDependencies:
    def test_classification(self):
        tgd = TGD((Atom("R", (X, Y)),), (Atom("S", (Y, Z)),))
        assert tgd.is_inclusion_dependency

    def test_repeated_variable_not_id(self):
        tgd = TGD((Atom("R", (X, X)),), (Atom("S", (X,)),))
        assert not tgd.is_inclusion_dependency

    def test_constant_not_id(self):
        tgd = TGD((Atom("R", (X, Constant("a"))),), (Atom("S", (X,)),))
        assert not tgd.is_inclusion_dependency

    def test_builder(self):
        tgd = inclusion_dependency(
            "Direct1", [2], "Ids", [0],
            source_arity=3, target_arity=1,
        )
        assert tgd.is_inclusion_dependency
        assert tgd.body[0].relation == "Direct1"
        assert tgd.head[0].relation == "Ids"
        # Position 2 of the source is exported to position 0 of the target.
        assert tgd.body[0].terms[2] == tgd.head[0].terms[0]

    def test_builder_rejects_bad_positions(self):
        with pytest.raises(DependencyError):
            inclusion_dependency("R", [5], "S", [0], 2, 1)

    def test_builder_rejects_length_mismatch(self):
        with pytest.raises(DependencyError):
            inclusion_dependency("R", [0, 1], "S", [0], 2, 1)


class TestParsing:
    def test_parse_simple(self):
        tgd = parse_tgd("R(x, y) -> S(y)")
        assert tgd.body == (Atom("R", (X, Y)),)
        assert tgd.head == (Atom("S", (Y,)),)

    def test_parse_multi_atom(self):
        tgd = parse_tgd("R(x) & S(x, y) -> T(y) & U(x, y)")
        assert len(tgd.body) == 2
        assert len(tgd.head) == 2

    def test_parse_constants(self):
        tgd = parse_tgd("R(x, 'smith') -> S(x, 3)")
        assert tgd.body[0].terms[1] == Constant("smith")
        assert tgd.head[0].terms[1] == Constant(3)

    def test_parse_missing_arrow(self):
        with pytest.raises(DependencyError):
            parse_tgd("R(x) S(x)")

    def test_parse_custom_name(self):
        assert parse_tgd("R(x) -> S(x)", name="rho").name == "rho"


class TestRenaming:
    def test_rename_relations_both_sides(self):
        tgd = parse_tgd("R(x) -> S(x)")
        renamed = tgd.rename_relations({"R": "InfAcc_R", "S": "InfAcc_S"})
        assert renamed.body[0].relation == "InfAcc_R"
        assert renamed.head[0].relation == "InfAcc_S"

    def test_rename_preserves_terms(self):
        tgd = parse_tgd("R(x, y) -> S(y, z)")
        renamed = tgd.rename_relations({"R": "RR"})
        assert renamed.body[0].terms == tgd.body[0].terms
