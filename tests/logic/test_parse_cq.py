"""Tests for the Datalog-style CQ text parser."""

import pytest

from repro.logic.queries import QueryError, parse_cq
from repro.logic.terms import Constant, Variable


class TestParseCQ:
    def test_basic_query(self):
        query = parse_cq("q(phone) :- Direct2(uname, addr, phone)")
        assert query.name == "q"
        assert query.head == (Variable("phone"),)
        assert query.atoms[0].relation == "Direct2"

    def test_multi_atom_body(self):
        query = parse_cq("q(x) :- R(x, y), S(y, z)")
        assert len(query.atoms) == 2
        assert query.existential_variables() == {
            Variable("y"),
            Variable("z"),
        }

    def test_boolean_with_empty_head(self):
        query = parse_cq("q() :- R(x)")
        assert query.is_boolean

    def test_boolean_shorthand_without_head(self):
        query = parse_cq("R(x), S(x)")
        assert query.is_boolean
        assert len(query.atoms) == 2

    def test_quoted_string_constant(self):
        query = parse_cq("q(e) :- Profinfo(e, o, 'smith')")
        assert query.atoms[0].terms[2] == Constant("smith")

    def test_double_quoted_constant(self):
        query = parse_cq('q(e) :- R(e, "tag")')
        assert query.atoms[0].terms[1] == Constant("tag")

    def test_integer_constant(self):
        query = parse_cq("q(x) :- R(x, 42)")
        assert query.atoms[0].terms[1] == Constant(42)

    def test_head_variable_must_occur(self):
        with pytest.raises(QueryError):
            parse_cq("q(zzz) :- R(x)")

    def test_empty_body_rejected(self):
        with pytest.raises(QueryError):
            parse_cq("q(x) :- ")

    def test_malformed_head_rejected(self):
        with pytest.raises(QueryError):
            parse_cq("just text :- R(x)")

    def test_repeated_variable(self):
        query = parse_cq("q() :- R(x, x)")
        assert query.atoms[0].terms[0] == query.atoms[0].terms[1]

    def test_evaluation_sanity(self):
        from repro.data.instance import Instance

        query = parse_cq("q(x) :- R(x, 'keep')")
        instance = Instance({"R": [("a", "keep"), ("b", "drop")]})
        assert instance.evaluate(query) == {(Constant("a"),)}
