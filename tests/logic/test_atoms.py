"""Unit tests for atoms and substitutions."""

import pytest

from repro.logic.atoms import Atom, Substitution, apply_to_atoms
from repro.logic.terms import Constant, Null, Variable


X, Y, Z = Variable("x"), Variable("y"), Variable("z")
A, B = Constant("a"), Constant("b")
N1, N2 = Null("n1"), Null("n2")


class TestAtom:
    def test_arity(self):
        assert Atom("R", (X, Y, A)).arity == 3

    def test_is_fact_when_no_variables(self):
        assert Atom("R", (A, N1)).is_fact
        assert not Atom("R", (A, X)).is_fact

    def test_variables_in_first_occurrence_order(self):
        atom = Atom("R", (Y, X, Y))
        assert atom.variables() == (Y, X)

    def test_nulls_deduplicated(self):
        atom = Atom("R", (N1, N2, N1))
        assert atom.nulls() == (N1, N2)

    def test_constants(self):
        assert Atom("R", (A, X, B, A)).constants() == (A, B)

    def test_apply_substitution(self):
        sub = Substitution({X: A, Y: N1})
        assert Atom("R", (X, Y, Z)).apply(sub) == Atom("R", (A, N1, Z))

    def test_rename_relation(self):
        assert Atom("R", (X,)).rename_relation("S") == Atom("S", (X,))

    def test_equality_and_hash(self):
        assert Atom("R", (X, A)) == Atom("R", (X, A))
        assert hash(Atom("R", (X, A))) == hash(Atom("R", (X, A)))
        assert Atom("R", (X, A)) != Atom("R", (A, X))

    def test_terms_coerced_to_tuple(self):
        atom = Atom("R", [X, Y])  # list input
        assert isinstance(atom.terms, tuple)


class TestSubstitution:
    def test_get_with_default(self):
        sub = Substitution({X: A})
        assert sub.get(X) == A
        assert sub.get(Y) is None
        assert sub.get(Y, Y) == Y

    def test_extended_does_not_mutate_original(self):
        sub = Substitution({X: A})
        bigger = sub.extended(Y, B)
        assert Y not in sub
        assert bigger[Y] == B
        assert bigger[X] == A

    def test_restrict(self):
        sub = Substitution({X: A, Y: B})
        only_x = sub.restrict([X])
        assert X in only_x
        assert Y not in only_x

    def test_compose_applies_left_then_right(self):
        first = Substitution({X: Y})
        second = Substitution({Y: A})
        composed = first.compose(second)
        assert composed[X] == A
        assert composed[Y] == A

    def test_compose_keeps_right_only_keys(self):
        composed = Substitution({X: A}).compose(Substitution({Z: B}))
        assert composed[Z] == B

    def test_equality_and_hash(self):
        assert Substitution({X: A}) == Substitution({X: A})
        assert hash(Substitution({X: A})) == hash(Substitution({X: A}))

    def test_apply_to_atoms(self):
        sub = Substitution({X: A})
        atoms = apply_to_atoms([Atom("R", (X,)), Atom("S", (X, Y))], sub)
        assert atoms == (Atom("R", (A,)), Atom("S", (A, Y)))

    def test_len_and_iter(self):
        sub = Substitution({X: A, Y: B})
        assert len(sub) == 2
        assert set(sub) == {X, Y}
