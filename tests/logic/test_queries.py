"""Unit tests for conjunctive queries and canonical databases."""

import pytest

from repro.logic.atoms import Atom, Substitution
from repro.logic.homomorphisms import FactIndex
from repro.logic.queries import ConjunctiveQuery, QueryError, cq
from repro.logic.terms import Constant, Null, Variable


class TestBuilder:
    def test_cq_helper_parses_variables_and_constants(self):
        query = cq(["?x"], [("R", ["?x", "smith", 3])])
        atom = query.atoms[0]
        assert atom.terms == (Variable("x"), Constant("smith"), Constant(3))
        assert query.head == (Variable("x"),)

    def test_head_variable_must_occur_in_body(self):
        with pytest.raises(QueryError):
            cq(["?z"], [("R", ["?x"])])

    def test_repeated_head_variable_rejected(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery(
                (Variable("x"), Variable("x")),
                (Atom("R", (Variable("x"),)),),
            )

    def test_boolean_query(self):
        assert cq([], [("R", ["?x"])]).is_boolean


class TestAccessors:
    def test_variables_and_existentials(self):
        query = cq(["?x"], [("R", ["?x", "?y"])])
        assert query.variables() == {Variable("x"), Variable("y")}
        assert query.existential_variables() == {Variable("y")}

    def test_relations_and_constants(self):
        query = cq([], [("R", ["?x", "a"]), ("S", ["?x"])])
        assert query.relations() == {"R", "S"}
        assert query.constants() == {Constant("a")}


class TestCanonicalDatabase:
    def test_variables_become_nulls(self):
        query = cq(["?x"], [("R", ["?x", "?y"])], name="Q")
        facts, frozen = query.canonical_database()
        assert facts == (Atom("R", (Null("Q_x"), Null("Q_y"))),)
        assert frozen[Variable("x")] == Null("Q_x")

    def test_constants_preserved(self):
        query = cq([], [("R", ["?x", "smith"])], name="Q")
        facts, _ = query.canonical_database()
        assert facts[0].terms[1] == Constant("smith")

    def test_prefix_override(self):
        query = cq([], [("R", ["?x"])], name="Q")
        facts, _ = query.canonical_database(prefix="zz")
        assert facts[0].terms[0] == Null("zz_x")

    def test_repeated_variable_shares_null(self):
        query = cq([], [("R", ["?x", "?x"])], name="Q")
        facts, _ = query.canonical_database()
        assert facts[0].terms[0] == facts[0].terms[1]


class TestEvaluation:
    def test_evaluate_returns_head_tuples(self):
        query = cq(["?x"], [("R", ["?x", "?y"])])
        index = FactIndex(
            [
                Atom("R", (Constant("a"), Constant("b"))),
                Atom("R", (Constant("c"), Constant("b"))),
            ]
        )
        assert query.evaluate(index) == {
            (Constant("a"),),
            (Constant("c"),),
        }

    def test_holds_in(self):
        query = cq([], [("R", ["?x"])])
        assert query.holds_in(FactIndex([Atom("R", (Constant("a"),))]))
        assert not query.holds_in(FactIndex())

    def test_join_query_evaluation(self):
        query = cq(["?z"], [("R", ["?x", "?y"]), ("S", ["?y", "?z"])])
        index = FactIndex(
            [
                Atom("R", (Constant("a"), Constant("b"))),
                Atom("S", (Constant("b"), Constant("c"))),
                Atom("S", (Constant("x"), Constant("y"))),
            ]
        )
        assert query.evaluate(index) == {(Constant("c"),)}


class TestTransforms:
    def test_rename_relations(self):
        query = cq([], [("R", ["?x"]), ("S", ["?x"])])
        renamed = query.rename_relations({"R": "InfAcc_R"})
        assert renamed.relations() == {"InfAcc_R", "S"}

    def test_substitute_rejects_head_collapse(self):
        query = cq(["?x"], [("R", ["?x", "?y"])])
        with pytest.raises(QueryError):
            query.substitute(Substitution({Variable("x"): Constant("a")}))

    def test_substitute_body_variable(self):
        query = cq(["?x"], [("R", ["?x", "?y"])])
        result = query.substitute(
            Substitution({Variable("y"): Constant("b")})
        )
        assert result.atoms[0].terms[1] == Constant("b")
