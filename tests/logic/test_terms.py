"""Unit tests for terms: identity, hashing, factories, ordering."""

import pytest

from repro.logic.terms import (
    Constant,
    Null,
    NullFactory,
    Variable,
    fresh_null,
    is_ground,
    reset_null_counter,
)


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")

    def test_hashable(self):
        assert len({Variable("x"), Variable("x"), Variable("y")}) == 2

    def test_repr(self):
        assert repr(Variable("uname")) == "?uname"

    def test_not_ground(self):
        assert not is_ground(Variable("x"))


class TestConstant:
    def test_equality_by_value(self):
        assert Constant("smith") == Constant("smith")
        assert Constant(3) != Constant("3")

    def test_string_repr_quoted(self):
        assert repr(Constant("smith")) == "'smith'"

    def test_numeric_repr(self):
        assert repr(Constant(3)) == "3"

    def test_ground(self):
        assert is_ground(Constant("smith"))

    def test_distinct_from_variable_with_same_name(self):
        assert Constant("x") != Variable("x")


class TestNull:
    def test_equality_by_name(self):
        assert Null("n1") == Null("n1")
        assert Null("n1") != Null("n2")

    def test_repr(self):
        assert repr(Null("Q_e")) == "_Q_e"

    def test_ground(self):
        assert is_ground(Null("n0"))


class TestNullFactory:
    def test_mints_distinct_nulls(self):
        factory = NullFactory("t")
        nulls = [factory() for _ in range(10)]
        assert len(set(nulls)) == 10

    def test_hint_appears_in_name(self):
        factory = NullFactory("t")
        null = factory(hint="uid")
        assert "uid" in null.name

    def test_two_factories_same_prefix_collide_deterministically(self):
        a, b = NullFactory("p"), NullFactory("p")
        assert a() == b()  # determinism is the point: same prefix+index

    def test_global_fresh_null_distinct(self):
        reset_null_counter()
        assert fresh_null() != fresh_null()

    def test_reset_restarts_sequence(self):
        reset_null_counter()
        first = fresh_null()
        reset_null_counter()
        assert fresh_null() == first


class TestOrdering:
    def test_terms_sortable_across_kinds(self):
        terms = [Constant("b"), Null("a"), Variable("c"), Constant(1)]
        ordered = sorted(terms)
        assert len(ordered) == 4

    def test_sorting_is_stable_by_repr(self):
        terms = [Constant("b"), Constant("a")]
        assert sorted(terms) == [Constant("a"), Constant("b")]
