"""Unit tests for the bounded, priority-aware admission queue."""

import pytest

from repro.errors import ServiceOverloaded, ServiceStopped
from repro.service import (
    PRIORITY_BEST_EFFORT,
    PRIORITY_HIGH,
    PRIORITY_NORMAL,
    AdmissionQueue,
    QueryRequest,
    Ticket,
)
from repro.plans.commands import MiddlewareCommand
from repro.plans.expressions import Literal, NamedTable
from repro.plans.plan import Plan


def tiny_plan():
    return Plan(
        (
            MiddlewareCommand(
                "OUT", Literal(NamedTable.from_rows(("x",), []))
            ),
        ),
        "OUT",
    )


def ticket(priority=PRIORITY_NORMAL, rid=""):
    return Ticket(
        QueryRequest(plan=tiny_plan(), priority=priority, request_id=rid)
    )


class TestOrdering:
    def test_fifo_within_one_class(self):
        queue = AdmissionQueue(capacity=4)
        for rid in ("a", "b", "c"):
            queue.offer(ticket(rid=rid))
        assert [queue.take(0).request.request_id for _ in range(3)] == [
            "a", "b", "c",
        ]

    def test_strict_priority_across_classes(self):
        queue = AdmissionQueue(capacity=8)
        queue.offer(ticket(PRIORITY_BEST_EFFORT, "be"))
        queue.offer(ticket(PRIORITY_NORMAL, "n"))
        queue.offer(ticket(PRIORITY_HIGH, "h"))
        assert [queue.take(0).request.request_id for _ in range(3)] == [
            "h", "n", "be",
        ]

    def test_take_times_out_empty(self):
        queue = AdmissionQueue(capacity=2)
        assert queue.take(timeout=0.01) is None


class TestOverflow:
    def test_rejection_is_typed_with_depth_and_hint(self):
        queue = AdmissionQueue(capacity=2)
        queue.offer(ticket())
        queue.offer(ticket())
        with pytest.raises(ServiceOverloaded) as info:
            queue.offer(ticket(), retry_after=1.5)
        assert info.value.queue_depth == 2
        assert info.value.retry_after == pytest.approx(1.5)
        assert queue.rejected == 1
        assert queue.depth() == 2

    def test_high_priority_preempts_newest_lower(self):
        queue = AdmissionQueue(capacity=2)
        queue.offer(ticket(PRIORITY_BEST_EFFORT, "be1"))
        queue.offer(ticket(PRIORITY_BEST_EFFORT, "be2"))
        evicted = queue.offer(ticket(PRIORITY_HIGH, "h"))
        assert evicted is not None
        # The *newest* queued best-effort request was evicted.
        assert evicted.request.request_id == "be2"
        assert queue.preempted == 1
        assert [queue.take(0).request.request_id for _ in range(2)] == [
            "h", "be1",
        ]

    def test_preemption_picks_the_worst_class_first(self):
        queue = AdmissionQueue(capacity=2)
        queue.offer(ticket(PRIORITY_NORMAL, "n"))
        queue.offer(ticket(PRIORITY_BEST_EFFORT, "be"))
        evicted = queue.offer(ticket(PRIORITY_HIGH, "h"))
        assert evicted.request.request_id == "be"

    def test_no_preemption_among_peers(self):
        queue = AdmissionQueue(capacity=1)
        queue.offer(ticket(PRIORITY_NORMAL, "n1"))
        with pytest.raises(ServiceOverloaded):
            queue.offer(ticket(PRIORITY_NORMAL, "n2"))

    def test_best_effort_never_preempts_anyone(self):
        queue = AdmissionQueue(capacity=1)
        queue.offer(ticket(PRIORITY_BEST_EFFORT))
        with pytest.raises(ServiceOverloaded):
            queue.offer(ticket(PRIORITY_BEST_EFFORT))


class TestLifecycle:
    def test_closed_queue_refuses_offers(self):
        queue = AdmissionQueue(capacity=2)
        queue.close()
        with pytest.raises(ServiceStopped):
            queue.offer(ticket())

    def test_closed_queue_drains_then_returns_none(self):
        queue = AdmissionQueue(capacity=2)
        queue.offer(ticket(rid="a"))
        queue.close()
        assert queue.take().request.request_id == "a"
        assert queue.take() is None

    def test_reopen_accepts_again(self):
        queue = AdmissionQueue(capacity=2)
        queue.close()
        queue.reopen()
        assert queue.offer(ticket()) is None
        assert queue.depth() == 1

    def test_evict_all_empties_every_class(self):
        queue = AdmissionQueue(capacity=4)
        queue.offer(ticket(PRIORITY_HIGH, "h"))
        queue.offer(ticket(PRIORITY_BEST_EFFORT, "be"))
        evicted = queue.evict_all()
        assert {t.request.request_id for t in evicted} == {"h", "be"}
        assert queue.depth() == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            AdmissionQueue(capacity=0)


class TestRequestValidation:
    def test_bad_priority_rejected(self):
        with pytest.raises(ValueError):
            QueryRequest(plan=tiny_plan(), priority=7)

    def test_bad_deadline_rejected(self):
        with pytest.raises(ValueError):
            QueryRequest(plan=tiny_plan(), deadline_seconds=0)

    def test_ticket_result_timeout(self):
        pending = ticket()
        with pytest.raises(TimeoutError):
            pending.result(timeout=0.01)
