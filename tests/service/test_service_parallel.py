"""QueryService over the process/thread execution tier.

The contract under test: routing execution through a worker pool is
*invisible* in the answers (byte-identical tables, identical partial
prefixes under budgets), visible in ``health()`` (worker-tier
liveness), and failure-isolated (a killed worker fails the ticket with
a typed error instead of hanging, and the pool recovers for the next
request).
"""

import os

import pytest

from repro.data.instance import Instance
from repro.data.source import InMemorySource
from repro.errors import WorkerCrashed
from repro.exec.budget import ResourceBudget
from repro.logic.queries import parse_cq
from repro.planner.search import SearchOptions, find_best_plan
from repro.schema.core import SchemaBuilder
from repro.service import ProcessWorkerPool, QueryService, ThreadWorkerPool


def workload():
    schema = (
        SchemaBuilder("svc_parallel")
        .relation("R", 2)
        .relation("S", 2)
        .access("mt_R", "R", inputs=[], cost=1.0)
        .access("mt_S", "S", inputs=[], cost=1.0)
        .build()
    )
    instance = Instance(
        {
            "R": [(f"a{i}", f"b{i % 4}") for i in range(24)],
            "S": [(f"b{i % 4}", f"c{i}") for i in range(24)],
        }
    )
    result = find_best_plan(
        schema,
        parse_cq("q(a, c) :- R(a, b) & S(b, c)"),
        SearchOptions(max_accesses=4),
    )
    assert result.found
    return schema, instance, result.best_plan


def canonical(table):
    return (table.attributes, tuple(sorted(map(repr, table.rows))))


@pytest.fixture(scope="module")
def parts():
    return workload()


class TestTierEquivalence:
    @pytest.mark.parametrize("tier", ["thread", "process"])
    def test_answers_identical_to_in_service_execution(self, parts, tier):
        schema, instance, plan = parts
        source = InMemorySource(schema, instance)
        reference = canonical(plan.execute(source))
        if tier == "process":
            pool = ProcessWorkerPool.for_source(source, workers=2)
        else:
            pool = ThreadWorkerPool(source, workers=2)
        with QueryService(source, workers=2, worker_pool=pool) as service:
            responses = [
                ticket.result(timeout=120)
                for ticket in [service.submit(plan) for _ in range(4)]
            ]
        for response in responses:
            assert response.complete, response.describe()
            assert canonical(response.table) == reference

    def test_budget_truncation_prefix_identical_through_pool(self, parts):
        schema, instance, plan = parts
        source = InMemorySource(schema, instance)
        reference = sorted(plan.execute(source).rows)
        pool = ProcessWorkerPool.for_source(source, workers=1)
        with QueryService(source, workers=1, worker_pool=pool) as service:
            response = service.serve(
                plan,
                timeout=120,
                budget=ResourceBudget(max_result_rows=5),
            )
        assert response.partial
        assert response.truncated_rows == len(reference) - 5
        assert sorted(response.table.rows) == reference[:5]

    def test_columnar_executor_through_pool(self, parts):
        schema, instance, plan = parts
        source = InMemorySource(schema, instance)
        reference = canonical(plan.execute(source))
        pool = ProcessWorkerPool.for_source(source, workers=1)
        service = QueryService(
            source, workers=1, worker_pool=pool, executor="columnar"
        )
        with service:
            response = service.serve(plan, timeout=120)
        assert response.complete
        assert canonical(response.table) == reference

    def test_stats_merged_from_worker(self, parts):
        schema, instance, plan = parts
        source = InMemorySource(schema, instance)
        pool = ThreadWorkerPool(source, workers=1)
        with QueryService(source, workers=1, worker_pool=pool) as service:
            response = service.serve(plan, timeout=60)
            health = service.health()
        assert response.complete
        # The worker's per-command stats land in the service ledger.
        assert response.stats is not None
        assert response.stats.commands
        assert health.stats is not None
        assert len(health.stats["commands"]) >= len(response.stats.commands)


class TestHealthReporting:
    def test_health_reports_worker_tier(self, parts):
        schema, instance, plan = parts
        source = InMemorySource(schema, instance)
        pool = ProcessWorkerPool.for_source(source, workers=2)
        with QueryService(source, workers=1, worker_pool=pool) as service:
            service.serve(plan, timeout=120)
            health = service.health()
        tier = health.worker_tier
        assert tier is not None
        assert tier["tier"] == "process"
        assert tier["alive"]
        assert tier["workers"] == 2
        assert tier["tasks"] >= 1
        assert "worker_tier" in health.as_dict()

    def test_no_pool_means_no_tier_section(self, parts):
        schema, instance, _plan = parts
        source = InMemorySource(schema, instance)
        with QueryService(source, workers=1) as service:
            health = service.health()
        assert health.worker_tier is None
        assert "DEGRADED" not in health.summary()

    def test_dead_pool_is_reported_degraded_not_hung(self, parts):
        schema, instance, plan = parts
        source = InMemorySource(schema, instance)
        pool = ThreadWorkerPool(source, workers=1)
        with QueryService(source, workers=1, worker_pool=pool) as service:
            # Simulate the tier dying out from under the service.
            pool.shutdown()
            health = service.health()
            assert health.worker_tier is not None
            assert not health.worker_tier["alive"]
            assert "DEGRADED" in health.summary()
            # Requests fail with a typed error -- they do not hang.
            response = service.serve(plan, timeout=30)
            assert not response.ok
            assert isinstance(response.error, WorkerCrashed)


class TestCrashRecovery:
    def test_killed_worker_fails_ticket_typed_and_pool_recovers(
        self, parts
    ):
        schema, instance, plan = parts
        source = InMemorySource(schema, instance)
        reference = canonical(plan.execute(source))
        pool = ProcessWorkerPool.for_source(
            source, workers=2, start_method="fork"
        )
        with QueryService(source, workers=1, worker_pool=pool) as service:
            # Warm the pool, then hard-kill a worker underneath it.
            assert service.serve(plan, timeout=120).complete
            victim = pool._executor.submit(os._exit, 13)
            with pytest.raises(Exception):
                victim.result(timeout=60)
            # The in-flight ticket fails with the typed crash error...
            response = service.serve(plan, timeout=60)
            assert not response.ok
            assert isinstance(response.error, WorkerCrashed)
            # ...and the tier has already restarted: same plan, same
            # answer, and health records the crash instead of hiding it.
            recovered = service.serve(plan, timeout=120)
            assert recovered.complete, recovered.describe()
            assert canonical(recovered.table) == reference
            health = service.health()
        assert health.worker_tier["alive"]
        assert health.worker_tier["crashes"] == 1
        assert health.worker_tier["restarts"] == 1
