"""The service's cost feedback loop and admission-time size checks.

Three contracts:

* every served request's observed row flow lands in the configured
  :class:`~repro.cost.calibration.CalibrationStore`, surfaced through
  ``QueryService.health()``;
* a calibration bump moves the cost model's identity and therefore the
  plan-cache key -- the cached best plan is invalidated and Algorithm 1
  re-runs (regression for the cache-soundness requirement);
* plans whose static result-size bound exceeds a hard (error-mode)
  result ceiling are rejected at admission with a typed
  :class:`~repro.errors.PlanInadmissible` -- and the check stays
  permissive for truncate-mode budgets and unknown (infinite) bounds.
"""

import math

import pytest

from repro.cost.bounds import SizeBounds
from repro.cost.calibration import CalibrationStore
from repro.cost.functions import CardinalityCostFunction
from repro.data.source import InMemorySource
from repro.errors import PlanInadmissible
from repro.exec.budget import ERROR, TRUNCATE, ResourceBudget
from repro.planner.plan_cache import PlanCache
from repro.planner.search import SearchOptions, find_best_plan
from repro.scenarios import example1
from repro.service import QueryService


@pytest.fixture
def scenario():
    return example1()


@pytest.fixture
def planned(scenario):
    result = find_best_plan(
        scenario.schema, scenario.query, SearchOptions(max_accesses=5)
    )
    assert result.found
    return result.best_plan


@pytest.fixture
def source(scenario):
    return InMemorySource(scenario.schema, scenario.instance(0))


class TestFeedbackLoop:
    def test_served_requests_feed_the_calibration_store(
        self, source, planned
    ):
        store = CalibrationStore()
        with QueryService(source, calibration=store) as service:
            assert service.serve(planned, timeout=10).ok
            service.wait_idle(timeout=10)
        assert store.observations > 0
        assert store.version >= 1
        for method in planned.methods_used():
            assert store.method_calibration(method) is not None

    def test_health_exposes_calibration_counters(self, source, planned):
        store = CalibrationStore()
        with QueryService(source, calibration=store) as service:
            service.serve(planned, timeout=10)
            service.wait_idle(timeout=10)
            health = service.health()
        assert health.calibration is not None
        assert health.calibration["observations"] == store.observations
        assert health.calibration["version"] == store.version
        assert "hits" in health.calibration
        assert "fallbacks" in health.calibration
        assert health.as_dict()["calibration"] == health.calibration

    def test_no_store_means_no_calibration_in_health(self, source, planned):
        with QueryService(source) as service:
            service.serve(planned, timeout=10)
            health = service.health()
        assert health.calibration is None

    def test_observed_relation_names_come_from_the_schema(
        self, scenario, source, planned
    ):
        store = CalibrationStore()
        with QueryService(source, calibration=store) as service:
            service.serve(planned, timeout=10)
            service.wait_idle(timeout=10)
        method = planned.methods_used()[0]
        expected = scenario.schema.method(method).relation
        assert store.method_calibration(method).relation == expected


class TestCacheInvalidation:
    def test_calibration_bump_invalidates_the_cached_plan(
        self, scenario, source
    ):
        store = CalibrationStore()
        options = SearchOptions(
            max_accesses=5,
            cost=CardinalityCostFunction(
                relation_cardinality={}, calibration=store
            ),
        )
        # collect_stats=False keeps the serving path from bumping the
        # store behind our back -- the test drives the bump explicitly.
        with QueryService(
            source,
            collect_stats=False,
            plan_cache=PlanCache(),
            calibration=store,
        ) as service:
            service.submit_query(
                scenario.query, search_options=options
            ).result(10)
            assert service.health().planned == 1
            service.submit_query(
                scenario.query, search_options=options
            ).result(10)
            # Unchanged calibration: the cached plan is reused.
            assert service.health().planned == 1
            method = scenario.schema.methods[0].name
            store.observe(
                method, dispatched=5, fetched=25, emitted=20
            )
            service.submit_query(
                scenario.query, search_options=options
            ).result(10)
            # The bump moved the cost identity, hence the cache key.
            assert service.health().planned == 2


class TestAdmissionBounds:
    def bounds(self, scenario):
        return SizeBounds.from_instance(
            scenario.schema, scenario.instance(0)
        )

    def doomed_budget(self, bound):
        assert not math.isinf(bound) and bound >= 1
        return ResourceBudget(
            max_result_rows=int(bound) - 1 or 1,
            on_result_overflow=ERROR,
        )

    def test_doomed_error_mode_plan_rejected_typed(
        self, scenario, source, planned
    ):
        size_bounds = self.bounds(scenario)
        bound = size_bounds.result_bound(planned)
        budget = ResourceBudget(
            max_result_rows=max(0, int(bound) - 1),
            on_result_overflow=ERROR,
        )
        with QueryService(source, size_bounds=size_bounds) as service:
            with pytest.raises(PlanInadmissible) as info:
                service.submit(planned, budget=budget)
            assert info.value.kind == "result"
            assert info.value.bound == pytest.approx(bound)
            assert info.value.ceiling == budget.max_result_rows
            health = service.health()
        assert health.rejected_inadmissible == 1
        assert health.as_dict()["rejected_inadmissible"] == 1

    def test_truncate_mode_is_always_admitted(
        self, scenario, source, planned
    ):
        size_bounds = self.bounds(scenario)
        bound = size_bounds.result_bound(planned)
        budget = ResourceBudget(
            max_result_rows=max(0, int(bound) - 1),
            on_result_overflow=TRUNCATE,
        )
        with QueryService(source, size_bounds=size_bounds) as service:
            response = service.serve(planned, budget=budget, timeout=10)
        assert response.error is None

    def test_generous_ceiling_is_admitted(self, scenario, source, planned):
        size_bounds = self.bounds(scenario)
        bound = size_bounds.result_bound(planned)
        budget = ResourceBudget(
            max_result_rows=int(bound) + 10, on_result_overflow=ERROR
        )
        with QueryService(source, size_bounds=size_bounds) as service:
            response = service.serve(planned, budget=budget, timeout=10)
        # Admitted finite-bound plans provably never trip the ceiling.
        assert response.ok

    def test_unknown_bound_stays_permissive(self, scenario, source, planned):
        # No relation sizes declared: every bound is inf, nothing can be
        # proven doomed, everything is admitted.
        size_bounds = SizeBounds(scenario.schema, {})
        budget = ResourceBudget(
            max_result_rows=0, on_result_overflow=ERROR
        )
        with QueryService(source, size_bounds=size_bounds) as service:
            ticket = service.submit(planned, budget=budget)
            ticket.result(10)

    def test_without_size_bounds_no_admission_check(
        self, scenario, source, planned
    ):
        budget = ResourceBudget(
            max_result_rows=0, on_result_overflow=ERROR
        )
        with QueryService(source) as service:
            service.submit(planned, budget=budget).result(10)
