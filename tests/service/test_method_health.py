"""Health-aware degraded planning: one outage, one re-plan, recovery.

The unit half exercises :class:`MethodHealthRegistry` as a ledger of
*transitions*; the service half drives a real outage through a live
``QueryService`` and asserts the paper-side consequence: planning swings
to ``schema.without_methods(dead)`` exactly once (the degraded schema
fingerprint is a different cache key), serving continues marked
``degraded``, and recovery swings the key straight back to the warm
healthy-schema entry.
"""

import pytest

from repro.data.instance import Instance
from repro.data.source import InMemorySource
from repro.errors import (
    MethodOutage,
    NoViablePlan,
    PlanFailed,
    ReproError,
)
from repro.faults import FaultInjectingSource, FaultPolicy
from repro.logic.queries import parse_cq
from repro.planner.plan_cache import PlanCache
from repro.schema.core import SchemaBuilder
from repro.service.method_health import MethodHealthRegistry
from repro.service.service import QueryService


def _no_sleep(_seconds):
    return None


def redundant_schema():
    """R reachable two ways (cheap primary, pricey backup), S one way."""
    return (
        SchemaBuilder("outage")
        .relation("R", 2)
        .relation("S", 2)
        .access("primary_R", "R", inputs=[], cost=1.0)
        .access("backup_R", "R", inputs=[], cost=5.0)
        .access("mt_S", "S", inputs=[], cost=1.0)
        .build()
    )


def fragile_schema():
    """R reachable exactly one way: its outage leaves no viable plan."""
    return (
        SchemaBuilder("fragile")
        .relation("R", 2)
        .relation("S", 2)
        .access("mt_R", "R", inputs=[], cost=1.0)
        .access("mt_S", "S", inputs=[], cost=1.0)
        .build()
    )


def small_instance():
    return Instance(
        {
            "R": [(f"a{i}", f"b{i % 3}") for i in range(9)],
            "S": [(f"b{i % 3}", f"c{i}") for i in range(9)],
        }
    )


QUERY = parse_cq("q(a, c) :- R(a, b) & S(b, c)")


def outage_service(schema, dead_method, **kwargs):
    source = FaultInjectingSource(
        InMemorySource(schema, small_instance()),
        FaultPolicy.outage(dead_method, after=0, seed=0),
    )
    service = QueryService(
        source,
        workers=2,
        plan_cache=PlanCache(capacity=8),
        default_deadline=30.0,
        sleep=_no_sleep,
        **kwargs,
    )
    return source, service


def serve_query(service, timeout=30.0):
    return service.submit_query(QUERY).result(timeout)


# ------------------------------------------------------------------ registry
class TestMethodHealthRegistry:
    def test_mark_dead_counts_transitions_not_observations(self):
        registry = MethodHealthRegistry()
        assert registry.mark_dead("mt_a") is True
        assert registry.mark_dead("mt_a") is False  # observed, no change
        assert registry.mark_dead("mt_a") is False
        counters = registry.counters()
        assert counters["dead_methods"] == ["mt_a"]
        assert counters["outages_observed"] == 3

    def test_empty_method_name_is_ignored(self):
        registry = MethodHealthRegistry()
        assert registry.mark_dead("") is False
        assert registry.dead_methods() == ()

    def test_recovery_round_trip(self):
        registry = MethodHealthRegistry()
        registry.mark_dead("mt_a", reason="breaker forced open")
        assert registry.is_dead("mt_a")
        assert registry.reason("mt_a") == "breaker forced open"
        assert registry.mark_recovered("mt_a") is True
        assert registry.mark_recovered("mt_a") is False  # already healthy
        assert not registry.is_dead("mt_a")
        assert registry.reason("mt_a") is None
        assert registry.counters()["recoveries"] == 1

    def test_dead_set_is_sorted_for_stable_cache_keys(self):
        registry = MethodHealthRegistry()
        registry.mark_dead("mt_z")
        registry.mark_dead("mt_a")
        assert registry.dead_methods() == ("mt_a", "mt_z")
        assert "2 dead" in repr(registry)


# ------------------------------------------------- service degraded planning
class TestDegradedPlanning:
    def test_one_outage_costs_one_replan_then_serving_continues(self):
        _, service = outage_service(redundant_schema(), "primary_R")
        oracle = frozenset(small_instance().evaluate(QUERY))
        with service:
            first = serve_query(service)
            assert isinstance(first.error, (MethodOutage, PlanFailed))
            service.wait_idle(timeout=10.0)
            for _ in range(3):
                response = serve_query(service)
                assert response.error is None, response.error
                assert frozenset(response.table.rows) == oracle
                # Full answers, but the serving regime is flagged.
                assert response.degraded is True
                service.wait_idle(timeout=10.0)
            health = service.health()
            assert health.method_health["dead_methods"] == ["primary_R"]
            # One transition, one search against the degraded schema --
            # requests two and three hit the degraded cache entry.
            assert health.method_health["replans"] == 1

    def test_recovery_closes_the_loop_without_a_new_search(self):
        source, service = outage_service(redundant_schema(), "primary_R")
        with service:
            serve_query(service)  # pays for the outage
            service.wait_idle(timeout=10.0)
            serve_query(service)  # triggers the one re-plan
            service.wait_idle(timeout=10.0)
            planned_before = service.health().planned
            source.policy = FaultPolicy(seed=0)  # the backend heals
            assert service.mark_method_recovered("primary_R") is True
            response = serve_query(service)
            assert response.error is None
            assert response.degraded is False
            service.wait_idle(timeout=10.0)
            health = service.health()
            assert health.method_health["dead_methods"] == []
            assert health.method_health["recoveries"] == 1
            # The healthy-schema plan was still cached under its own
            # key: recovery costs zero additional searches.
            assert health.planned == planned_before

    def test_no_viable_plan_serves_marked_partial_when_degraded_allowed(self):
        _, service = outage_service(fragile_schema(), "mt_R")
        oracle = frozenset(small_instance().evaluate(QUERY))
        with service:
            first = serve_query(service)
            assert isinstance(first.error, ReproError)
            service.wait_idle(timeout=10.0)
            ticket = service.submit_query(QUERY)
            response = ticket.result(10.0)
            # No plan avoids the dead method, so the accessible part
            # answers: explicitly partial + degraded, sound (a subset
            # of the oracle), fully accounted.
            assert response.error is None
            assert response.partial is True
            assert response.complete is False
            assert response.degraded is True
            assert frozenset(response.table.rows) <= oracle
            health = service.health()
            assert health.method_health["degraded_served"] >= 1
            assert health.served == health.completed + health.partial + health.failed

    def test_no_viable_plan_raises_typed_when_degraded_disallowed(self):
        _, service = outage_service(
            fragile_schema(), "mt_R", allow_degraded=False
        )
        with service:
            serve_query(service)
            service.wait_idle(timeout=10.0)
            with pytest.raises(NoViablePlan) as excinfo:
                service.submit_query(QUERY)
            assert excinfo.value.dead_methods == ("mt_R",)


# ------------------------------------------------------- retry-after hinting
class _StubTier:
    """A worker-pool stand-in with a fixed width and backlog."""

    workers = 2

    def __init__(self, backlog):
        self._backlog = backlog

    def backlog(self):
        return self._backlog


class TestRetryAfterHint:
    def _service(self, pool=None):
        schema = fragile_schema()
        service = QueryService(
            InMemorySource(schema, small_instance()),
            workers=8,
            worker_pool=pool,
        )
        service._mean_service_time = 2.0
        return service

    def test_hint_uses_the_narrower_tier_width(self):
        # 6 requests deep in the tier behind 2 processes drain two at a
        # time: the hint must price the tier's width (6 * 2 / 2 = 6s),
        # not the 8 service threads (which would claim 1.5s).
        service = self._service(_StubTier(backlog=6))
        assert service._retry_after_hint() == pytest.approx(6.0)

    def test_hint_without_a_tier_uses_service_width(self):
        service = self._service(None)
        # Nothing queued or in flight: the floor is one mean service time.
        assert service._retry_after_hint() == pytest.approx(2.0)

    def test_tier_backlog_beyond_in_flight_counts_as_waiting(self):
        # Hedge duplicates (or another client of a shared pool) show up
        # as tier backlog without any in-flight request of ours.
        service = self._service(_StubTier(backlog=3))
        service._in_flight = 1
        # waiting = queue(0) + in_flight(1) + max(0, 3 - 1) = 3
        assert service._retry_after_hint() == pytest.approx(3.0)
