"""QueryService behaviour: soundness, governance, overload, lifecycle.

The centrepiece is differential soundness under concurrency: for every
scenario in the library, an 8-worker service sharing one source, one
access cache and one breaker registry answers every request exactly as
a sequential ``Plan.execute`` does -- including under injected
transient faults.  The rest pins the governance surface: typed
overload shedding, priority preemption, per-request budgets degrading
to marked partial answers, deadlines that cover queue time, and the
drain/shutdown lifecycle.
"""

import threading
import time

import pytest

from repro.data.decorators import LatencySource
from repro.data.source import InMemorySource
from repro.errors import (
    AccessBudgetExceeded,
    DeadlineExceeded,
    RowBudgetExceeded,
    ServiceOverloaded,
    ServiceStopped,
)
from repro.exec import AccessCache, BreakerRegistry, ResourceBudget, RetryPolicy
from repro.faults import FaultInjectingSource, FaultPolicy, VirtualClock
from repro.planner.search import SearchOptions, find_best_plan
from repro.scenarios import (
    example1,
    example2,
    example5,
    referential_chain,
    view_stack_scenario,
    webservices,
)
from repro.service import (
    PRIORITY_BEST_EFFORT,
    PRIORITY_HIGH,
    QueryService,
)

SCENARIOS = [
    ("example1", example1, 3),
    ("example2", example2, 4),
    ("example5", example5, 4),
    ("chain2", lambda: referential_chain(2), 4),
    ("views", view_stack_scenario, 4),
    ("webservices", webservices, 5),
]


def planned(factory, budget):
    scenario = factory()
    result = find_best_plan(
        scenario.schema, scenario.query, SearchOptions(max_accesses=budget)
    )
    assert result.found, scenario.name
    return scenario, result.best_plan


class GateSource:
    """A source whose accesses block until the test opens the gate."""

    def __init__(self, inner):
        self.inner = inner
        self.gate = threading.Event()
        self.entered = threading.Event()

    @property
    def schema(self):
        return self.inner.schema

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def access(self, method_name, inputs=()):
        self.entered.set()
        assert self.gate.wait(30), "test gate never opened"
        return self.inner.access(method_name, inputs)


@pytest.fixture
def served():
    """A started 2-worker service over example1 plus its reference."""
    scenario, plan = planned(example1, 3)
    source = InMemorySource(scenario.schema, scenario.instance(0))
    reference = plan.execute(source)
    service = QueryService(source, workers=2, max_queue=16).start()
    yield service, plan, reference
    service.shutdown(timeout=10)


# ---------------------------------------------------- differential soundness
@pytest.mark.parametrize(
    "name,factory,budget", SCENARIOS, ids=[s[0] for s in SCENARIOS]
)
def test_concurrent_answers_match_sequential(name, factory, budget):
    scenario, plan = planned(factory, budget)
    instance = scenario.instance(0)
    source = InMemorySource(scenario.schema, instance)
    reference = plan.execute(InMemorySource(scenario.schema, instance))
    service = QueryService(
        source, workers=8, max_queue=64, cache=AccessCache()
    )
    with service:
        tickets = [service.submit(plan) for _ in range(16)]
        for ticket in tickets:
            response = ticket.result(timeout=30)
            assert response.complete, response.describe()
            assert response.table.attributes == reference.attributes
            assert response.table.rows == reference.rows
    health = service.health()
    assert health.served == 16
    assert health.completed == 16
    assert health.shed == 0


def test_fault_injected_service_is_still_sound():
    scenario, plan = planned(example5, 4)
    instance = scenario.instance(0)
    reference = plan.execute(InMemorySource(scenario.schema, instance))
    clock = VirtualClock()
    source = FaultInjectingSource(
        InMemorySource(scenario.schema, instance),
        FaultPolicy.transient(0.3, seed=3),
        clock=clock,
    )
    service = QueryService(
        source,
        workers=8,
        max_queue=64,
        cache=AccessCache(),
        retry=RetryPolicy(max_attempts=10, seed=3),
        breakers=BreakerRegistry(failure_threshold=10_000, clock=clock),
        sleep=clock.sleep,
        clock=clock,
    )
    with service:
        tickets = [service.submit(plan) for _ in range(12)]
        responses = [ticket.result(timeout=60) for ticket in tickets]
    for response in responses:
        assert response.complete, response.describe()
        assert response.table.rows == reference.rows
    assert source.stats.injected_total > 0, "the fault schedule never fired"


# ------------------------------------------------------ per-request governance
def test_result_budget_degrades_to_marked_partial(served):
    service, plan, reference = served
    assert len(reference.rows) > 1
    response = service.serve(
        plan, budget=ResourceBudget(max_result_rows=1), timeout=10
    )
    assert response.ok and response.partial and not response.complete
    assert len(response.table.rows) == 1
    assert response.truncated_rows == len(reference.rows) - 1
    # Truncation is deterministic: the sorted-prefix answer repeats.
    again = service.serve(
        plan, budget=ResourceBudget(max_result_rows=1), timeout=10
    )
    assert again.table.rows == response.table.rows


def test_default_budget_template_is_per_request(served):
    service, plan, reference = served
    service.default_budget = ResourceBudget(max_result_rows=1)
    try:
        first = service.serve(plan, timeout=10)
        second = service.serve(plan, timeout=10)
    finally:
        service.default_budget = None
    assert first.partial and second.partial
    # Each request got a fresh copy: counts do not accumulate.
    assert first.truncated_rows == second.truncated_rows


def test_resident_budget_fails_typed(served):
    service, plan, _ = served
    response = service.serve(
        plan, budget=ResourceBudget(max_resident_rows=0), timeout=10
    )
    assert not response.ok
    assert isinstance(response.error, RowBudgetExceeded)
    assert response.error.kind == "resident"


def test_access_budget_fails_typed(served):
    service, plan, _ = served
    response = service.serve(
        plan, budget=ResourceBudget(max_accesses=0), timeout=10
    )
    assert not response.ok
    assert isinstance(response.error, AccessBudgetExceeded)


def test_deadline_covers_queue_time():
    scenario, plan = planned(example1, 3)
    source = GateSource(
        InMemorySource(scenario.schema, scenario.instance(0))
    )
    service = QueryService(source, workers=1, max_queue=4).start()
    try:
        blocker = service.submit(plan)
        assert source.entered.wait(10)
        # Queued behind the gated request; its tiny deadline expires
        # before any worker picks it up.
        doomed = service.submit(plan, deadline=0.001)
        time.sleep(0.05)
        source.gate.set()
        assert blocker.result(timeout=10).complete
        response = doomed.result(timeout=10)
        assert isinstance(response.error, DeadlineExceeded)
        assert "admission queue" in str(response.error)
    finally:
        source.gate.set()
        service.shutdown(timeout=10)


# ------------------------------------------------------------------- overload
def test_door_rejection_is_typed_and_counted():
    scenario, plan = planned(example1, 3)
    source = GateSource(
        InMemorySource(scenario.schema, scenario.instance(0))
    )
    service = QueryService(source, workers=1, max_queue=1).start()
    try:
        running = service.submit(plan)
        assert source.entered.wait(10)
        queued = service.submit(plan)
        with pytest.raises(ServiceOverloaded) as info:
            service.submit(plan)
        assert info.value.queue_depth == 1
        assert info.value.retry_after > 0
        source.gate.set()
        assert running.result(timeout=10).complete
        assert queued.result(timeout=10).complete
        health = service.health()
        assert health.rejected == 1
        assert health.shed == 1
        assert health.served == 2
    finally:
        source.gate.set()
        service.shutdown(timeout=10)


def test_high_priority_preempts_queued_best_effort():
    scenario, plan = planned(example1, 3)
    source = GateSource(
        InMemorySource(scenario.schema, scenario.instance(0))
    )
    service = QueryService(source, workers=1, max_queue=1).start()
    try:
        running = service.submit(plan)
        assert source.entered.wait(10)
        victim = service.submit(plan, priority=PRIORITY_BEST_EFFORT)
        winner = service.submit(plan, priority=PRIORITY_HIGH)
        shed = victim.result(timeout=10)
        assert isinstance(shed.error, ServiceOverloaded)
        assert shed.error.shed
        assert shed.error.retry_after is not None
        source.gate.set()
        assert running.result(timeout=10).complete
        assert winner.result(timeout=10).complete
        health = service.health()
        assert health.preempted == 1
        assert health.shed == 1
    finally:
        source.gate.set()
        service.shutdown(timeout=10)


# ------------------------------------------------------------------ lifecycle
def test_submit_before_start_raises():
    scenario, plan = planned(example1, 3)
    service = QueryService(
        InMemorySource(scenario.schema, scenario.instance(0))
    )
    with pytest.raises(ServiceStopped):
        service.submit(plan)


def test_drain_finishes_inflight_and_rejects_new():
    scenario, plan = planned(example1, 3)
    source = GateSource(
        InMemorySource(scenario.schema, scenario.instance(0))
    )
    service = QueryService(source, workers=1, max_queue=4).start()
    inflight = service.submit(plan)
    assert source.entered.wait(10)
    drainer = threading.Thread(target=service.drain)
    drainer.start()
    for _ in range(200):
        if not service.health().accepting:
            break
        time.sleep(0.005)
    with pytest.raises(ServiceStopped):
        service.submit(plan)
    source.gate.set()
    drainer.join(timeout=10)
    assert not drainer.is_alive()
    assert inflight.result(timeout=1).complete
    assert not service.health().running


def test_shutdown_without_drain_sheds_queued_work():
    scenario, plan = planned(example1, 3)
    source = GateSource(
        InMemorySource(scenario.schema, scenario.instance(0))
    )
    service = QueryService(source, workers=1, max_queue=4).start()
    inflight = service.submit(plan)
    assert source.entered.wait(10)
    queued = service.submit(plan)
    stopper = threading.Thread(
        target=lambda: service.shutdown(drain=False, timeout=10)
    )
    stopper.start()
    # The queued (never-started) request is resolved as stopped even
    # while the in-flight one is still blocked on the gate.
    response = queued.result(timeout=10)
    assert isinstance(response.error, ServiceStopped)
    source.gate.set()
    stopper.join(timeout=10)
    assert inflight.result(timeout=1).complete


def test_health_snapshot_shape(served):
    service, plan, reference = served
    for _ in range(3):
        assert service.serve(plan, timeout=10).complete
    health = service.health()
    assert health.running and health.accepting
    assert health.workers == 2
    assert health.served == 3 and health.completed == 3
    assert health.queue_depth == 0 and health.in_flight == 0
    assert health.mean_service_time > 0
    assert isinstance(health.breakers, dict)
    assert health.stats["runs"] == 3
    snapshot = health.as_dict()
    assert snapshot["served"] == 3
    assert "3 served" in health.summary()


def test_context_manager_round_trip():
    scenario, plan = planned(example1, 3)
    source = InMemorySource(scenario.schema, scenario.instance(0))
    with QueryService(source, workers=2) as service:
        assert service.serve(plan, timeout=10).complete
    assert not service.health().running
    with pytest.raises(ServiceStopped):
        service.submit(plan)
