"""Stress: many submitter threads, one service, exact stats accounting.

Eight-plus client threads hammer one :class:`QueryService` (which runs
eight worker threads of its own over a shared source, cache and breaker
registry).  Afterwards the service-level aggregate
:class:`~repro.exec.stats.ExecStats` must equal the *sum* of the
per-request stats -- additive counters exactly, peaks as maxima --
which fails if any merge was lost or double-counted under contention.

The tests carry ``pytest.mark.timeout`` (enforced in CI where
pytest-timeout is installed) and every blocking wait has its own
timeout, so a deadlock fails fast instead of hanging the suite.
"""

import threading

import pytest

from repro.data.source import InMemorySource
from repro.exec import AccessCache
from repro.planner.search import SearchOptions, find_best_plan
from repro.scenarios import example5
from repro.service import PRIORITY_CLASSES, QueryService

CLIENTS = 8
REQUESTS_PER_CLIENT = 6


@pytest.mark.timeout(120)
def test_aggregate_stats_equal_sum_of_per_request_stats():
    scenario = example5()
    result = find_best_plan(
        scenario.schema, scenario.query, SearchOptions(max_accesses=4)
    )
    assert result.found
    plan = result.best_plan
    instance = scenario.instance(0)
    reference = plan.execute(InMemorySource(scenario.schema, instance))
    source = InMemorySource(scenario.schema, instance)
    service = QueryService(
        source,
        workers=8,
        max_queue=CLIENTS * REQUESTS_PER_CLIENT,
        cache=AccessCache(),
    )
    responses = []
    responses_lock = threading.Lock()
    errors = []

    def client(index):
        try:
            mine = []
            for i in range(REQUESTS_PER_CLIENT):
                priority = PRIORITY_CLASSES[
                    (index + i) % len(PRIORITY_CLASSES)
                ]
                ticket = service.submit(plan, priority=priority)
                mine.append(ticket.result(timeout=60))
            with responses_lock:
                responses.extend(mine)
        except Exception as error:  # surfaced after the join below
            errors.append(error)

    with service:
        threads = [
            threading.Thread(target=client, args=(index,))
            for index in range(CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=90)
            assert not thread.is_alive(), "client thread hung"
    assert not errors, errors

    total = CLIENTS * REQUESTS_PER_CLIENT
    assert len(responses) == total
    for response in responses:
        assert response.complete, response.describe()
        assert response.table.rows == reference.rows

    aggregate = service.stats
    assert aggregate is not None
    per_request = [r.stats for r in responses]
    assert all(stats is not None for stats in per_request)
    # Additive counters match exactly.
    assert aggregate.runs == sum(s.runs for s in per_request) == total
    assert len(aggregate.commands) == sum(
        len(s.commands) for s in per_request
    )
    assert aggregate.accesses_dispatched == sum(
        s.accesses_dispatched for s in per_request
    )
    assert aggregate.cache_hits == sum(s.cache_hits for s in per_request)
    assert aggregate.rows_out == sum(s.rows_out for s in per_request)
    assert aggregate.retries == sum(s.retries for s in per_request)
    assert aggregate.failovers == sum(s.failovers for s in per_request)
    assert aggregate.wall_time == pytest.approx(
        sum(s.wall_time for s in per_request)
    )
    # Peaks merge as maxima, not sums.
    assert aggregate.peak_resident_rows == max(
        s.peak_resident_rows for s in per_request
    )
    assert aggregate.breaker_trips == max(
        s.breaker_trips for s in per_request
    )

    health = service.health()
    assert health.served == total
    assert health.completed == total
    assert health.shed == 0
    # Cache accounting is consistent under contention: every dispatch
    # was either a hit, or a miss that reached the source.
    cache = health.cache
    assert cache["hits"] + cache["misses"] == aggregate.accesses_dispatched
    assert cache["misses"] == source.total_invocations


@pytest.mark.timeout(120)
def test_submissions_race_with_drain_without_losing_requests():
    """Every submitted request resolves even when drain races submits."""
    scenario = example5()
    result = find_best_plan(
        scenario.schema, scenario.query, SearchOptions(max_accesses=4)
    )
    plan = result.best_plan
    source = InMemorySource(scenario.schema, scenario.instance(0))
    service = QueryService(source, workers=4, max_queue=8)
    outcomes = []
    outcomes_lock = threading.Lock()

    def client():
        from repro.errors import ServiceError

        for _ in range(10):
            try:
                response = service.submit(plan).result(timeout=60)
                outcome = "ok" if response.ok else type(response.error).__name__
            except ServiceError as error:
                outcome = type(error).__name__
            with outcomes_lock:
                outcomes.append(outcome)

    service.start()
    threads = [threading.Thread(target=client) for _ in range(CLIENTS)]
    for thread in threads:
        thread.start()
    service.drain(timeout=60)
    for thread in threads:
        thread.join(timeout=90)
        assert not thread.is_alive(), "client thread hung"
    # Every attempt is accounted for: served, shed, or typed-rejected.
    assert len(outcomes) == CLIENTS * 10
    assert set(outcomes) <= {"ok", "ServiceOverloaded", "ServiceStopped"}
    assert "ok" in outcomes
