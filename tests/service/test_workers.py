"""The worker-pool execution tier: specs, payloads, pools, recovery.

Everything that crosses the process boundary here is a plain JSON-able
dict -- these tests round-trip each piece through ``json.dumps`` to
prove it, because "it pickled today" is not a compatibility story.
"""

import json
import os

import pytest

from repro.data.decorators import (
    BudgetedSource,
    CachingSource,
    FlakySource,
    LatencySource,
)
from repro.data.instance import Instance
from repro.data.source import InMemorySource, ShardedInMemorySource
from repro.errors import MethodOutage, RowBudgetExceeded, WorkerCrashed
from repro.exec.budget import ResourceBudget
from repro.exec.resilience import RetryPolicy
from repro.faults import FaultInjectingSource, FaultPolicy
from repro.logic.terms import Constant
from repro.plans.ir import plan_to_ir, table_from_ir, table_to_ir
from repro.schema.core import SchemaBuilder
from repro.service.workers import (
    ProcessWorkerPool,
    SourceSpecError,
    ThreadWorkerPool,
    decode_bindings,
    encode_bindings,
    execute_payload,
    merge_answer_tables,
    rebuild_error,
    retry_to_dict,
    source_to_spec,
    spec_to_source,
)


def simple_schema():
    return (
        SchemaBuilder("workers")
        .relation("R", 2)
        .relation("S", 2)
        .access("mt_R", "R", inputs=[], cost=1.0)
        .access("mt_S", "S", inputs=[], cost=1.0)
        .build()
    )


def simple_instance(n=12):
    return Instance(
        {
            "R": [(f"a{i}", f"b{i % 3}") for i in range(n)],
            "S": [(f"b{i % 3}", f"c{i}") for i in range(n)],
        }
    )


def simple_plan(schema):
    from repro.planner.search import SearchOptions, find_best_plan
    from repro.logic.queries import parse_cq

    result = find_best_plan(
        schema,
        parse_cq("q(a, c) :- R(a, b) & S(b, c)"),
        SearchOptions(max_accesses=4),
    )
    assert result.found
    return result.best_plan


def canonical(table):
    return (table.attributes, tuple(sorted(map(repr, table.rows))))


# ---------------------------------------------------------------- source spec
class TestSourceSpec:
    def test_memory_round_trip_is_jsonable(self):
        source = InMemorySource(simple_schema(), simple_instance())
        spec = json.loads(json.dumps(source_to_spec(source)))
        rebuilt = spec_to_source(spec)
        assert isinstance(rebuilt, InMemorySource)
        assert rebuilt.schema.name == source.schema.name
        assert rebuilt.instance.to_dict() == source.instance.to_dict()

    def test_sharded_round_trip(self):
        source = ShardedInMemorySource(
            simple_schema(), simple_instance(), shards=3
        )
        rebuilt = spec_to_source(
            json.loads(json.dumps(source_to_spec(source)))
        )
        assert isinstance(rebuilt, ShardedInMemorySource)
        assert rebuilt.shards == 3
        assert rebuilt.instance.to_dict() == source.instance.to_dict()

    def test_wrapper_stack_round_trip(self):
        inner = InMemorySource(simple_schema(), simple_instance())
        stack = FaultInjectingSource(
            CachingSource(LatencySource(inner, 0.001)),
            FaultPolicy.transient(0.2, seed=7),
        )
        spec = json.loads(json.dumps(source_to_spec(stack)))
        rebuilt = spec_to_source(spec)
        assert isinstance(rebuilt, FaultInjectingSource)
        assert rebuilt.policy.seed == 7
        assert isinstance(rebuilt.inner, CachingSource)
        assert isinstance(rebuilt.inner.inner, LatencySource)
        assert rebuilt.inner.inner.latency == pytest.approx(0.001)

    def test_call_order_dependent_wrappers_rejected(self):
        inner = InMemorySource(simple_schema(), simple_instance())
        with pytest.raises(SourceSpecError):
            source_to_spec(FlakySource(inner, fail_on=(0,)))
        with pytest.raises(SourceSpecError):
            source_to_spec(BudgetedSource(inner, max_invocations=5))

    def test_unknown_spec_rejected(self):
        with pytest.raises(SourceSpecError):
            spec_to_source({"format": "something-else", "version": 1})


# ------------------------------------------------------------------- payload
class TestPayload:
    def test_bindings_round_trip_through_json(self):
        bindings = {Constant("x"): Constant(3), Constant("y"): Constant("z")}
        encoded = json.loads(json.dumps(encode_bindings(bindings)))
        assert decode_bindings(encoded) == bindings
        assert encode_bindings(None) is None
        assert decode_bindings(None) is None

    def test_retry_round_trip(self):
        retry = RetryPolicy(max_attempts=3, base_delay=0.01)
        data = json.loads(json.dumps(retry_to_dict(retry)))
        assert data["max_attempts"] == 3
        assert retry_to_dict(None) is None

    def test_execute_payload_matches_direct_execution(self):
        schema = simple_schema()
        source = InMemorySource(schema, simple_instance())
        plan = simple_plan(schema)
        reference = plan.execute(source)
        payload = json.loads(
            json.dumps({"plan": plan_to_ir(plan), "collect_stats": True})
        )
        result = execute_payload(source, payload)
        assert result["ok"]
        assert canonical(table_from_ir(result["table"])) == canonical(
            reference
        )
        assert result["stats"]["commands"]
        json.dumps(result)  # the response is shippable too

    def test_execute_payload_budget_truncation(self):
        schema = simple_schema()
        source = InMemorySource(schema, simple_instance())
        plan = simple_plan(schema)
        reference = sorted(plan.execute(source).rows)
        budget = ResourceBudget(max_result_rows=3)
        result = execute_payload(
            source, {"plan": plan_to_ir(plan), "budget": budget.as_dict()}
        )
        assert result["ok"]
        assert result["truncated"] == len(reference) - 3
        assert sorted(table_from_ir(result["table"]).rows) == reference[:3]

    def test_execute_payload_reports_typed_error(self):
        schema = simple_schema()
        source = FaultInjectingSource(
            InMemorySource(schema, simple_instance()),
            FaultPolicy(seed=0, outages={"mt_R": 0}),
        )
        result = execute_payload(
            source, {"plan": plan_to_ir(simple_plan(schema))}
        )
        assert not result["ok"]
        assert result["error_type"] == "MethodOutage"
        rebuilt = rebuild_error(result)
        assert isinstance(rebuilt, MethodOutage)

    def test_rebuild_error_falls_back_for_unknown_types(self):
        from repro.errors import ExecutionError

        rebuilt = rebuild_error(
            {"error_type": "NoSuchError", "error": "boom"}
        )
        assert isinstance(rebuilt, ExecutionError)
        # A name that exists but is not a ReproError must not be raised.
        rebuilt = rebuild_error({"error_type": "__name__", "error": "x"})
        assert isinstance(rebuilt, ExecutionError)

    def test_rebuild_budget_error(self):
        rebuilt = rebuild_error(
            {"error_type": "RowBudgetExceeded", "error": "over"}
        )
        assert isinstance(rebuilt, RowBudgetExceeded)


# ------------------------------------------------------------------- merging
class TestMerge:
    def test_merge_unions_with_set_semantics(self):
        schema = simple_schema()
        source = InMemorySource(schema, simple_instance())
        plan = simple_plan(schema)
        table = plan.execute(source)
        half_a = table_to_ir(table)
        merged = merge_answer_tables(
            [{"table": half_a}, {"table": half_a}]
        )
        assert canonical(merged) == canonical(table)

    def test_merge_rejects_attribute_disagreement(self):
        a = {"table": {"attrs": ["x"], "rows": []}}
        b = {"table": {"attrs": ["y"], "rows": []}}
        with pytest.raises(ValueError):
            merge_answer_tables([a, b])


# --------------------------------------------------------------- thread tier
class TestThreadWorkerPool:
    def test_run_request_and_health(self):
        schema = simple_schema()
        source = InMemorySource(schema, simple_instance())
        plan = simple_plan(schema)
        reference = canonical(plan.execute(source))
        with ThreadWorkerPool(source, workers=2) as pool:
            result = pool.run_request({"plan": plan_to_ir(plan)}, timeout=30)
            assert result["ok"]
            assert canonical(table_from_ir(result["table"])) == reference
            health = pool.health()
            assert health["tier"] == "thread"
            assert health["alive"]
            assert health["tasks"] == 1
        assert not pool.alive()
        with pytest.raises(WorkerCrashed):
            pool.run_request({"plan": plan_to_ir(plan)})


# -------------------------------------------------------------- process tier
class TestProcessWorkerPool:
    @pytest.mark.parametrize("start_method", ["spawn", "fork"])
    def test_identical_answers_across_start_methods(self, start_method):
        schema = simple_schema()
        source = InMemorySource(schema, simple_instance())
        plan = simple_plan(schema)
        reference = canonical(plan.execute(source))
        pool = ProcessWorkerPool.for_source(
            source, workers=2, start_method=start_method
        )
        with pool:
            result = pool.run_request(
                {"plan": plan_to_ir(plan)}, timeout=120
            )
            assert result["ok"], result
            assert canonical(table_from_ir(result["table"])) == reference
            health = pool.health()
            assert health["tier"] == "process"
            assert health["start_method"] == start_method
            assert health["crashes"] == 0

    def test_killed_worker_raises_typed_error_and_pool_recovers(self):
        schema = simple_schema()
        source = InMemorySource(schema, simple_instance())
        plan = simple_plan(schema)
        reference = canonical(plan.execute(source))
        pool = ProcessWorkerPool.for_source(
            source, workers=2, start_method="fork"
        )
        with pool:
            # Hard-kill a worker mid-task: the executor breaks.
            future = pool._executor.submit(os._exit, 13)
            with pytest.raises(Exception):
                future.result(timeout=60)
            # The next request surfaces a *typed* failure, not a hang
            # and not a bare concurrent.futures internal error.
            with pytest.raises(WorkerCrashed) as excinfo:
                pool.run_request({"plan": plan_to_ir(plan)}, timeout=60)
            assert excinfo.value.restarts >= 1
            # ... and the pool has already been rebuilt: same request,
            # same bytes, no manual intervention.
            result = pool.run_request({"plan": plan_to_ir(plan)}, timeout=120)
            assert result["ok"], result
            assert canonical(table_from_ir(result["table"])) == reference
            health = pool.health()
            assert health["alive"]
            assert health["crashes"] == 1
            assert health["restarts"] == 1

    def test_run_request_before_start_is_typed(self):
        source = InMemorySource(simple_schema(), simple_instance())
        pool = ProcessWorkerPool.for_source(source, workers=1)
        with pytest.raises(WorkerCrashed):
            pool.run_request({"plan": {}})
