"""The worker-pool execution tier: specs, payloads, pools, recovery.

Everything that crosses the process boundary here is a plain JSON-able
dict -- these tests round-trip each piece through ``json.dumps`` to
prove it, because "it pickled today" is not a compatibility story.
"""

import json
import os
import time

import pytest

from repro.data.decorators import (
    BudgetedSource,
    CachingSource,
    FlakySource,
    LatencySource,
    StormyLatencySource,
)
from repro.data.instance import Instance
from repro.data.source import InMemorySource, ShardedInMemorySource
from repro.errors import (
    MethodOutage,
    PlanCancelled,
    RowBudgetExceeded,
    WorkerCrashed,
    WorkerStalled,
)
from repro.exec.budget import ResourceBudget
from repro.exec.resilience import RetryPolicy
from repro.faults import FaultInjectingSource, FaultPolicy
from repro.logic.terms import Constant
from repro.plans.ir import plan_to_ir, table_from_ir, table_to_ir
from repro.schema.core import SchemaBuilder
from repro.service.service import QueryService
from repro.service.workers import (
    LatencyTracker,
    ProcessWorkerPool,
    SourceSpecError,
    ThreadWorkerPool,
    decode_bindings,
    encode_bindings,
    encoded_plan_ir,
    execute_payload,
    merge_answer_tables,
    rebuild_error,
    retry_to_dict,
    source_to_spec,
    spec_to_source,
)


def simple_schema():
    return (
        SchemaBuilder("workers")
        .relation("R", 2)
        .relation("S", 2)
        .access("mt_R", "R", inputs=[], cost=1.0)
        .access("mt_S", "S", inputs=[], cost=1.0)
        .build()
    )


def simple_instance(n=12):
    return Instance(
        {
            "R": [(f"a{i}", f"b{i % 3}") for i in range(n)],
            "S": [(f"b{i % 3}", f"c{i}") for i in range(n)],
        }
    )


def simple_plan(schema):
    from repro.planner.search import SearchOptions, find_best_plan
    from repro.logic.queries import parse_cq

    result = find_best_plan(
        schema,
        parse_cq("q(a, c) :- R(a, b) & S(b, c)"),
        SearchOptions(max_accesses=4),
    )
    assert result.found
    return result.best_plan


def canonical(table):
    return (table.attributes, tuple(sorted(map(repr, table.rows))))


# ---------------------------------------------------------------- source spec
class TestSourceSpec:
    def test_memory_round_trip_is_jsonable(self):
        source = InMemorySource(simple_schema(), simple_instance())
        spec = json.loads(json.dumps(source_to_spec(source)))
        rebuilt = spec_to_source(spec)
        assert isinstance(rebuilt, InMemorySource)
        assert rebuilt.schema.name == source.schema.name
        assert rebuilt.instance.to_dict() == source.instance.to_dict()

    def test_sharded_round_trip(self):
        source = ShardedInMemorySource(
            simple_schema(), simple_instance(), shards=3
        )
        rebuilt = spec_to_source(
            json.loads(json.dumps(source_to_spec(source)))
        )
        assert isinstance(rebuilt, ShardedInMemorySource)
        assert rebuilt.shards == 3
        assert rebuilt.instance.to_dict() == source.instance.to_dict()

    def test_wrapper_stack_round_trip(self):
        inner = InMemorySource(simple_schema(), simple_instance())
        stack = FaultInjectingSource(
            CachingSource(LatencySource(inner, 0.001)),
            FaultPolicy.transient(0.2, seed=7),
        )
        spec = json.loads(json.dumps(source_to_spec(stack)))
        rebuilt = spec_to_source(spec)
        assert isinstance(rebuilt, FaultInjectingSource)
        assert rebuilt.policy.seed == 7
        assert isinstance(rebuilt.inner, CachingSource)
        assert isinstance(rebuilt.inner.inner, LatencySource)
        assert rebuilt.inner.inner.latency == pytest.approx(0.001)

    def test_storm_wrapper_round_trip(self):
        inner = InMemorySource(simple_schema(), simple_instance())
        storm = StormyLatencySource(
            inner, base_latency=0.001, slow_latency=0.25, slow_every=5
        )
        rebuilt = spec_to_source(
            json.loads(json.dumps(source_to_spec(storm)))
        )
        assert isinstance(rebuilt, StormyLatencySource)
        assert rebuilt.base_latency == pytest.approx(0.001)
        assert rebuilt.slow_latency == pytest.approx(0.25)
        assert rebuilt.slow_every == 5
        # Each rehydrated copy storms on its own schedule (fresh call
        # counter) -- latency-only nondeterminism, answers unchanged.
        assert isinstance(rebuilt.inner, InMemorySource)

    def test_call_order_dependent_wrappers_rejected(self):
        inner = InMemorySource(simple_schema(), simple_instance())
        with pytest.raises(SourceSpecError):
            source_to_spec(FlakySource(inner, fail_on=(0,)))
        with pytest.raises(SourceSpecError):
            source_to_spec(BudgetedSource(inner, max_invocations=5))

    def test_unknown_spec_rejected(self):
        with pytest.raises(SourceSpecError):
            spec_to_source({"format": "something-else", "version": 1})


# ------------------------------------------------------------------- payload
class TestPayload:
    def test_bindings_round_trip_through_json(self):
        bindings = {Constant("x"): Constant(3), Constant("y"): Constant("z")}
        encoded = json.loads(json.dumps(encode_bindings(bindings)))
        assert decode_bindings(encoded) == bindings
        assert encode_bindings(None) is None
        assert decode_bindings(None) is None

    def test_retry_round_trip(self):
        retry = RetryPolicy(max_attempts=3, base_delay=0.01)
        data = json.loads(json.dumps(retry_to_dict(retry)))
        assert data["max_attempts"] == 3
        assert retry_to_dict(None) is None

    def test_execute_payload_matches_direct_execution(self):
        schema = simple_schema()
        source = InMemorySource(schema, simple_instance())
        plan = simple_plan(schema)
        reference = plan.execute(source)
        payload = json.loads(
            json.dumps({"plan": plan_to_ir(plan), "collect_stats": True})
        )
        result = execute_payload(source, payload)
        assert result["ok"]
        assert canonical(table_from_ir(result["table"])) == canonical(
            reference
        )
        assert result["stats"]["commands"]
        json.dumps(result)  # the response is shippable too

    def test_execute_payload_budget_truncation(self):
        schema = simple_schema()
        source = InMemorySource(schema, simple_instance())
        plan = simple_plan(schema)
        reference = sorted(plan.execute(source).rows)
        budget = ResourceBudget(max_result_rows=3)
        result = execute_payload(
            source, {"plan": plan_to_ir(plan), "budget": budget.as_dict()}
        )
        assert result["ok"]
        assert result["truncated"] == len(reference) - 3
        assert sorted(table_from_ir(result["table"]).rows) == reference[:3]

    def test_execute_payload_reports_typed_error(self):
        schema = simple_schema()
        source = FaultInjectingSource(
            InMemorySource(schema, simple_instance()),
            FaultPolicy(seed=0, outages={"mt_R": 0}),
        )
        result = execute_payload(
            source, {"plan": plan_to_ir(simple_plan(schema))}
        )
        assert not result["ok"]
        assert result["error_type"] == "MethodOutage"
        rebuilt = rebuild_error(result)
        assert isinstance(rebuilt, MethodOutage)

    def test_rebuild_error_falls_back_for_unknown_types(self):
        from repro.errors import ExecutionError

        rebuilt = rebuild_error(
            {"error_type": "NoSuchError", "error": "boom"}
        )
        assert isinstance(rebuilt, ExecutionError)
        # A name that exists but is not a ReproError must not be raised.
        rebuilt = rebuild_error({"error_type": "__name__", "error": "x"})
        assert isinstance(rebuilt, ExecutionError)

    def test_rebuild_budget_error(self):
        rebuilt = rebuild_error(
            {"error_type": "RowBudgetExceeded", "error": "over"}
        )
        assert isinstance(rebuilt, RowBudgetExceeded)


# ------------------------------------------------------------------- merging
class TestMerge:
    def test_merge_unions_with_set_semantics(self):
        schema = simple_schema()
        source = InMemorySource(schema, simple_instance())
        plan = simple_plan(schema)
        table = plan.execute(source)
        half_a = table_to_ir(table)
        merged = merge_answer_tables(
            [{"table": half_a}, {"table": half_a}]
        )
        assert canonical(merged) == canonical(table)

    def test_merge_rejects_attribute_disagreement(self):
        a = {"table": {"attrs": ["x"], "rows": []}}
        b = {"table": {"attrs": ["y"], "rows": []}}
        with pytest.raises(ValueError):
            merge_answer_tables([a, b])


# --------------------------------------------------------------- thread tier
class TestThreadWorkerPool:
    def test_run_request_and_health(self):
        schema = simple_schema()
        source = InMemorySource(schema, simple_instance())
        plan = simple_plan(schema)
        reference = canonical(plan.execute(source))
        with ThreadWorkerPool(source, workers=2) as pool:
            result = pool.run_request({"plan": plan_to_ir(plan)}, timeout=30)
            assert result["ok"]
            assert canonical(table_from_ir(result["table"])) == reference
            health = pool.health()
            assert health["tier"] == "thread"
            assert health["alive"]
            assert health["tasks"] == 1
        assert not pool.alive()
        with pytest.raises(WorkerCrashed):
            pool.run_request({"plan": plan_to_ir(plan)})


# -------------------------------------------------------------- process tier
class TestProcessWorkerPool:
    @pytest.mark.parametrize("start_method", ["spawn", "fork"])
    def test_identical_answers_across_start_methods(self, start_method):
        schema = simple_schema()
        source = InMemorySource(schema, simple_instance())
        plan = simple_plan(schema)
        reference = canonical(plan.execute(source))
        pool = ProcessWorkerPool.for_source(
            source, workers=2, start_method=start_method
        )
        with pool:
            result = pool.run_request(
                {"plan": plan_to_ir(plan)}, timeout=120
            )
            assert result["ok"], result
            assert canonical(table_from_ir(result["table"])) == reference
            health = pool.health()
            assert health["tier"] == "process"
            assert health["start_method"] == start_method
            assert health["crashes"] == 0

    def test_killed_worker_raises_typed_error_and_pool_recovers(self):
        schema = simple_schema()
        source = InMemorySource(schema, simple_instance())
        plan = simple_plan(schema)
        reference = canonical(plan.execute(source))
        pool = ProcessWorkerPool.for_source(
            source, workers=2, start_method="fork"
        )
        with pool:
            # Hard-kill a worker mid-task: the executor breaks.
            future = pool._executor.submit(os._exit, 13)
            with pytest.raises(Exception):
                future.result(timeout=60)
            # The next request surfaces a *typed* failure, not a hang
            # and not a bare concurrent.futures internal error.
            with pytest.raises(WorkerCrashed) as excinfo:
                pool.run_request({"plan": plan_to_ir(plan)}, timeout=60)
            assert excinfo.value.restarts >= 1
            # ... and the pool has already been rebuilt: same request,
            # same bytes, no manual intervention.
            result = pool.run_request({"plan": plan_to_ir(plan)}, timeout=120)
            assert result["ok"], result
            assert canonical(table_from_ir(result["table"])) == reference
            health = pool.health()
            assert health["alive"]
            assert health["crashes"] == 1
            assert health["restarts"] == 1

    def test_run_request_before_start_is_typed(self):
        source = InMemorySource(simple_schema(), simple_instance())
        pool = ProcessWorkerPool.for_source(source, workers=1)
        with pytest.raises(WorkerCrashed):
            pool.run_request({"plan": {}})


# ------------------------------------------------------------ latency tracker
class TestLatencyTracker:
    def test_cold_tracker_answers_initial_delay(self):
        tracker = LatencyTracker(initial_delay=0.07, warmup=3)
        assert tracker.hedge_delay() == pytest.approx(0.07)
        tracker.observe(0.5)
        tracker.observe(0.5)
        # Still inside warmup: two of three samples seen.
        assert tracker.hedge_delay() == pytest.approx(0.07)

    def test_p95_tracks_the_tail_not_the_mean(self):
        tracker = LatencyTracker(warmup=1)
        for _ in range(200):
            tracker.observe(0.01)
        for _ in range(20):
            tracker.observe(1.0)
        snapshot = tracker.as_dict()
        # The spikes pull the quantile estimate well above the fast
        # mass even though they are a minority of samples.
        assert snapshot["p95"] > snapshot["mean"] * 0.5
        assert tracker.hedge_delay() >= snapshot["p95"] * 0.9 or (
            tracker.hedge_delay() == tracker.max_delay
        )

    def test_hedge_delay_is_clamped(self):
        tracker = LatencyTracker(warmup=1, min_delay=0.05, max_delay=0.2)
        tracker.observe(0.0001)
        assert tracker.hedge_delay() == pytest.approx(0.05)
        for _ in range(50):
            tracker.observe(30.0)
        assert tracker.hedge_delay() == pytest.approx(0.2)

    def test_negative_samples_are_ignored(self):
        tracker = LatencyTracker()
        tracker.observe(-1.0)
        assert tracker.samples == 0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            LatencyTracker(alpha=0.0)
        with pytest.raises(ValueError):
            LatencyTracker(quantile=1.0)


# ------------------------------------------------------------------ watchdog
class TestWatchdog:
    def test_thread_pool_stall_surfaces_typed_worker_stalled(self):
        schema = simple_schema()
        source = StormyLatencySource(
            InMemorySource(schema, simple_instance()),
            base_latency=0.0,
            slow_latency=0.4,
            slow_every=1,  # every access stalls
        )
        plan = simple_plan(schema)
        with ThreadWorkerPool(source, workers=2, watchdog_seconds=0.1) as pool:
            with pytest.raises(WorkerStalled) as excinfo:
                pool.run_request({"plan": plan_to_ir(plan)}, timeout=30)
            # Threads cannot be killed: the slot leaks, and says so.
            assert not excinfo.value.killed
            health = pool.health()
            assert health["stalls"] == 1
            assert health["watchdog_seconds"] == pytest.approx(0.1)

    def test_process_pool_watchdog_kills_and_pool_recovers(self):
        schema = simple_schema()
        source = StormyLatencySource(
            InMemorySource(schema, simple_instance()),
            base_latency=0.0,
            slow_latency=30.0,
            slow_every=3,  # each worker's third access hangs
        )
        plan = simple_plan(schema)
        reference = canonical(plan.execute(source))
        pool = ProcessWorkerPool.for_source(
            source, workers=1, start_method="fork", watchdog_seconds=0.5
        )
        with pool:
            # Request 1: accesses 1-2 on the single worker, both fast.
            result = pool.run_request({"plan": plan_to_ir(plan)}, timeout=60)
            assert result["ok"]
            # Request 2: access 3 sleeps 30s; the watchdog reclaims the
            # slot in 0.5s with a typed, killed=True stall.
            with pytest.raises(WorkerStalled) as excinfo:
                pool.run_request({"plan": plan_to_ir(plan)}, timeout=60)
            assert excinfo.value.killed
            # Request 3: the recreated worker starts a fresh storm
            # counter, so the same request now succeeds -- same bytes.
            result = pool.run_request({"plan": plan_to_ir(plan)}, timeout=60)
            assert result["ok"]
            assert canonical(table_from_ir(result["table"])) == reference
            health = pool.health()
            assert health["alive"]
            assert health["stalls"] == 1
            assert health["watchdog_kills"] == 1
            assert health["restarts"] == 1

    def test_watchdog_seconds_must_be_positive(self):
        source = InMemorySource(simple_schema(), simple_instance())
        with pytest.raises(ValueError):
            ThreadWorkerPool(source, watchdog_seconds=0.0)
        with pytest.raises(ValueError):
            ProcessWorkerPool.for_source(source, hedge_delay=-1.0)


# ------------------------------------------------------------------- hedging
class TestHedging:
    def test_hedge_duplicate_wins_against_a_slow_primary(self):
        schema = simple_schema()
        source = StormyLatencySource(
            InMemorySource(schema, simple_instance()),
            base_latency=0.0,
            slow_latency=0.5,
            slow_every=3,
        )
        plan = simple_plan(schema)
        reference = canonical(plan.execute(InMemorySource(schema, simple_instance())))
        with ThreadWorkerPool(
            source, workers=2, hedge=True, hedge_delay=0.05
        ) as pool:
            assert pool.hedge_delay() == pytest.approx(0.05)
            # Request 1: accesses 1-2 both fast -- answered before the
            # hedge delay, so no duplicate is issued.
            result = pool.run_request({"plan": plan_to_ir(plan)}, timeout=30)
            assert result["ok"]
            assert pool.health()["hedges"] == 0
            # Request 2: access 3 sleeps 0.5s; the duplicate issued at
            # 0.05s runs accesses 4-5 (fast) and wins.
            result = pool.run_request({"plan": plan_to_ir(plan)}, timeout=30)
            assert result["ok"]
            assert canonical(table_from_ir(result["table"])) == reference
            health = pool.health()
            assert health["hedges"] == 1
            assert health["hedge_wins"] == 1
            assert health["hedge_waste"] == 0

    def test_outrun_hedge_is_counted_as_waste(self):
        schema = simple_schema()
        source = StormyLatencySource(
            InMemorySource(schema, simple_instance()),
            base_latency=0.0,
            slow_latency=0.3,
            slow_every=1,  # duplicates are just as slow as primaries
        )
        plan = simple_plan(schema)
        with ThreadWorkerPool(
            source, workers=2, hedge=True, hedge_delay=0.05
        ) as pool:
            result = pool.run_request({"plan": plan_to_ir(plan)}, timeout=30)
            assert result["ok"]
            health = pool.health()
            # The primary had a head start over the equally slow
            # duplicate, so it finished first: the hedge was waste.
            assert health["hedges"] == 1
            assert health["hedge_wins"] == 0
            assert health["hedge_waste"] == 1

    def test_hedging_disabled_issues_no_duplicates(self):
        schema = simple_schema()
        source = InMemorySource(schema, simple_instance())
        plan = simple_plan(schema)
        with ThreadWorkerPool(source, workers=2) as pool:
            pool.run_request({"plan": plan_to_ir(plan)}, timeout=30)
            health = pool.health()
            assert health["hedge"] is False
            assert health["hedges"] == 0
            # The adaptive delay is still tracked for health visibility.
            assert health["latency"]["samples"] == 1


# -------------------------------------------------------- hedge cancellation
class TestHedgeCancellation:
    """Satellite: a losing duplicate is flagged down, not left running."""

    def test_running_loser_gets_its_token_set_and_is_counted(self):
        schema = simple_schema()
        source = StormyLatencySource(
            InMemorySource(schema, simple_instance()),
            base_latency=0.0,
            slow_latency=0.5,
            slow_every=3,
        )
        plan = simple_plan(schema)
        with ThreadWorkerPool(
            source, workers=2, hedge=True, hedge_delay=0.05
        ) as pool:
            # Request 1 is fast (accesses 1-2): no hedge, nothing to
            # cancel.  Request 2's primary sleeps 0.5s on access 3;
            # the duplicate wins, and the still-running primary gets
            # its cancellation token set instead of a silent leak.
            pool.run_request({"plan": plan_to_ir(plan)}, timeout=30)
            result = pool.run_request({"plan": plan_to_ir(plan)}, timeout=30)
            assert result["ok"]
            health = pool.health()
            assert health["hedge_wins"] == 1
            assert health["hedge_cancelled"] == 1
            # The flagged loser frees its slot: both workers answer a
            # follow-up promptly instead of one being wedged.
            result = pool.run_request({"plan": plan_to_ir(plan)}, timeout=30)
            assert result["ok"]

    def test_cancel_token_stops_plan_execution_between_commands(self):
        import threading

        schema = simple_schema()
        source = InMemorySource(schema, simple_instance())
        plan = simple_plan(schema)
        token = threading.Event()
        token.set()
        with pytest.raises(PlanCancelled):
            plan.execute(source, cancel=token)


# ------------------------------------------------------- encoded-plan memo
class TestEncodedPlanMemo:
    """Satellite: hot plans are IR-encoded once, not once per dispatch."""

    def test_encoding_is_memoized_and_faithful(self):
        schema = simple_schema()
        plan = simple_plan(schema)
        first = encoded_plan_ir(plan)
        assert encoded_plan_ir(plan) is first
        assert first == plan_to_ir(plan)
        # Memoized payloads still cross the boundary as plain JSON.
        assert json.loads(json.dumps(first)) == first


# -------------------------------------------- partial markings across the tier
class TestPartialMarkingsAcrossTier:
    """Satellite: ``partial``/``truncated_rows`` survive the tier path.

    The markings are computed worker-side (the budget lives in the
    payload), cross back as plain JSON, and must land on the
    :class:`QueryResponse` exactly as the in-process path would set
    them -- on both tiers and both process start methods, and even when
    a worker crash lands mid-burst.
    """

    def _expected(self, schema):
        plan = simple_plan(schema)
        source = InMemorySource(schema, simple_instance())
        return plan, sorted(plan.execute(source).rows)

    def _assert_marked(self, response, reference, keep):
        assert response.error is None
        assert response.partial is True
        assert response.complete is False
        assert response.truncated_rows == len(reference) - keep
        assert sorted(response.table.rows) == reference[:keep]

    def test_thread_tier_marks_truncation_end_to_end(self):
        schema = simple_schema()
        plan, reference = self._expected(schema)
        source = InMemorySource(schema, simple_instance())
        pool = ThreadWorkerPool(source, workers=2)
        service = QueryService(source, workers=2, worker_pool=pool)
        with service:
            response = service.serve(
                plan, budget=ResourceBudget(max_result_rows=3), timeout=30
            )
            self._assert_marked(response, reference, 3)

    @pytest.mark.parametrize("start_method", ["spawn", "fork"])
    def test_process_tier_marks_truncation_end_to_end(self, start_method):
        schema = simple_schema()
        plan, reference = self._expected(schema)
        source = InMemorySource(schema, simple_instance())
        pool = ProcessWorkerPool.for_source(
            source, workers=2, start_method=start_method
        )
        service = QueryService(source, workers=2, worker_pool=pool)
        with service:
            response = service.serve(
                plan, budget=ResourceBudget(max_result_rows=3), timeout=120
            )
            self._assert_marked(response, reference, 3)
            # An unbudgeted request through the same tier is complete
            # and unmarked -- truncation state never leaks across
            # requests.
            clean = service.serve(plan, timeout=120)
            assert clean.complete is True
            assert clean.partial is False
            assert clean.truncated_rows == 0

    def test_markings_survive_a_mid_burst_worker_crash(self):
        schema = simple_schema()
        plan, reference = self._expected(schema)
        source = InMemorySource(schema, simple_instance())
        pool = ProcessWorkerPool.for_source(
            source, workers=2, start_method="fork"
        )
        service = QueryService(source, workers=2, worker_pool=pool)
        with service:
            before = service.serve(
                plan, budget=ResourceBudget(max_result_rows=3), timeout=120
            )
            self._assert_marked(before, reference, 3)
            # Hard-kill a worker, then keep serving budget requests:
            # the crash surfaces typed on at most the requests it hit,
            # and every surviving answer still carries its markings.
            pool._executor.submit(os._exit, 13)
            tickets = [
                service.submit(
                    plan,
                    budget=ResourceBudget(max_result_rows=3),
                    deadline=120,
                )
                for _ in range(4)
            ]
            crashed = 0
            for ticket in tickets:
                response = ticket.result(timeout=130)
                if response.error is not None:
                    assert isinstance(response.error, WorkerCrashed)
                    crashed += 1
                else:
                    self._assert_marked(response, reference, 3)
            # Give the executor a beat to notice the corpse, then prove
            # the recovered pool serves marked answers again.
            time.sleep(0.3)
            after = service.serve(
                plan, budget=ResourceBudget(max_result_rows=3), timeout=120
            )
            if after.error is not None:
                # The crash surfaced here instead: typed, and the pool
                # was recreated by the same call -- retry once.
                assert isinstance(after.error, WorkerCrashed)
                after = service.serve(
                    plan, budget=ResourceBudget(max_result_rows=3), timeout=120
                )
            self._assert_marked(after, reference, 3)
            assert pool.health()["crashes"] >= 1
            assert pool.health()["restarts"] >= 1
