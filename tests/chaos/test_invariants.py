"""The chaos invariant checkers themselves: they must catch breaches."""

from repro.chaos.invariants import verify_accounting, verify_response
from repro.errors import DeadlineExceeded
from repro.plans.expressions import NamedTable
from repro.service.request import QueryResponse

ORACLE = frozenset({("a", "c1"), ("a", "c2")})


def table(rows):
    return NamedTable(("x", "y"), frozenset(rows))


class TestVerifyResponse:
    def test_complete_matching_oracle_is_clean(self):
        response = QueryResponse("q1", table=table(ORACLE), complete=True)
        assert verify_response(response, ORACLE) == []

    def test_complete_divergence_is_a_soundness_violation(self):
        rows = {("a", "c1"), ("a", "WRONG")}
        response = QueryResponse("q1", table=table(rows), complete=True)
        violations = verify_response(response, ORACLE)
        assert [v.invariant for v in violations] == ["soundness"]
        assert "1 missing, 1 extra" in violations[0].detail

    def test_partial_subset_is_clean(self):
        response = QueryResponse(
            "q1", table=table({("a", "c1")}), complete=False, partial=True
        )
        assert verify_response(response, ORACLE) == []

    def test_partial_with_alien_rows_is_a_soundness_violation(self):
        response = QueryResponse(
            "q1",
            table=table({("a", "ALIEN")}),
            complete=False,
            partial=True,
        )
        violations = verify_response(response, ORACLE)
        assert [v.invariant for v in violations] == ["soundness"]

    def test_unmarked_answer_is_a_typed_violation(self):
        response = QueryResponse(
            "q1", table=table(ORACLE), complete=False, partial=False
        )
        violations = verify_response(response, ORACLE)
        assert [v.invariant for v in violations] == ["typed"]

    def test_typed_error_is_clean_untyped_is_not(self):
        typed = QueryResponse("q1", error=DeadlineExceeded("late"))
        assert verify_response(typed, ORACLE) == []
        untyped = QueryResponse("q1", error=RuntimeError("boom"))
        violations = verify_response(untyped, ORACLE)
        assert [v.invariant for v in violations] == ["typed"]
        assert "RuntimeError" in violations[0].detail


class TestVerifyAccounting:
    HEALTH = {"served": 5, "shed": 2}

    def test_balanced_books_are_clean(self):
        outcomes = {
            "complete": 3,
            "partial": 1,
            "failed": 1,
            "shed": 1,
            "rejected": 1,
        }
        assert verify_accounting(7, outcomes, self.HEALTH) == []

    def test_lost_request_is_caught(self):
        outcomes = {"complete": 3, "partial": 1, "failed": 1, "shed": 2}
        violations = verify_accounting(8, outcomes, self.HEALTH)
        assert any("8 submitted" in v.detail for v in violations)

    def test_served_mismatch_is_caught(self):
        outcomes = {"complete": 4, "shed": 2}
        violations = verify_accounting(6, outcomes, self.HEALTH)
        assert any("served=5" in v.detail for v in violations)

    def test_shed_mismatch_is_caught(self):
        outcomes = {"complete": 5, "shed": 1}
        violations = verify_accounting(6, outcomes, self.HEALTH)
        assert any("shed=2" in v.detail for v in violations)
