"""The eight-scenario chaos matrix: every run terminates, typed, sound.

Each test runs one deterministic scenario end-to-end against a live
service and asserts (a) the report is clean -- zero hangs, zero
invariant violations, which covers the accounting identity and
oracle-exactness -- and (b) the scenario-specific counters prove the
chaos actually happened (a scenario that injected nothing proves
nothing).
"""

import pytest

from repro.chaos import SCENARIOS, run_matrix, run_scenario


def assert_clean(report):
    assert report.hangs == 0, report.summary()
    assert report.violations == [], [str(v) for v in report.violations]
    assert report.ok


class TestScenarioMatrix:
    def test_matrix_names(self):
        assert SCENARIOS == (
            "worker_kill",
            "worker_stall",
            "latency_storm",
            "burst_outage",
            "permanent_outage",
            "http_rate_limit_storm",
            "sqlite_disconnect",
            "disk_corruption",
        )

    def test_unknown_scenario_is_a_value_error(self):
        with pytest.raises(ValueError, match="unknown chaos scenario"):
            run_scenario("meteor_strike")

    def test_run_matrix_subset_preserves_order(self):
        reports = run_matrix(
            names=["disk_corruption", "burst_outage"], quick=True
        )
        assert [r.scenario for r in reports] == [
            "disk_corruption",
            "burst_outage",
        ]
        for report in reports:
            assert_clean(report)


class TestWorkerKill:
    def test_killed_worker_is_typed_and_recovered(self):
        report = run_scenario("worker_kill", seed=0, quick=True)
        assert_clean(report)
        tier = report.details["tier"]
        assert tier["crashes"] >= 1
        assert tier["restarts"] >= 1
        # The kill cost at least one request, typed -- and the
        # recreated pool served the follow-up burst clean.
        assert report.error_types.get("WorkerCrashed", 0) >= 1
        assert report.outcomes["complete"] >= 3


class TestWorkerStall:
    def test_watchdog_kills_and_recycles_the_stuck_pool(self):
        report = run_scenario("worker_stall", seed=0, quick=True)
        assert_clean(report)
        tier = report.details["tier"]
        assert tier["stalls"] >= 1
        assert tier["watchdog_kills"] >= 1
        assert report.error_types.get("WorkerStalled", 0) >= 1
        # The 30s storm never shows up in the wall clock: the watchdog
        # bound (0.5s) is what stalled requests actually cost.
        assert report.elapsed < 30.0
        assert report.outcomes["complete"] >= 1


class TestLatencyStorm:
    def test_hedging_rides_out_the_storm_with_identical_answers(self):
        report = run_scenario("latency_storm", seed=0, quick=True)
        assert_clean(report)
        # Every single answer matched the oracle (assert_clean), and
        # the tail was actually hedged, not just lucky.
        assert report.outcomes["complete"] == report.submitted
        tier = report.details["tier"]
        assert tier["hedges"] >= 1
        assert tier["hedges"] == tier["hedge_wins"] + tier["hedge_waste"]


class TestBurstOutage:
    def test_retries_defeat_bursty_faults_with_zero_client_impact(self):
        report = run_scenario("burst_outage", seed=0, quick=True)
        assert_clean(report)
        assert report.outcomes["complete"] == report.submitted
        assert report.details["faults"]["injected_total"] >= 1


class TestPermanentOutage:
    def test_one_outage_one_replan_then_recovery(self):
        report = run_scenario("permanent_outage", seed=0, quick=True)
        assert_clean(report)
        # Exactly one request paid for the outage...
        assert report.outcomes["failed"] == 1
        # ...exactly one re-plan followed (the degraded cache key
        # missed once; every later request hit it)...
        assert report.details["during_outage"]["replans"] == 1
        assert report.details["during_outage"]["dead_methods"] == [
            "primary_R"
        ]
        # ...the degraded regime was visibly flagged on responses...
        assert report.details["degraded_responses"] >= 1
        # ...and recovery emptied the dead set without a new search.
        final = report.health["method_health"]
        assert final["dead_methods"] == []
        assert final["recoveries"] == 1
        assert final["replans"] == 1


class TestHttpRateLimitStorm:
    def test_storm_trips_policing_yet_every_answer_is_exact(self):
        report = run_scenario("http_rate_limit_storm", seed=0, quick=True)
        assert_clean(report)
        assert report.outcomes["complete"] == report.submitted
        # The storm genuinely tripped the server's policing...
        assert report.details["transport"]["over_budget"] >= 1
        # ...and every 429 was ridden out via Retry-After, client-side.
        assert report.details["retry_after_waits"] >= 1


class TestSqliteDisconnect:
    def test_mid_plan_disconnects_reconnect_to_the_same_snapshot(self):
        report = run_scenario("sqlite_disconnect", seed=0, quick=True)
        assert_clean(report)
        assert report.outcomes["complete"] == report.submitted
        # The connection was severed mid-plan, repeatedly, and every
        # reconnect reloaded the same epoch (assert_clean covers the
        # oracle identity).
        assert report.details["reconnects"] >= 1
        assert report.details["statements"] >= 2


class TestDiskCorruption:
    def test_corruption_is_quarantined_and_serving_continues(self):
        report = run_scenario("disk_corruption", seed=0, quick=True)
        assert_clean(report)
        assert report.outcomes["complete"] == report.submitted
        assert report.details["plan_cache"]["quarantined"] >= 1
        assert report.details["calibration"]["quarantined"] >= 1
        # Generation 2 re-planned exactly once after the quarantine.
        assert report.health["planned"] == 1
