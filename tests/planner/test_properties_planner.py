"""Property-based tests for the planner."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.data.generators import random_instance
from repro.data.source import InMemorySource
from repro.logic.queries import cq
from repro.planner.proof_to_plan import ChaseProof, plan_from_proof
from repro.planner.search import SearchOptions, find_best_plan
from repro.scenarios import example5
from repro.schema.accessible import AccessibleSchema, Variant
from repro.schema.core import SchemaBuilder


@given(st.permutations(range(3)), st.integers(0, 5))
@settings(max_examples=20, deadline=None)
def test_any_source_permutation_yields_equivalent_plan(order, seed):
    """Exposing the redundant sources in any order (then Profinfo) gives
    a complete plan computing the same answer."""
    scenario = example5(sources=3, professors=5, noise_per_source=5)
    acc = AccessibleSchema(scenario.schema, Variant.FORWARD)
    # Discover the canonical exposures once via an exhaustive search.
    full = find_best_plan(
        scenario.schema,
        scenario.query,
        SearchOptions(
            max_accesses=4,
            prune_by_cost=False,
            domination=False,
            collect_tree=True,
            candidate_order="method",
        ),
    )
    node = next(
        n for n in full.tree if n.successful and len(n.exposures) == 4
    )
    sources = list(node.exposures[:3])
    profinfo = node.exposures[3]
    permuted = tuple(sources[i] for i in order) + (profinfo,)
    plan = plan_from_proof(acc, ChaseProof(scenario.query, permuted))
    instance = scenario.instance(seed)
    truth = instance.evaluate(scenario.query)
    output = plan.run(InMemorySource(scenario.schema, instance))
    assert bool(output.rows) == bool(truth)


@given(st.integers(1, 4), st.integers(0, 3))
@settings(max_examples=16, deadline=None)
def test_partial_source_subsets_all_complete(prefix_len, seed):
    """Any non-empty prefix of sources before Profinfo stays complete."""
    scenario = example5(sources=4, professors=5, noise_per_source=5)
    acc = AccessibleSchema(scenario.schema, Variant.FORWARD)
    full = find_best_plan(
        scenario.schema,
        scenario.query,
        SearchOptions(
            max_accesses=5,
            prune_by_cost=False,
            domination=False,
            collect_tree=True,
            candidate_order="method",
        ),
    )
    node = next(
        n for n in full.tree if n.successful and len(n.exposures) == 5
    )
    exposures = node.exposures[:prefix_len] + (node.exposures[-1],)
    plan = plan_from_proof(acc, ChaseProof(scenario.query, exposures))
    instance = scenario.instance(seed)
    truth = instance.evaluate(scenario.query)
    output = plan.run(InMemorySource(scenario.schema, instance))
    assert bool(output.rows) == bool(truth)


@given(st.integers(0, 100))
@settings(max_examples=25, deadline=None)
def test_search_deterministic(seed):
    """Same inputs, same best plan -- the search has no hidden state."""
    scenario = example5(sources=3)
    a = find_best_plan(
        scenario.schema, scenario.query, SearchOptions(max_accesses=4)
    )
    b = find_best_plan(
        scenario.schema, scenario.query, SearchOptions(max_accesses=4)
    )
    assert a.best_cost == b.best_cost
    assert a.best_plan.methods_used() == b.best_plan.methods_used()
    assert a.stats.nodes_created == b.stats.nodes_created


@given(st.floats(0.1, 20.0), st.floats(0.1, 20.0), st.floats(0.1, 20.0))
@settings(max_examples=30, deadline=None)
def test_best_cost_is_min_over_source_subsets(c1, c2, c3):
    """For the 3-source family the optimum has a closed form."""
    profinfo_cost = 5.0
    scenario = example5(
        sources=3, source_costs=[c1, c2, c3], profinfo_cost=profinfo_cost
    )
    result = find_best_plan(
        scenario.schema, scenario.query, SearchOptions(max_accesses=4)
    )
    assert result.best_cost == pytest.approx(
        min(c1, c2, c3) + profinfo_cost
    )


@given(st.integers(0, 50))
@settings(max_examples=20, deadline=None)
def test_plan_state_attribute_monotonicity(seed):
    """Attributes only grow along any exposure sequence the search makes."""
    scenario = example5(sources=3)
    result = find_best_plan(
        scenario.schema,
        scenario.query,
        SearchOptions(max_accesses=4, collect_tree=True),
    )
    by_id = {node.node_id: node for node in result.tree}
    rng = random.Random(seed)
    nodes = [n for n in result.tree if n.parent_id is not None]
    node = rng.choice(nodes)
    parent = by_id[node.parent_id]
    assert parent.state.attributes <= node.state.attributes
    assert (
        node.state.access_command_count
        >= parent.state.access_command_count
    )
