"""The fingerprint-keyed plan cache: keys, LRU, disk tier, goldens.

The cache key must cover the *entire* planning problem (canonical
query, schema fingerprint, cost-model identity): these tests pin the
key components as golden hex strings so an accidental change to any
ingredient -- which would silently serve stale plans across processes
or restarts -- fails loudly here instead.
"""

import json
import os

import pytest

from repro.cost.functions import (
    CardinalityCostFunction,
    CostFunction,
    SimpleCostFunction,
)
from repro.logic.queries import parse_cq
from repro.planner import (
    CachedPlan,
    PlanCache,
    canonical_query_text,
    find_best_plan,
    plan_cache_key,
)
from repro.planner.plan_cache import entry_checksum
from repro.planner.search import SearchOptions
from repro.schema.core import SchemaBuilder
from repro.schema.serialize import schema_fingerprint


def golden_schema():
    return (
        SchemaBuilder("golden")
        .relation("R", 2)
        .relation("S", 2)
        .access("mt_R", "R", inputs=[], cost=1.0)
        .access("mt_S", "S", inputs=[0], cost=2.0)
        .build()
    )


def join_query(name="q"):
    return parse_cq(f"{name}(a, c) :- R(a, b) & S(b, c)")


def best_plan(schema, query):
    result = find_best_plan(schema, query, SearchOptions(max_accesses=4))
    assert result.found
    return result.best_plan, result.best_cost


# ------------------------------------------------------------------ the key
class TestCacheKey:
    def test_canonical_text_excludes_query_name(self):
        assert canonical_query_text(join_query("q")) == canonical_query_text(
            join_query("renamed")
        )
        assert plan_cache_key(
            join_query("q"), golden_schema()
        ) == plan_cache_key(join_query("renamed"), golden_schema())

    def test_different_query_different_key(self):
        schema = golden_schema()
        other = parse_cq("q(x, y) :- R(x, y)")
        assert plan_cache_key(join_query(), schema) != plan_cache_key(
            other, schema
        )

    def test_different_schema_different_key(self):
        changed = (
            SchemaBuilder("golden")
            .relation("R", 2)
            .relation("S", 2)
            .access("mt_R", "R", inputs=[], cost=1.0)
            .access("mt_S", "S", inputs=[0], cost=99.0)  # only a cost knob
            .build()
        )
        assert plan_cache_key(join_query(), golden_schema()) != (
            plan_cache_key(join_query(), changed)
        )

    def test_different_cost_model_different_key(self):
        schema = golden_schema()
        query = join_query()
        assert plan_cache_key(query, schema) != plan_cache_key(
            query, schema, SimpleCostFunction({"mt_R": 1.0})
        )
        assert plan_cache_key(
            query, schema, SimpleCostFunction({"mt_R": 1.0})
        ) != plan_cache_key(
            query, schema, SimpleCostFunction({"mt_R": 2.0})
        )

    def test_atom_order_is_preserved_not_normalized(self):
        # Reordering atoms may change the key -- that is at most a
        # cache miss, never a wrong plan, and it keeps the canonical
        # text trivially injective on the atom sequence.
        schema = golden_schema()
        reordered = parse_cq("q(a, c) :- S(b, c) & R(a, b)")
        assert plan_cache_key(join_query(), schema) != plan_cache_key(
            reordered, schema
        )


class TestGoldenPins:
    """Golden values: changing any serialization breaks these on purpose."""

    def test_schema_fingerprint_pinned(self):
        assert (
            schema_fingerprint(golden_schema())
            == "3912532a63e6195cc72b4bf792b6f0df"
        )
        assert golden_schema().fingerprint() == schema_fingerprint(
            golden_schema()
        )

    def test_canonical_query_text_pinned(self):
        assert (
            canonical_query_text(join_query())
            == "(?a,?c) :- R(?a,?b) & S(?b,?c)"
        )

    def test_plan_cache_key_pinned(self):
        assert (
            plan_cache_key(join_query(), golden_schema())
            == "db09b8d604a76c8a40a8b8a2210daa42"
        )
        assert (
            plan_cache_key(
                join_query(),
                golden_schema(),
                SimpleCostFunction({"mt_R": 1.0}, default=3.0),
            )
            == "1034e68c8ffce4ff162182f4aeb2dcf5"
        )

    def test_cost_identity_pinned(self):
        assert SimpleCostFunction({"mt_R": 1.0}, default=3.0).identity() == {
            "kind": "SimpleCostFunction",
            "per_method": {"mt_R": 1.0},
            "default": 3.0,
        }
        identity = CardinalityCostFunction({"R": 10}).identity()
        assert identity["kind"] == "CardinalityCostFunction"
        assert identity["relation_cardinality"] == {"R": 10}
        base = CostFunction()
        assert base.identity() == {"kind": "CostFunction"}


# ------------------------------------------------------------------ the LRU
class TestMemoryTier:
    def test_hit_returns_stored_plan(self):
        schema = golden_schema()
        query = join_query()
        plan, cost = best_plan(schema, query)
        cache = PlanCache(capacity=4)
        key = plan_cache_key(query, schema)
        assert cache.get(key) is None
        cache.put(key, plan, cost)
        hit = cache.get(key)
        assert isinstance(hit, CachedPlan)
        assert hit.plan.describe() == plan.describe()
        assert hit.cost == cost
        counters = cache.counters()
        assert counters["hits"] == 1
        assert counters["misses"] == 1
        assert counters["stores"] == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_lru_evicts_least_recently_used(self):
        schema = golden_schema()
        plan, cost = best_plan(schema, join_query())
        cache = PlanCache(capacity=2)
        cache.put("k1", plan, cost)
        cache.put("k2", plan, cost)
        assert cache.get("k1") is not None  # refresh k1
        cache.put("k3", plan, cost)  # evicts k2
        assert cache.get("k2") is None
        assert cache.get("k1") is not None
        assert cache.get("k3") is not None

    def test_invalidate_counts(self):
        schema = golden_schema()
        plan, cost = best_plan(schema, join_query())
        cache = PlanCache(capacity=2)
        cache.put("k1", plan, cost)
        assert cache.invalidate("k1")
        assert not cache.invalidate("k1")
        assert cache.get("k1") is None
        assert cache.counters()["invalidations"] == 1


# ----------------------------------------------------------------- disk tier
class TestDiskTier:
    def test_fresh_cache_reads_from_disk(self, tmp_path):
        schema = golden_schema()
        query = join_query()
        plan, cost = best_plan(schema, query)
        key = plan_cache_key(query, schema)
        PlanCache(directory=str(tmp_path)).put(key, plan, cost)
        fresh = PlanCache(directory=str(tmp_path))
        hit = fresh.get(key)
        assert hit is not None
        assert hit.plan.describe() == plan.describe()
        counters = fresh.counters()
        assert counters["disk_hits"] == 1
        # A second get is served from memory (the disk hit promoted it).
        assert fresh.get(key) is not None
        assert fresh.counters()["disk_hits"] == 1

    def test_entries_are_versioned_json(self, tmp_path):
        schema = golden_schema()
        query = join_query()
        plan, cost = best_plan(schema, query)
        key = plan_cache_key(query, schema)
        PlanCache(directory=str(tmp_path)).put(
            key, plan, cost, meta={"query": canonical_query_text(query)}
        )
        files = list(tmp_path.glob("*.json"))
        assert len(files) == 1
        entry = json.loads(files[0].read_text())
        assert entry["format"] == "repro.plan-cache"
        assert entry["version"] == 2
        assert entry["key"] == key
        assert entry["meta"]["query"] == canonical_query_text(query)
        assert entry["checksum"] == entry_checksum(entry)

    def test_corrupt_file_is_a_miss_not_a_crash(self, tmp_path):
        schema = golden_schema()
        query = join_query()
        plan, cost = best_plan(schema, query)
        key = plan_cache_key(query, schema)
        PlanCache(directory=str(tmp_path)).put(key, plan, cost)
        for path in tmp_path.glob("*.json"):
            path.write_text("{not json")
        fresh = PlanCache(directory=str(tmp_path))
        assert fresh.get(key) is None
        assert fresh.counters()["misses"] == 1

    def test_clear_removes_disk_entries(self, tmp_path):
        schema = golden_schema()
        plan, cost = best_plan(schema, join_query())
        cache = PlanCache(directory=str(tmp_path))
        cache.put("k1", plan, cost)
        cache.clear()
        assert cache.get("k1") is None
        assert not list(tmp_path.glob("*.json"))


class TestCrashMidAtomicWrite:
    """A writer dying inside the temp-then-rename protocol is harmless.

    Two torn states are possible: the temp file was written but never
    renamed (the entry is simply the previous version), or the rename
    itself was torn by the filesystem (the entry is truncated -- the
    checksum catches it and the file is quarantined).
    """

    def _store_one(self, tmp_path):
        schema = golden_schema()
        query = join_query()
        plan, cost = best_plan(schema, query)
        key = plan_cache_key(query, schema)
        PlanCache(directory=str(tmp_path)).put(key, plan, cost)
        return key, plan

    def test_abandoned_temp_file_is_ignored(self, tmp_path):
        key, plan = self._store_one(tmp_path)
        # A writer crashed after writing its temp file, before rename.
        (tmp_path / f"{key}.json.tmp.9999").write_text(
            '{"format": "repro.plan-cache", "ver'
        )
        fresh = PlanCache(directory=str(tmp_path))
        hit = fresh.get(key)
        assert hit is not None
        assert hit.plan.describe() == plan.describe()
        assert fresh.counters()["quarantined"] == 0

    def test_torn_rename_is_quarantined_and_survivable(self, tmp_path):
        key, plan = self._store_one(tmp_path)
        path = tmp_path / f"{key}.json"
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        fresh = PlanCache(directory=str(tmp_path))
        assert fresh.get(key) is None
        counters = fresh.counters()
        assert counters["quarantined"] == 1
        assert (tmp_path / f"{key}.json.quarantined").exists()
        # The slot is reusable: the next put writes a fresh entry and
        # the next get serves it.
        fresh.put(key, plan, 1.0)
        assert PlanCache(directory=str(tmp_path)).get(key) is not None

    def test_single_byte_flip_is_quarantined(self, tmp_path):
        key, _ = self._store_one(tmp_path)
        path = tmp_path / f"{key}.json"
        data = bytearray(path.read_bytes())
        mid = len(data) // 2
        data[mid] = ord("Y") if data[mid] == ord("X") else ord("X")
        path.write_bytes(bytes(data))
        fresh = PlanCache(directory=str(tmp_path))
        assert fresh.get(key) is None
        assert fresh.counters()["quarantined"] == 1

    def test_failed_disk_write_is_counted_not_raised(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the cache dir should be")
        schema = golden_schema()
        query = join_query()
        plan, cost = best_plan(schema, query)
        cache = PlanCache(directory=str(tmp_path))
        # Point the disk tier at a path whose parent is a file: every
        # persist fails with OSError, which must be counted, never
        # raised -- the memory tier still serves the entry.
        cache.directory = str(blocker / "nested")
        key = plan_cache_key(query, schema)
        cache.put(key, plan, cost)
        assert cache.counters()["persist_errors"] == 1
        assert cache.get(key) is not None
