"""Tests for DOT renderings of proof trees and plans."""

import pytest

from repro.planner.search import SearchOptions, find_best_plan
from repro.planner.visualize import plan_to_dot, search_tree_to_dot
from repro.scenarios import example1, example5


@pytest.fixture
def figure1_result():
    scenario = example5(
        sources=3, source_costs=[1.0, 2.0, 3.0], profinfo_cost=5.0
    )
    return find_best_plan(
        scenario.schema,
        scenario.query,
        SearchOptions(
            max_accesses=4, collect_tree=True, candidate_order="method"
        ),
    )


class TestSearchTreeDot:
    def test_requires_collected_tree(self):
        scenario = example1()
        result = find_best_plan(scenario.schema, scenario.query)
        with pytest.raises(ValueError):
            search_tree_to_dot(result)

    def test_every_node_rendered(self, figure1_result):
        dot = search_tree_to_dot(figure1_result)
        for node in figure1_result.tree:
            assert f"n{node.node_id} [" in dot

    def test_edges_follow_parents(self, figure1_result):
        dot = search_tree_to_dot(figure1_result)
        for node in figure1_result.tree:
            if node.parent_id is not None:
                assert f"n{node.parent_id} -> n{node.node_id};" in dot

    def test_statuses_colored(self, figure1_result):
        dot = search_tree_to_dot(figure1_result)
        assert "#b7e1a1" in dot  # a success node exists
        assert "#d9d2e9" in dot  # a dominated node exists (the n''')

    def test_syntactically_balanced(self, figure1_result):
        dot = search_tree_to_dot(figure1_result)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert dot.count("[") == dot.count("]")


class TestPlanDot:
    def test_access_and_output_marked(self):
        scenario = example1()
        plan = find_best_plan(scenario.schema, scenario.query).best_plan
        dot = plan_to_dot(plan)
        assert "doubleoctagon" in dot
        assert "access mt_udir" in dot
        assert f'"{plan.output_table}" [style=filled' in dot

    def test_dataflow_edges_match_reads(self):
        scenario = example1()
        plan = find_best_plan(scenario.schema, scenario.query).best_plan
        dot = plan_to_dot(plan)
        from repro.plans.commands import AccessCommand

        for command in plan.commands:
            expr = (
                command.input_expr
                if isinstance(command, AccessCommand)
                else command.expr
            )
            for source in expr.tables_read():
                assert f'"{source}" -> "{command.target}";' in dot
