"""Branch-and-bound pruning: plan-preserving, counted, off by default.

``SearchOptions.prune_by_bound`` closes any non-successful node whose
cost plus the cost model's admissible completion margin
(``min_access_charge``) reaches the incumbent.  The differential
property pinned here is the whole point: across scenarios, strategies
and cost models, pruning may only *shrink* the explored tree -- the
returned best cost (and found/not-found outcome) never changes.
"""

import pytest

from repro.cost.functions import (
    CardinalityCostFunction,
    CountingCostFunction,
    SimpleCostFunction,
)
from repro.planner.search import SearchOptions, find_best_plan
from repro.scenarios import (
    example1,
    example2,
    example5,
    referential_chain,
    view_stack_scenario,
)

SCENARIOS = [
    ("example1", example1),
    ("example2", example2),
    ("example5", example5),
    ("chain2", lambda: referential_chain(2)),
    ("views", view_stack_scenario),
]

COSTS = {
    "declared": lambda schema: SimpleCostFunction.from_schema(schema),
    "counting": lambda schema: CountingCostFunction(),
    "cardinality": lambda schema: CardinalityCostFunction(
        relation_cardinality={}, per_tuple=0.05
    ),
}


def run(scenario, *, cost=None, prune_by_bound=False, strategy="dfs"):
    return find_best_plan(
        scenario.schema,
        scenario.query,
        SearchOptions(
            max_accesses=5,
            cost=cost,
            prune_by_bound=prune_by_bound,
            strategy=strategy,
        ),
    )


class TestDifferential:
    @pytest.mark.parametrize(
        "name,factory", SCENARIOS, ids=[n for n, _ in SCENARIOS]
    )
    @pytest.mark.parametrize("cost_name", sorted(COSTS))
    @pytest.mark.parametrize("strategy", ["dfs", "best-first"])
    def test_pruning_never_changes_the_best_plan(
        self, name, factory, cost_name, strategy
    ):
        scenario = factory()
        cost = COSTS[cost_name](scenario.schema)
        base = run(scenario, cost=cost, strategy=strategy)
        pruned = run(
            scenario, cost=cost, strategy=strategy, prune_by_bound=True
        )
        assert pruned.found == base.found
        if base.found:
            assert pruned.best_cost == pytest.approx(base.best_cost)
        # Pruning may only shrink the explored tree.
        assert pruned.stats.nodes_expanded <= base.stats.nodes_expanded

    @pytest.mark.parametrize(
        "name,factory", SCENARIOS, ids=[n for n, _ in SCENARIOS]
    )
    def test_off_by_default_baseline_is_bit_identical(self, name, factory):
        scenario = factory()
        default = run(scenario)
        explicit_off = run(scenario, prune_by_bound=False)
        assert (
            default.stats.nodes_created == explicit_off.stats.nodes_created
        )
        assert default.stats.pruned_by_bound == 0


class TestPruningBites:
    def test_bound_pruning_shrinks_a_branchy_search(self):
        scenario = example5(6)
        base = run(scenario)
        pruned = run(scenario, prune_by_bound=True)
        assert pruned.stats.pruned_by_bound > 0
        assert pruned.stats.nodes_expanded < base.stats.nodes_expanded
        assert pruned.best_cost == pytest.approx(base.best_cost)

    def test_pruned_counter_reported(self):
        scenario = example5(6)
        stats = run(scenario, prune_by_bound=True).stats
        assert stats.as_dict()["pruned_by_bound"] == stats.pruned_by_bound
        assert f"bound={stats.pruned_by_bound}" in stats.summary()

    def test_pruned_nodes_marked_in_collected_tree(self):
        scenario = example5(6)
        result = find_best_plan(
            scenario.schema,
            scenario.query,
            SearchOptions(
                max_accesses=5, prune_by_bound=True, collect_tree=True
            ),
        )
        marked = [n for n in result.tree if n.pruned == "bound"]
        assert len(marked) == result.stats.pruned_by_bound
        # A bound-pruned node is closed: it exposes no candidates.
        assert all(not n.has_pending for n in marked)

    def test_successful_nodes_are_never_bound_pruned(self):
        scenario = example5(6)
        result = find_best_plan(
            scenario.schema,
            scenario.query,
            SearchOptions(
                max_accesses=5, prune_by_bound=True, collect_tree=True
            ),
        )
        assert all(
            n.pruned is None for n in result.tree if n.successful
        )

    def test_zero_margin_cost_degrades_to_plain_incumbent_check(self):
        # per_access=0, per_tuple=0: min_access_charge is 0, so the
        # bound check only fires at cost >= incumbent, like prune_by_cost.
        scenario = example1()
        cost = CardinalityCostFunction(
            relation_cardinality={}, per_access=0.0, per_tuple=0.0
        )
        base = run(scenario, cost=cost)
        pruned = run(scenario, cost=cost, prune_by_bound=True)
        assert pruned.found == base.found
        assert pruned.best_cost == pytest.approx(base.best_cost)
