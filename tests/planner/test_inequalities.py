"""Tests for ESPJ planning: head-variable inequalities."""

import pytest

from repro.data.instance import Instance
from repro.data.source import InMemorySource
from repro.logic.queries import QueryError, cq
from repro.logic.terms import Constant, Variable
from repro.planner.inequalities import (
    Inequality,
    apply_inequalities,
    plan_with_inequalities,
)
from repro.schema.core import SchemaBuilder


@pytest.fixture
def schema():
    return (
        SchemaBuilder("s")
        .relation("Edge", 2)
        .free_access("Edge")
        .build()
    )


def edges(*pairs):
    return Instance({"Edge": list(pairs)})


class TestPlanWithInequalities:
    def test_var_var_inequality(self, schema):
        query = cq(["?x", "?y"], [("Edge", ["?x", "?y"])], name="Qe")
        result = plan_with_inequalities(
            schema,
            query,
            [Inequality(Variable("x"), Variable("y"))],
        )
        assert result.found
        instance = edges(("a", "a"), ("a", "b"))
        out = result.plan.run(InMemorySource(schema, instance))
        assert out.rows == frozenset(
            {(Constant("a"), Constant("b"))}
        )

    def test_var_const_inequality(self, schema):
        query = cq(["?x", "?y"], [("Edge", ["?x", "?y"])], name="Qe")
        result = plan_with_inequalities(
            schema,
            query,
            [Inequality(Variable("x"), Constant("a"))],
        )
        instance = edges(("a", "b"), ("c", "d"))
        out = result.plan.run(InMemorySource(schema, instance))
        assert out.rows == frozenset(
            {(Constant("c"), Constant("d"))}
        )

    def test_multiple_inequalities_conjoined(self, schema):
        query = cq(["?x", "?y"], [("Edge", ["?x", "?y"])], name="Qe")
        result = plan_with_inequalities(
            schema,
            query,
            [
                Inequality(Variable("x"), Variable("y")),
                Inequality(Variable("y"), Constant("d")),
            ],
        )
        instance = edges(("a", "a"), ("a", "b"), ("c", "d"))
        out = result.plan.run(InMemorySource(schema, instance))
        assert out.rows == frozenset(
            {(Constant("a"), Constant("b"))}
        )

    def test_vacuous_constant_inequality_is_noop(self, schema):
        query = cq(["?x"], [("Edge", ["?x", "?y"])], name="Qe")
        result = plan_with_inequalities(
            schema,
            query,
            [Inequality(Constant("a"), Constant("b"))],
        )
        instance = edges(("a", "b"))
        assert not result.plan.run(
            InMemorySource(schema, instance)
        ).is_empty

    def test_contradictory_constant_inequality_empty(self, schema):
        query = cq(["?x"], [("Edge", ["?x", "?y"])], name="Qe")
        result = plan_with_inequalities(
            schema,
            query,
            [Inequality(Constant("a"), Constant("a"))],
        )
        instance = edges(("a", "b"))
        assert result.plan.run(
            InMemorySource(schema, instance)
        ).is_empty

    def test_existential_variable_rejected(self, schema):
        query = cq(["?x"], [("Edge", ["?x", "?y"])], name="Qe")
        with pytest.raises(QueryError):
            plan_with_inequalities(
                schema,
                query,
                [Inequality(Variable("x"), Variable("y"))],
            )

    def test_unanswerable_core_propagates(self):
        hidden = SchemaBuilder("h").relation("H", 2).build()
        query = cq(["?x", "?y"], [("H", ["?x", "?y"])])
        result = plan_with_inequalities(
            hidden,
            query,
            [Inequality(Variable("x"), Variable("y"))],
        )
        assert not result.found

    def test_completeness_with_restricted_access(self):
        """The filter composes with a proof-based multi-access plan."""
        schema = (
            SchemaBuilder("s")
            .relation("Profinfo", 3)
            .relation("Udirect", 2)
            .access("mt_prof", "Profinfo", inputs=[0])
            .free_access("Udirect")
            .tgd("Profinfo(e, o, l) -> Udirect(e, l)")
            .build()
        )
        query = cq(
            ["?e", "?l"], [("Profinfo", ["?e", "?o", "?l"])], name="Qp"
        )
        result = plan_with_inequalities(
            schema,
            query,
            [Inequality(Variable("l"), Constant("smith"))],
        )
        instance = Instance(
            {
                "Profinfo": [("e1", "o1", "smith"), ("e2", "o2", "doe")],
                "Udirect": [("e1", "smith"), ("e2", "doe")],
            }
        )
        out = result.plan.run(InMemorySource(schema, instance))
        assert out.rows == frozenset(
            {(Constant("e2"), Constant("doe"))}
        )

    def test_filtered_plan_uses_inequality_operator(self, schema):
        query = cq(["?x", "?y"], [("Edge", ["?x", "?y"])], name="Qe")
        result = plan_with_inequalities(
            schema,
            query,
            [Inequality(Variable("x"), Variable("y"))],
        )
        assert result.plan.uses_inequality
