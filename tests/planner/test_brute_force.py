"""Tests for the P_k brute-force plan (the paper's infeasible baseline)."""

import pytest

from repro.data.source import InMemorySource
from repro.logic.queries import cq
from repro.planner.brute_force import (
    accessed_table_name,
    brute_force_plan,
    k_round_plan,
)
from repro.planner.search import SearchOptions, find_best_plan
from repro.scenarios import example1, example2
from repro.schema.core import SchemaBuilder


class TestKRoundPlan:
    def test_materializes_accessible_part(self):
        scenario = example1()
        plan = k_round_plan(scenario.schema, k=2)
        instance = scenario.instance(0)
        source = InMemorySource(scenario.schema, instance)
        _out, env = plan.run_with_env(source)
        from repro.data.accessible_part import accessible_part

        part = accessible_part(scenario.schema, instance)
        for relation in scenario.schema.relations:
            got = {
                row for row in env[accessed_table_name(relation.name)].rows
            }
            assert got == set(part.accessed_tuples(relation.name)), (
                relation.name
            )

    def test_values_table_matches_accessible_values(self):
        scenario = example1()
        plan = k_round_plan(scenario.schema, k=2)
        instance = scenario.instance(0)
        out = plan.run(InMemorySource(scenario.schema, instance))
        from repro.data.accessible_part import accessible_part

        part = accessible_part(scenario.schema, instance)
        assert {row[0] for row in out.rows} == set(
            part.accessible_values
        )

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            k_round_plan(example1().schema, k=0)

    def test_too_few_rounds_miss_deep_values(self):
        """Example 2 needs 3 rounds (names/ids -> direct1 -> direct2)."""
        scenario = example2(directory_size=5)
        instance = scenario.instance(0)
        shallow = k_round_plan(scenario.schema, k=1)
        deep = k_round_plan(scenario.schema, k=3)
        env1 = shallow.run_with_env(
            InMemorySource(scenario.schema, instance)
        )[1]
        env3 = deep.run_with_env(
            InMemorySource(scenario.schema, instance)
        )[1]
        d2 = accessed_table_name("Direct2")
        assert env1[d2].is_empty
        assert not env3[d2].is_empty


class TestBruteForcePlan:
    def test_complete_on_example1(self):
        scenario = example1(professors=6, directory_extra=4)
        plan = brute_force_plan(scenario.schema, scenario.query, k=2)
        instance = scenario.instance(0)
        out = plan.run(InMemorySource(scenario.schema, instance))
        assert set(out.rows) == instance.evaluate(scenario.query)

    def test_complete_on_example2(self):
        scenario = example2(directory_size=4)
        plan = brute_force_plan(scenario.schema, scenario.query, k=3)
        instance = scenario.instance(0)
        out = plan.run(InMemorySource(scenario.schema, instance))
        assert set(out.rows) == instance.evaluate(scenario.query)

    def test_infeasibility_vs_proof_based_plan(self):
        """The paper's point: P_k makes vastly more runtime accesses."""
        scenario = example2(directory_size=6)
        instance = scenario.instance(0)
        proof_based = find_best_plan(
            scenario.schema, scenario.query, SearchOptions(max_accesses=5)
        ).best_plan
        brute = brute_force_plan(scenario.schema, scenario.query, k=3)
        src_proof = InMemorySource(scenario.schema, instance)
        src_brute = InMemorySource(scenario.schema, instance)
        out_proof = proof_based.run(src_proof)
        out_brute = brute.run(src_brute)
        assert set(out_proof.rows) == set(out_brute.rows)
        assert (
            src_brute.total_invocations
            > 2 * src_proof.total_invocations
        )

    def test_boolean_query(self):
        schema = (
            SchemaBuilder("s")
            .relation("R", 1)
            .free_access("R")
            .build()
        )
        query = cq([], [("R", ["?x"])])
        plan = brute_force_plan(schema, query, k=1)
        from repro.data.instance import Instance

        yes = InMemorySource(schema, Instance({"R": [("a",)]}))
        no = InMemorySource(schema, Instance({}))
        assert not plan.run(yes).is_empty
        assert plan.run(no).is_empty
