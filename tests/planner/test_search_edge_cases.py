"""Search edge cases: repeated variables, constants, nullary relations,
multiple methods per relation, and queries already satisfied."""

import pytest

from repro.data.instance import Instance
from repro.data.source import InMemorySource
from repro.logic.queries import cq
from repro.logic.terms import Constant
from repro.planner.search import SearchOptions, find_best_plan
from repro.schema.core import SchemaBuilder


class TestRepeatedVariables:
    def test_repeated_variable_in_query(self):
        schema = (
            SchemaBuilder("s").relation("R", 2).free_access("R").build()
        )
        query = cq(["?x"], [("R", ["?x", "?x"])], name="Qr")
        result = find_best_plan(schema, query)
        assert result.found
        instance = Instance({"R": [("a", "a"), ("a", "b")]})
        out = result.best_plan.run(InMemorySource(schema, instance))
        assert out.rows == frozenset({(Constant("a"),)})

    def test_repeated_variable_through_constraint(self):
        schema = (
            SchemaBuilder("s")
            .relation("Hidden", 2)
            .relation("Keys", 1)
            .access("mt_h", "Hidden", inputs=[0])
            .free_access("Keys")
            .tgd("Hidden(x, y) -> Keys(x)")
            .build()
        )
        query = cq(["?x"], [("Hidden", ["?x", "?x"])], name="Qd")
        result = find_best_plan(schema, query)
        assert result.found
        instance = Instance(
            {"Hidden": [("a", "a"), ("b", "c")], "Keys": [("a",), ("b",)]}
        )
        out = result.best_plan.run(InMemorySource(schema, instance))
        assert out.rows == frozenset({(Constant("a"),)})


class TestConstantsInQueries:
    def test_constant_only_access_input(self):
        schema = (
            SchemaBuilder("s")
            .relation("R", 2)
            .access("mt_r", "R", inputs=[0])
            .constant("key")
            .build()
        )
        query = cq(["?v"], [("R", ["key", "?v"])], name="Qc")
        result = find_best_plan(schema, query)
        assert result.found
        instance = Instance({"R": [("key", "1"), ("other", "2")]})
        out = result.best_plan.run(InMemorySource(schema, instance))
        assert out.rows == frozenset({(Constant("1"),)})

    def test_constant_filter_on_output_position(self):
        schema = (
            SchemaBuilder("s")
            .relation("R", 2)
            .free_access("R")
            .constant("tag")
            .build()
        )
        query = cq(["?x"], [("R", ["?x", "tag"])], name="Qt")
        result = find_best_plan(schema, query)
        instance = Instance({"R": [("a", "tag"), ("b", "no")]})
        out = result.best_plan.run(InMemorySource(schema, instance))
        assert out.rows == frozenset({(Constant("a"),)})


class TestMultipleMethods:
    def test_cheapest_method_chosen(self):
        schema = (
            SchemaBuilder("s")
            .relation("R", 2)
            .access("mt_exp", "R", inputs=[], cost=10.0)
            .access("mt_cheap", "R", inputs=[], cost=1.0)
            .build()
        )
        query = cq([], [("R", ["?x", "?y"])])
        result = find_best_plan(schema, query)
        assert result.best_plan.methods_used() == ("mt_cheap",)
        assert result.best_cost == pytest.approx(1.0)

    def test_keyed_method_used_when_scan_missing(self):
        schema = (
            SchemaBuilder("s")
            .relation("Keys", 1)
            .relation("R", 2)
            .free_access("Keys")
            .access("mt_keyed", "R", inputs=[0])
            .tgd("R(x, y) -> Keys(x)")
            .build()
        )
        query = cq(["?x", "?y"], [("R", ["?x", "?y"])])
        result = find_best_plan(schema, query)
        assert result.found
        assert "mt_keyed" in result.best_plan.methods_used()


class TestDegenerateShapes:
    def test_nullary_relation(self):
        schema = (
            SchemaBuilder("s").relation("Flag", 0).free_access("Flag").build()
        )
        query = cq([], [("Flag", [])], name="Qf")
        result = find_best_plan(schema, query)
        assert result.found
        yes = Instance()
        yes.add("Flag", ())
        out = result.best_plan.run(InMemorySource(schema, yes))
        assert not out.is_empty
        out2 = result.best_plan.run(InMemorySource(schema, Instance()))
        assert out2.is_empty

    def test_two_atom_query_same_relation(self):
        schema = (
            SchemaBuilder("s").relation("E", 2).free_access("E").build()
        )
        query = cq(
            ["?x", "?z"],
            [("E", ["?x", "?y"]), ("E", ["?y", "?z"])],
            name="Qp",
        )
        result = find_best_plan(schema, query, SearchOptions(max_accesses=3))
        assert result.found
        instance = Instance({"E": [("a", "b"), ("b", "c")]})
        out = result.best_plan.run(InMemorySource(schema, instance))
        assert out.rows == frozenset(
            {(Constant("a"), Constant("c"))}
        )
        # A single free scan suffices for both atoms (access reuse).
        assert len(result.best_plan.access_commands) == 1
