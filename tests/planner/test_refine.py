"""Tests for proof minimization and iterative-deepening planning."""

import pytest

from repro.cost.functions import SimpleCostFunction
from repro.logic.queries import cq
from repro.planner.proof_to_plan import ChaseProof, plan_from_proof
from repro.planner.refine import (
    find_best_plan_iterative,
    minimize_proof,
    proof_is_valid,
)
from repro.planner.search import SearchOptions, find_best_plan
from repro.scenarios import example2, example5
from repro.schema.accessible import AccessibleSchema, Variant
from repro.schema.core import SchemaBuilder


def padded_proof(scenario):
    """The all-sources proof of Example 5 (3 padding exposures)."""
    result = find_best_plan(
        scenario.schema,
        scenario.query,
        SearchOptions(
            max_accesses=4,
            prune_by_cost=False,
            domination=False,
            collect_tree=True,
            candidate_order="method",
        ),
    )
    node = next(
        n for n in result.tree if n.successful and len(n.exposures) == 4
    )
    return ChaseProof(scenario.query, node.exposures)


class TestMinimizeProof:
    def test_padded_proof_shrinks_to_two_exposures(self):
        scenario = example5(sources=3)
        acc = AccessibleSchema(scenario.schema, Variant.FORWARD)
        proof = padded_proof(scenario)
        minimal = minimize_proof(acc, proof)
        assert len(minimal.exposures) == 2
        relations = [e.fact.relation for e in minimal.exposures]
        assert relations[-1] == "Profinfo"

    def test_minimization_lowers_cost(self):
        scenario = example5(sources=3)
        acc = AccessibleSchema(scenario.schema, Variant.FORWARD)
        cost = SimpleCostFunction.from_schema(scenario.schema)
        proof = padded_proof(scenario)
        before = cost.plan_cost(plan_from_proof(acc, proof))
        after = cost.plan_cost(
            plan_from_proof(acc, minimize_proof(acc, proof))
        )
        assert after < before

    def test_already_minimal_proof_unchanged(self):
        scenario = example2()
        acc = AccessibleSchema(scenario.schema, Variant.FORWARD)
        result = find_best_plan(
            scenario.schema, scenario.query, SearchOptions(max_accesses=5)
        )
        minimal = minimize_proof(acc, result.best_proof)
        assert len(minimal.exposures) == len(
            result.best_proof.exposures
        )

    def test_minimized_proof_still_valid(self):
        scenario = example5(sources=3)
        acc = AccessibleSchema(scenario.schema, Variant.FORWARD)
        minimal = minimize_proof(acc, padded_proof(scenario))
        assert proof_is_valid(acc, minimal)


class TestIterativeDeepening:
    def test_finds_minimum_access_depth(self):
        scenario = example2()
        result, depth = find_best_plan_iterative(
            scenario.schema, scenario.query, max_accesses=6
        )
        assert result.found
        assert depth == 4  # Example 2's chain needs exactly 4 accesses

    def test_shallow_query_found_at_depth_one(self):
        schema = (
            SchemaBuilder("s").relation("R", 1).free_access("R").build()
        )
        result, depth = find_best_plan_iterative(
            schema, cq([], [("R", ["?x"])])
        )
        assert result.found and depth == 1

    def test_unanswerable_reports_last_level(self):
        schema = SchemaBuilder("s").relation("H", 1).build()
        result, depth = find_best_plan_iterative(
            schema, cq([], [("H", ["?x"])]), max_accesses=3
        )
        assert not result.found
        assert depth == 3
        assert result.exhausted  # certified at the final level too
