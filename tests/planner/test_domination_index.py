"""Differential tests: fingerprint-indexed domination vs the oracle.

The fingerprint registry must prune *exactly* the same nodes as the
original linear scan on every scenario of the library, and the two
search strategies must agree on the optimum with full pruning on.
"""

import pytest

from repro.chase.configuration import ChaseConfiguration
from repro.logic.atoms import Atom, Substitution
from repro.logic.terms import Constant, Null
from repro.planner.domination import (
    FingerprintRegistry,
    LinearRegistry,
    NaiveRegistry,
    make_registry,
    relevant_facts,
    signature_of,
)
from repro.planner.search import SearchOptions, find_best_plan
from repro.scenarios import (
    example1,
    example2,
    example5,
    redundant_sources,
    referential_chain,
    view_stack_scenario,
    webservices,
)

SCENARIOS = {
    "example1": example1,
    "example2": example2,
    "example5": example5,
    "redundant4": lambda: redundant_sources(4),
    "chain3": lambda: referential_chain(3),
    "views": view_stack_scenario,
    "webservices": webservices,
}

# The baseline: the pre-index implementation recomputing everything.
FULL_RECOMPUTE = dict(
    incremental_candidates=False, incremental_cost=False, cow_configs=False
)


def tree_shape(result):
    """What the search did, node by node (prunes included)."""
    return [
        (node.node_id, node.parent_id, node.pruned, node.successful)
        for node in result.tree
    ]


@pytest.mark.parametrize("name", sorted(SCENARIOS))
class TestFingerprintMatchesOracle:
    def test_same_nodes_pruned(self, name):
        scenario = SCENARIOS[name]()
        oracle = find_best_plan(
            scenario.schema,
            scenario.query,
            SearchOptions(
                domination_index="linear",
                collect_tree=True,
                **FULL_RECOMPUTE,
            ),
        )
        indexed = find_best_plan(
            scenario.schema,
            scenario.query,
            SearchOptions(domination_index="fingerprint", collect_tree=True),
        )
        assert tree_shape(indexed) == tree_shape(oracle)
        assert indexed.best_cost == oracle.best_cost
        assert indexed.exhausted == oracle.exhausted
        assert (
            indexed.stats.pruned_by_domination
            == oracle.stats.pruned_by_domination
        )
        assert indexed.stats.nodes_created == oracle.stats.nodes_created

    def test_differential_registry_agrees_on_every_check(self, name):
        scenario = SCENARIOS[name]()
        # DifferentialRegistry raises DominationMismatch on the first
        # check where the fingerprint index and the oracle disagree.
        result = find_best_plan(
            scenario.schema,
            scenario.query,
            SearchOptions(domination_index="differential"),
        )
        assert result.stats.nodes_created > 0

    def test_naive_scan_prunes_identically(self, name):
        scenario = SCENARIOS[name]()
        naive = find_best_plan(
            scenario.schema,
            scenario.query,
            SearchOptions(domination_index="naive", collect_tree=True),
        )
        indexed = find_best_plan(
            scenario.schema,
            scenario.query,
            SearchOptions(domination_index="fingerprint", collect_tree=True),
        )
        assert tree_shape(naive) == tree_shape(indexed)
        # The index only ever *skips* homomorphism attempts.
        assert (
            indexed.stats.domination.hom_calls
            <= naive.stats.domination.hom_calls
        )

    def test_dfs_and_best_first_agree(self, name):
        scenario = SCENARIOS[name]()
        dfs = find_best_plan(
            scenario.schema, scenario.query, SearchOptions(strategy="dfs")
        )
        best_first = find_best_plan(
            scenario.schema,
            scenario.query,
            SearchOptions(strategy="best-first"),
        )
        assert dfs.best_cost == best_first.best_cost
        assert dfs.exhausted == best_first.exhausted


class TestSignature:
    def test_constants_are_rigid(self):
        pattern = [Atom("R", (Constant("a"), Null("n")))]
        signature = signature_of(pattern, frozenset())
        assert ("rel", "R") in signature
        assert ("occ", "R", 0, Constant("a")) in signature
        # Non-rigid nulls contribute no occurrence elements.
        assert ("occ", "R", 1, Null("n")) not in signature

    def test_frozen_nulls_are_rigid(self):
        null = Null("h")
        pattern = [Atom("R", (null,))]
        assert ("occ", "R", 0, null) in signature_of(
            pattern, frozenset({null})
        )
        assert ("occ", "R", 0, null) not in signature_of(
            pattern, frozenset()
        )

    def test_subsumption_is_monotone_in_the_pattern(self):
        small = [Atom("R", (Constant("a"),))]
        large = small + [Atom("S", (Constant("b"), Null("n")))]
        assert signature_of(small, frozenset()) <= signature_of(
            large, frozenset()
        )


def registry_pair(rigid=frozenset()):
    frozen = Substitution({null: null for null in rigid})
    return (
        FingerprintRegistry(frozen, rigid),
        LinearRegistry(frozen, rigid),
    )


class TestRegistries:
    def test_identity_domination(self):
        config = ChaseConfiguration([Atom("R", (Constant("a"),))])
        for registry in registry_pair():
            registry.register(7, 1.0, config)
            assert registry.find_dominator(1.0, config) == 7

    def test_expensive_entries_never_dominate(self):
        config = ChaseConfiguration([Atom("R", (Constant("a"),))])
        for registry in registry_pair():
            registry.register(7, 5.0, config)
            assert registry.find_dominator(1.0, config) is None

    def test_missing_relation_blocks_domination(self):
        small = ChaseConfiguration([Atom("R", (Constant("a"),))])
        larger = ChaseConfiguration(
            [Atom("R", (Constant("a"),)), Atom("S", (Constant("b"),))]
        )
        for registry in registry_pair():
            registry.register(1, 0.0, small)
            assert registry.find_dominator(9.0, larger) is None
            assert registry.find_dominator(9.0, small) == 1

    def test_rigid_null_must_map_to_itself(self):
        frozen_null, other = Null("h"), Null("x")
        target = ChaseConfiguration([Atom("R", (other,))])
        probe = ChaseConfiguration([Atom("R", (frozen_null,))])
        # Without rigidity the nulls may collapse: dominated.
        for registry in registry_pair():
            registry.register(1, 0.0, target)
            assert registry.find_dominator(1.0, probe) == 1
        # With the head null frozen, R(h) has no image: not dominated.
        for registry in registry_pair(rigid=frozenset({frozen_null})):
            registry.register(1, 0.0, target)
            assert registry.find_dominator(1.0, probe) is None

    def test_cheapest_dominator_is_tried_first(self):
        config = ChaseConfiguration([Atom("R", (Constant("a"),))])
        frozen = Substitution({})
        registry = FingerprintRegistry(frozen, frozenset())
        registry.register(1, 3.0, config)
        registry.register(2, 1.0, config)
        assert registry.find_dominator(5.0, config) == 2
        # Only the (successful) cheapest entry needed a homomorphism.
        assert registry.stats.hom_calls == 1

    def test_relevant_facts_exclude_accessed_copies(self):
        config = ChaseConfiguration(
            [Atom("R", (Constant("a"),)), Atom("Accessed_R", (Constant("a"),))]
        )
        assert {atom.relation for atom in relevant_facts(config)} == {"R"}

    def test_make_registry_kinds(self):
        frozen = Substitution({})
        assert isinstance(
            make_registry("fingerprint", frozen, frozenset()),
            FingerprintRegistry,
        )
        assert isinstance(
            make_registry("linear", frozen, frozenset()), LinearRegistry
        )
        assert isinstance(
            make_registry("naive", frozen, frozenset()), NaiveRegistry
        )
        with pytest.raises(ValueError):
            make_registry("bogus", frozen, frozenset())
