"""Incremental hot-loop equivalence: inherited candidates, delta cost,
copy-on-write forks vs the full-recompute baseline.

Every switch of the incremental machinery must leave the explored tree,
the candidate lists, the node costs and the reported optimum bit-for-bit
identical to the original implementation.
"""

import pytest

from repro.cost.functions import CardinalityCostFunction, SimpleCostFunction
from repro.planner.search import SearchOptions, find_best_plan
from repro.scenarios import (
    example1,
    example2,
    example5,
    redundant_sources,
    referential_chain,
    view_stack_scenario,
    webservices,
)

SCENARIOS = {
    "example1": example1,
    "example2": example2,
    "example5": example5,
    "redundant4": lambda: redundant_sources(4),
    "chain3": lambda: referential_chain(3),
    "views": view_stack_scenario,
    "webservices": webservices,
}

BASELINE = dict(
    domination_index="linear",
    incremental_candidates=False,
    incremental_cost=False,
    cow_configs=False,
)


def run(scenario, **overrides):
    return find_best_plan(
        scenario.schema,
        scenario.query,
        SearchOptions(collect_tree=True, **overrides),
    )


def node_views(result):
    """Tree structure, costs and full ranked candidate lists per node."""
    return [
        (
            node.node_id,
            node.parent_id,
            node.pruned,
            node.successful,
            pytest.approx(node.cost),
            [
                (repr(fact), method.name)
                for _, fact, method in node.candidates
            ],
        )
        for node in result.tree
    ]


@pytest.mark.parametrize("name", sorted(SCENARIOS))
class TestIncrementalEquivalence:
    def test_tree_candidates_and_costs_identical(self, name):
        scenario = SCENARIOS[name]()
        baseline = run(scenario, **BASELINE)
        incremental = run(scenario)
        assert node_views(incremental) == node_views(baseline)
        assert incremental.best_cost == baseline.best_cost
        assert incremental.exhausted == baseline.exhausted
        for left, right in [
            (incremental.stats, baseline.stats),
        ]:
            assert left.nodes_created == right.nodes_created
            assert left.nodes_expanded == right.nodes_expanded
            assert left.successes == right.successes
            assert left.pruned_by_cost == right.pruned_by_cost
            assert left.pruned_by_domination == right.pruned_by_domination

    def test_each_switch_alone_is_equivalent(self, name):
        scenario = SCENARIOS[name]()
        baseline = run(scenario, **BASELINE)
        for switch in (
            "incremental_candidates",
            "incremental_cost",
            "cow_configs",
        ):
            overrides = dict(BASELINE)
            overrides.pop(switch)
            flipped = run(scenario, **overrides)
            assert node_views(flipped) == node_views(baseline), switch

    def test_incremental_costs_match_full_recompute(self, name):
        scenario = SCENARIOS[name]()
        result = run(scenario)
        cost = SimpleCostFunction.from_schema(scenario.schema)
        for node in result.tree:
            assert node.cost == pytest.approx(
                cost.commands_cost(node.state.commands)
            )

    def test_best_first_equivalence(self, name):
        scenario = SCENARIOS[name]()
        baseline = run(scenario, strategy="best-first", **BASELINE)
        incremental = run(scenario, strategy="best-first")
        assert node_views(incremental) == node_views(baseline)
        assert incremental.best_cost == baseline.best_cost


class TestIncrementalWithKnobs:
    def test_beam_width_equivalence(self):
        scenario = redundant_sources(4)
        baseline = run(scenario, beam_width=2, **BASELINE)
        incremental = run(scenario, beam_width=2)
        assert node_views(incremental) == node_views(baseline)
        assert incremental.best_cost == baseline.best_cost
        assert not incremental.exhausted  # beams forfeit certification

    def test_method_candidate_order_equivalence(self):
        scenario = example5()
        baseline = run(scenario, candidate_order="method", **BASELINE)
        incremental = run(scenario, candidate_order="method")
        assert node_views(incremental) == node_views(baseline)

    def test_cardinality_cost_delta_path(self):
        scenario = example5()
        cost = CardinalityCostFunction(
            relation_cardinality={"mt_prof": 40}, per_tuple=0.05
        )
        baseline = run(scenario, cost=cost, **BASELINE)
        incremental = run(scenario, cost=cost)
        assert incremental.best_cost == pytest.approx(baseline.best_cost)
        for node in incremental.tree:
            assert node.cost == pytest.approx(
                cost.commands_cost(node.state.commands)
            )

    def test_no_cost_bound_equivalence(self):
        scenario = redundant_sources(4)
        baseline = run(scenario, prune_by_cost=False, **BASELINE)
        incremental = run(scenario, prune_by_cost=False)
        assert node_views(incremental) == node_views(baseline)
        assert (
            incremental.stats.pruned_by_domination
            == baseline.stats.pruned_by_domination
        )

    def test_candidate_inheritance_is_counted(self):
        scenario = redundant_sources(4)
        incremental = run(scenario)
        baseline = run(scenario, **BASELINE)
        assert incremental.stats.candidates_inherited > 0
        assert baseline.stats.candidates_inherited == 0
        assert baseline.stats.candidates_fresh == 0

    def test_pending_view_consumes_via_cursor(self):
        scenario = example1()
        result = run(scenario)
        for node in result.tree:
            if node.pruned or node.successful:
                continue
            remaining = node.pending
            assert len(remaining) == len(node.candidates) - node.cursor
