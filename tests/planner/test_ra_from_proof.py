"""Tests for Theorem 7: RA/USPJ-neg plans via backward induction."""

import pytest

from repro.data.instance import Instance
from repro.data.source import InMemorySource
from repro.fo.formulas import Exists, Forall
from repro.logic.atoms import Atom
from repro.logic.queries import cq
from repro.logic.terms import Null
from repro.planner.plan_state import PlanningError
from repro.planner.ra_from_proof import (
    BackwardStep,
    executable_query_from_proof,
    find_bidirectional_proof,
    ra_plan_from_proof,
)
from repro.schema.accessible import Variant
from repro.schema.core import SchemaBuilder


def q_boolean():
    return cq([], [("Profinfo", ["?e", "?o", "?l"])], name="Qb")


class TestFormulaConstruction:
    def test_positive_steps_build_existential_nest(self, uni_schema):
        steps = (
            BackwardStep(
                Atom("Udirect", (Null("Qb_e"), Null("Qb_l"))), "mt_udir"
            ),
            BackwardStep(
                Atom(
                    "Profinfo", (Null("Qb_e"), Null("Qb_o"), Null("Qb_l"))
                ),
                "mt_prof",
            ),
        )
        formula = executable_query_from_proof(uni_schema, q_boolean(), steps)
        assert isinstance(formula, Exists)
        assert isinstance(formula.body.parts[1], Exists)

    def test_negative_step_builds_universal(self, uni_schema):
        steps = (
            BackwardStep(
                Atom("Udirect", (Null("Qb_e"), Null("Qb_l"))), "mt_udir"
            ),
            BackwardStep(
                Atom(
                    "Profinfo", (Null("Qb_e"), Null("Qb_o"), Null("Qb_l"))
                ),
                "mt_prof",
                negative=True,
            ),
        )
        formula = executable_query_from_proof(uni_schema, q_boolean(), steps)
        inner = formula.body.parts[1]
        assert isinstance(inner, Forall)

    def test_inaccessible_input_rejected(self, uni_schema):
        steps = (
            BackwardStep(
                Atom(
                    "Profinfo", (Null("Qb_e"), Null("Qb_o"), Null("Qb_l"))
                ),
                "mt_prof",
            ),
        )
        with pytest.raises(PlanningError):
            executable_query_from_proof(uni_schema, q_boolean(), steps)

    def test_empty_proof_gives_top(self, uni_schema):
        from repro.fo.formulas import Top

        formula = executable_query_from_proof(uni_schema, q_boolean(), ())
        assert isinstance(formula, Top)


class TestProofSearch:
    def test_finds_positive_proof(self, uni_schema):
        steps = find_bidirectional_proof(uni_schema, q_boolean())
        assert steps is not None
        assert [s.fact.relation for s in steps] == ["Udirect", "Profinfo"]

    def test_unanswerable_yields_none(self):
        schema = SchemaBuilder("s").relation("Hidden", 1).build()
        steps = find_bidirectional_proof(
            schema, cq([], [("Hidden", ["?x"])]), max_steps=3
        )
        assert steps is None

    def test_negative_variant_proof_search_runs(self, uni_schema):
        steps = find_bidirectional_proof(
            uni_schema, q_boolean(), variant=Variant.NEGATIVE
        )
        assert steps is not None  # positive proof also valid here


class TestGeneratedPlans:
    def test_plan_from_positive_proof_answers_query(self, uni_schema):
        steps = find_bidirectional_proof(uni_schema, q_boolean())
        plan = ra_plan_from_proof(uni_schema, q_boolean(), steps)
        yes = Instance(
            {
                "Profinfo": [("e1", "o1", "smith")],
                "Udirect": [("e1", "smith")],
            }
        )
        no = Instance({"Udirect": [("e9", "doe")]})
        assert not plan.run(InMemorySource(uni_schema, yes)).is_empty
        assert plan.run(InMemorySource(uni_schema, no)).is_empty

    def test_universal_plan_verifies_all_matches(self):
        """A hand-built negative-step proof: 'every R-tuple with key k is
        also in S' compiles to an access + difference plan."""
        schema = (
            SchemaBuilder("s")
            .relation("Keys", 1)
            .relation("R", 2)
            .relation("S", 2)
            .free_access("Keys")
            .access("mt_r", "R", inputs=[0])
            .access("mt_s", "S", inputs=[0, 1])
            .build()
        )
        query = cq([], [("Keys", ["?k"])], name="Qk")
        k, v = Null("Qk_k"), Null("w")
        steps = (
            BackwardStep(Atom("Keys", (k,)), "mt_Keys"),
            BackwardStep(Atom("R", (k, v)), "mt_r", negative=True),
            BackwardStep(Atom("S", (k, v)), "mt_s"),
        )
        formula = executable_query_from_proof(schema, query, steps)
        plan = ra_plan_from_proof(schema, query, steps)
        from repro.plans.plan import PlanKind

        assert plan.kind is PlanKind.USPJ_NEG
        # Semantics: true iff exists key k with all R(k, v) having S(k, v).
        good = Instance(
            {"Keys": [("k1",)], "R": [("k1", "a")], "S": [("k1", "a")]}
        )
        bad = Instance(
            {"Keys": [("k1",)], "R": [("k1", "a"), ("k1", "b")],
             "S": [("k1", "a")]}
        )
        assert not plan.run(InMemorySource(schema, good)).is_empty
        assert plan.run(InMemorySource(schema, bad)).is_empty

    def test_vacuous_universal_is_true(self):
        schema = (
            SchemaBuilder("s")
            .relation("Keys", 1)
            .relation("R", 2)
            .relation("S", 2)
            .free_access("Keys")
            .access("mt_r", "R", inputs=[0])
            .access("mt_s", "S", inputs=[0, 1])
            .build()
        )
        query = cq([], [("Keys", ["?k"])], name="Qk")
        k, v = Null("Qk_k"), Null("w")
        steps = (
            BackwardStep(Atom("Keys", (k,)), "mt_Keys"),
            BackwardStep(Atom("R", (k, v)), "mt_r", negative=True),
            BackwardStep(Atom("S", (k, v)), "mt_s"),
        )
        plan = ra_plan_from_proof(schema, query, steps)
        empty_r = Instance({"Keys": [("k1",)]})
        assert not plan.run(InMemorySource(schema, empty_r)).is_empty
