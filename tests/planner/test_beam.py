"""Tests for the beam-width search restriction."""

import pytest

from repro.planner.answerability import Answerability
from repro.planner.search import SearchOptions, find_best_plan
from repro.scenarios import example5


class TestBeamWidth:
    def test_beam_reduces_nodes(self):
        scenario = example5(sources=4)
        full = find_best_plan(
            scenario.schema,
            scenario.query,
            SearchOptions(max_accesses=5, prune_by_cost=False,
                          domination=False),
        )
        beam = find_best_plan(
            scenario.schema,
            scenario.query,
            SearchOptions(
                max_accesses=5,
                prune_by_cost=False,
                domination=False,
                beam_width=1,
            ),
        )
        assert beam.stats.nodes_created < full.stats.nodes_created

    def test_beam_one_still_finds_a_plan(self):
        scenario = example5(sources=3)
        result = find_best_plan(
            scenario.schema,
            scenario.query,
            SearchOptions(
                max_accesses=4, beam_width=1, candidate_order="method"
            ),
        )
        assert result.found

    def test_beam_can_miss_the_optimum(self):
        """With method-priority ordering and beam 1, the search walks the
        cheap-method-first path only and never revisits alternatives --
        the found plan may be suboptimal (the documented trade-off)."""
        scenario = example5(
            sources=2, source_costs=[1.0, 1.5], profinfo_cost=5.0
        )
        exact = find_best_plan(
            scenario.schema, scenario.query, SearchOptions(max_accesses=3)
        )
        beam = find_best_plan(
            scenario.schema,
            scenario.query,
            SearchOptions(
                max_accesses=3, beam_width=1, candidate_order="method"
            ),
        )
        assert beam.found
        assert beam.best_cost >= exact.best_cost

    def test_beam_search_never_claims_exhaustion(self):
        scenario = example5(sources=2)
        result = find_best_plan(
            scenario.schema,
            scenario.query,
            SearchOptions(max_accesses=3, beam_width=2),
        )
        assert not result.exhausted
