"""Tests for Theorem 6: CQ rewriting over views via the chase."""

import pytest

from repro.data.source import InMemorySource
from repro.logic.containment import is_equivalent
from repro.logic.queries import cq
from repro.planner.views import (
    ViewDefinition,
    rewrite_over_views,
    views_schema,
)
from repro.scenarios import view_stack_scenario
from repro.schema.core import Relation, SchemaError


BASE = [
    Relation("R", 2, ("x", "y")),
    Relation("S", 2, ("y", "z")),
]


def schema_with(*views):
    return views_schema(BASE, list(views))


V_R = ViewDefinition("VR", cq(["?x", "?y"], [("R", ["?x", "?y"])], name="dR"))
V_S = ViewDefinition("VS", cq(["?y", "?z"], [("S", ["?y", "?z"])], name="dS"))
V_JOIN = ViewDefinition(
    "VJ",
    cq(["?x", "?z"], [("R", ["?x", "?y"]), ("S", ["?y", "?z"])], name="dJ"),
)


class TestSchemaConstruction:
    def test_views_get_free_access_base_hidden(self):
        schema = schema_with(V_R)
        assert schema.methods_of("VR")
        assert not schema.methods_of("R")

    def test_two_constraints_per_view(self):
        schema = schema_with(V_R)
        names = {tgd.name for tgd in schema.constraints}
        assert names == {"def->VR", "VR->def"}

    def test_name_collision_rejected(self):
        bad = ViewDefinition("R", cq(["?x", "?y"], [("R", ["?x", "?y"])]))
        with pytest.raises(SchemaError):
            schema_with(bad)


class TestRewriting:
    def test_identity_view_rewrites(self):
        schema = schema_with(V_R)
        result = rewrite_over_views(
            schema, cq(["?x", "?y"], [("R", ["?x", "?y"])], name="Q")
        )
        assert result.rewritable
        assert result.rewriting.relations() == {"VR"}

    def test_join_query_from_two_views(self):
        schema = schema_with(V_R, V_S)
        query = cq(
            ["?x", "?z"],
            [("R", ["?x", "?y"]), ("S", ["?y", "?z"])],
            name="Q",
        )
        result = rewrite_over_views(schema, query)
        assert result.rewritable
        assert result.rewriting.relations() <= {"VR", "VS"}

    def test_join_view_alone_insufficient_for_projection_of_middle(self):
        # Query asks for the join variable y; VJ projects it away.
        schema = schema_with(V_JOIN)
        query = cq(
            ["?y"],
            [("R", ["?x", "?y"]), ("S", ["?y", "?z"])],
            name="Qy",
        )
        result = rewrite_over_views(schema, query)
        assert not result.rewritable

    def test_join_view_sufficient_for_projected_query(self):
        schema = schema_with(V_JOIN)
        query = cq(
            ["?x", "?z"],
            [("R", ["?x", "?y"]), ("S", ["?y", "?z"])],
            name="Q",
        )
        result = rewrite_over_views(schema, query)
        assert result.rewritable
        assert result.rewriting.relations() == {"VJ"}

    def test_unrelated_view_cannot_rewrite(self):
        schema = schema_with(V_S)
        query = cq(["?x", "?y"], [("R", ["?x", "?y"])], name="Q")
        assert not rewrite_over_views(schema, query).rewritable

    def test_rewriting_semantically_correct_on_data(self):
        """The rewriting evaluated over view data equals Q over base data."""
        scenario = view_stack_scenario(2)
        result = rewrite_over_views(scenario.schema, scenario.query)
        assert result.rewritable
        instance = scenario.instance(0)
        truth = instance.evaluate(scenario.query)
        via_views = instance.evaluate(result.rewriting)
        assert via_views == truth

    def test_plan_executes_on_materialized_views(self):
        scenario = view_stack_scenario(2)
        result = rewrite_over_views(scenario.schema, scenario.query)
        instance = scenario.instance(1)
        out = result.plan.run(InMemorySource(scenario.schema, instance))
        assert set(out.rows) == instance.evaluate(scenario.query)

    def test_missing_closing_view_not_rewritable(self):
        scenario = view_stack_scenario(2, include_closing_view=False)
        result = rewrite_over_views(scenario.schema, scenario.query)
        assert not result.rewritable


class TestViewsWithAccessPatterns:
    """The Deutsch-Ludäscher-Nash setting: views carrying binding patterns."""

    def test_restricted_view_blocks_direct_plan(self):
        # VR requires its first position as input; nothing seeds it.
        schema = views_schema(BASE, [V_R], view_inputs={"VR": [0]})
        query = cq(["?x", "?y"], [("R", ["?x", "?y"])], name="Q")
        assert not rewrite_over_views(schema, query).rewritable

    def test_free_view_feeds_restricted_view(self):
        # VS is free and exposes y values; VR needs... VR's inputs come
        # from the shared join variable, so the chain works when the
        # query joins through it.
        schema = views_schema(
            BASE, [V_R, V_S], view_inputs={"VR": []}
        )
        query = cq(
            ["?x", "?z"],
            [("R", ["?x", "?y"]), ("S", ["?y", "?z"])],
            name="Q",
        )
        result = rewrite_over_views(schema, query)
        assert result.rewritable

    def test_constant_seeds_restricted_view(self):
        from repro.logic.terms import Constant

        schema = views_schema(
            BASE,
            [V_R],
            constants=[Constant("k")],
            view_inputs={"VR": [0]},
        )
        query = cq(["?y"], [("R", ["k", "?y"])], name="Qk")
        result = rewrite_over_views(schema, query)
        assert result.rewritable
        # The plan probes VR with the constant.
        assert result.plan.methods_used() == ("mt_VR",)
