"""Unit tests for chase-proof replay and plan generation (Theorem 5)."""

import pytest

from repro.data.instance import Instance
from repro.data.source import InMemorySource
from repro.logic.atoms import Atom
from repro.logic.queries import cq
from repro.logic.terms import Constant, Null
from repro.planner.plan_state import PlanningError
from repro.planner.proof_to_plan import (
    ChaseProof,
    Exposure,
    plan_from_proof,
    replay_proof,
)
from repro.schema.accessible import AccessibleSchema, Variant
from repro.schema.core import SchemaBuilder


@pytest.fixture
def acc(uni_schema):
    return AccessibleSchema(uni_schema, Variant.FORWARD)


def q_boolean():
    return cq([], [("Profinfo", ["?e", "?o", "?l"])], name="Q")


def example1_proof():
    query = q_boolean()
    return ChaseProof(
        query,
        (
            Exposure(
                Atom("Udirect", (Null("Q_e"), Null("Q_l"))), "mt_udir"
            ),
            Exposure(
                Atom(
                    "Profinfo",
                    (Null("Q_e"), Null("Q_o"), Null("Q_l")),
                ),
                "mt_prof",
            ),
        ),
    )


class TestReplay:
    def test_example1_proof_replays(self, acc):
        result = replay_proof(acc, example1_proof())
        assert result.plan.access_commands
        assert result.match is not None

    def test_plan_structure_mirrors_proof(self, acc):
        plan = plan_from_proof(acc, example1_proof())
        assert plan.methods_used() == ("mt_udir", "mt_prof")

    def test_incomplete_proof_rejected(self, acc):
        query = q_boolean()
        partial = ChaseProof(
            query,
            (
                Exposure(
                    Atom("Udirect", (Null("Q_e"), Null("Q_l"))),
                    "mt_udir",
                ),
            ),
        )
        with pytest.raises(PlanningError):
            plan_from_proof(acc, partial)

    def test_out_of_order_proof_rejected(self, acc):
        query = q_boolean()
        reordered = ChaseProof(
            query,
            tuple(reversed(example1_proof().exposures)),
        )
        # Profinfo first: its input e is not accessible yet.
        with pytest.raises(PlanningError):
            plan_from_proof(acc, reordered)

    def test_unknown_fact_rejected(self, acc):
        query = q_boolean()
        bogus = ChaseProof(
            query,
            (
                Exposure(
                    Atom("Udirect", (Null("nope"), Null("nah"))),
                    "mt_udir",
                ),
            ),
        )
        # The exposure itself fires (the access command is generic), but
        # the proof cannot witness InferredAccQ.
        with pytest.raises(PlanningError):
            plan_from_proof(acc, bogus)


class TestGeneratedPlanSemantics:
    def test_plan_answers_query_positive(self, acc, uni_schema):
        plan = plan_from_proof(acc, example1_proof())
        instance = Instance(
            {
                "Profinfo": [("e1", "o1", "smith")],
                "Udirect": [("e1", "smith")],
            }
        )
        out = plan.run(InMemorySource(uni_schema, instance))
        assert not out.is_empty

    def test_plan_answers_query_negative(self, acc, uni_schema):
        plan = plan_from_proof(acc, example1_proof())
        instance = Instance({"Udirect": [("e9", "doe")]})
        out = plan.run(InMemorySource(uni_schema, instance))
        assert out.is_empty

    def test_non_boolean_projection(self, uni_schema):
        query = cq(
            ["?e", "?o"],
            [("Profinfo", ["?e", "?o", "?l"])],
            name="Q",
        )
        acc = AccessibleSchema(uni_schema, Variant.FORWARD)
        proof = ChaseProof(
            query,
            (
                Exposure(
                    Atom("Udirect", (Null("Q_e"), Null("Q_l"))),
                    "mt_udir",
                ),
                Exposure(
                    Atom(
                        "Profinfo",
                        (Null("Q_e"), Null("Q_o"), Null("Q_l")),
                    ),
                    "mt_prof",
                ),
            ),
        )
        plan = plan_from_proof(acc, proof)
        instance = Instance(
            {
                "Profinfo": [
                    ("e1", "o1", "smith"),
                    ("e2", "o2", "jones"),
                ],
                "Udirect": [("e1", "smith"), ("e2", "jones")],
            }
        )
        out = plan.run(InMemorySource(uni_schema, instance))
        assert out.rows == {
            (Constant("e1"), Constant("o1")),
            (Constant("e2"), Constant("o2")),
        }

    def test_induced_facts_share_one_access(self):
        """Two facts behind the same access input: one access command."""
        schema = (
            SchemaBuilder("s")
            .relation("R", 2)
            .relation("A", 1)
            .free_access("A")
            .access("mt_r", "R", inputs=[0])
            .tgd("A(x) -> R(x, y)")
            .tgd("A(x) -> R(x, z)")
            .build()
        )
        query = cq([], [("A", ["?x"]), ("R", ["?x", "?y"])], name="Q")
        from repro.planner import find_any_plan

        result = find_any_plan(schema, query, max_accesses=4)
        assert result.found
        # Both chase R-facts over the same x use the same raw access.
        assert len(result.best_plan.access_commands) <= 2
