"""Tests for Algorithm 1: correctness, optimality, pruning, ordering."""

import itertools

import pytest

from repro.cost.functions import CountingCostFunction, SimpleCostFunction
from repro.data.source import InMemorySource
from repro.logic.queries import cq
from repro.planner.search import (
    SearchOptions,
    find_any_plan,
    find_best_plan,
)
from repro.scenarios import example1, example2, example5, referential_chain
from repro.schema.core import SchemaBuilder


class TestBasicSearch:
    def test_example1_two_access_plan(self, uni_schema, uni_boolean_query):
        result = find_best_plan(uni_schema, uni_boolean_query)
        assert result.found
        assert result.best_plan.methods_used() == ("mt_udir", "mt_prof")
        assert result.best_cost == pytest.approx(3.0)  # 1 + 2

    def test_unanswerable_query(self):
        schema = (
            SchemaBuilder("s")
            .relation("Hidden", 1)
            .build()
        )
        query = cq([], [("Hidden", ["?x"])])
        result = find_best_plan(schema, query)
        assert not result.found

    def test_free_relation_directly_answerable(self):
        schema = SchemaBuilder("s").relation("R", 1).free_access("R").build()
        query = cq(["?x"], [("R", ["?x"])])
        result = find_best_plan(schema, query)
        assert result.found
        assert len(result.best_plan.access_commands) == 1

    def test_access_restriction_blocks_plan(self):
        # R needs an input that can never become accessible.
        schema = (
            SchemaBuilder("s")
            .relation("R", 2)
            .access("mt_r", "R", inputs=[0])
            .build()
        )
        query = cq([], [("R", ["?x", "?y"])])
        assert not find_best_plan(schema, query).found

    def test_schema_constant_enables_access(self):
        schema = (
            SchemaBuilder("s")
            .relation("R", 2)
            .access("mt_r", "R", inputs=[0])
            .constant("k")
            .build()
        )
        # The constant in the query makes the input accessible.
        query = cq(["?y"], [("R", ["k", "?y"])])
        result = find_best_plan(schema, query)
        assert result.found

    def test_example2_chain(self, scenario2):
        result = find_best_plan(
            scenario2.schema, scenario2.query, SearchOptions(max_accesses=5)
        )
        assert result.found
        methods = result.best_plan.methods_used()
        assert methods.index("mt_d1") > methods.index("mt_ids")
        assert methods.index("mt_d2") > methods.index("mt_d1")


class TestOptimality:
    def test_example5_picks_cheapest_source(self):
        scenario = example5(
            sources=3, source_costs=[4.0, 1.0, 9.0], profinfo_cost=5.0
        )
        result = find_best_plan(
            scenario.schema, scenario.query, SearchOptions(max_accesses=4)
        )
        assert result.found
        # Best plan: cheapest source (Udirect2 at 1.0) + Profinfo.
        assert result.best_cost == pytest.approx(6.0)
        assert "mt_udirect2" in result.best_plan.methods_used()

    def test_matches_bruteforce_over_orderings(self):
        """Theorem 9 spot check: Algorithm 1's best equals the brute-force
        minimum over all source subsets for Example 5 with 3 sources."""
        costs = [3.0, 2.0, 7.0]
        prof = 4.0
        scenario = example5(
            sources=3, source_costs=costs, profinfo_cost=prof
        )
        result = find_best_plan(
            scenario.schema, scenario.query, SearchOptions(max_accesses=4)
        )
        # Any valid plan exposes a non-empty subset of sources then
        # Profinfo; its simple cost is sum(subset) + prof.
        brute = min(
            sum(subset) + prof
            for r in range(1, 4)
            for subset in itertools.combinations(costs, r)
        )
        assert result.best_cost == pytest.approx(brute)

    def test_depth_bound_excludes_long_plans(self, scenario2):
        narrow = find_best_plan(
            scenario2.schema, scenario2.query, SearchOptions(max_accesses=2)
        )
        assert not narrow.found  # the chain needs 4 accesses

    def test_best_cost_history_monotone(self):
        scenario = example5(sources=3)
        result = find_best_plan(
            scenario.schema,
            scenario.query,
            SearchOptions(max_accesses=4, candidate_order="method"),
        )
        history = result.stats.best_cost_history
        assert history == sorted(history, reverse=True)
        assert result.best_cost == history[-1]


class TestPruning:
    def _run(self, **overrides):
        scenario = example5(sources=4)
        options = SearchOptions(max_accesses=5, **overrides)
        return find_best_plan(scenario.schema, scenario.query, options)

    def test_pruning_preserves_best_cost(self):
        full = self._run()
        no_dom = self._run(domination=False)
        no_cost = self._run(prune_by_cost=False)
        bare = self._run(domination=False, prune_by_cost=False)
        assert (
            full.best_cost
            == no_dom.best_cost
            == no_cost.best_cost
            == bare.best_cost
        )

    def test_domination_reduces_nodes(self):
        with_dom = self._run(prune_by_cost=False)
        without = self._run(domination=False, prune_by_cost=False)
        assert (
            with_dom.stats.nodes_created < without.stats.nodes_created
        )
        assert with_dom.stats.pruned_by_domination > 0

    def test_cost_pruning_counts(self):
        result = self._run(domination=False)
        assert result.stats.pruned_by_cost > 0

    def test_max_nodes_budget(self):
        scenario = example5(sources=4)
        options = SearchOptions(max_accesses=5, max_nodes=3)
        result = find_best_plan(scenario.schema, scenario.query, options)
        assert result.stats.nodes_created <= 3


class TestStrategies:
    def test_best_first_finds_same_optimum(self):
        scenario = example5(sources=3, source_costs=[5.0, 1.0, 3.0])
        dfs = find_best_plan(
            scenario.schema,
            scenario.query,
            SearchOptions(max_accesses=4, strategy="dfs"),
        )
        bf = find_best_plan(
            scenario.schema,
            scenario.query,
            SearchOptions(max_accesses=4, strategy="best-first"),
        )
        assert dfs.best_cost == bf.best_cost

    def test_stop_on_first(self):
        scenario = example5(sources=3)
        result = find_best_plan(
            scenario.schema,
            scenario.query,
            SearchOptions(max_accesses=4, stop_on_first=True),
        )
        assert result.found
        assert result.stats.successes == 1

    def test_find_any_plan_wrapper(self, uni_schema, uni_boolean_query):
        result = find_any_plan(uni_schema, uni_boolean_query)
        assert result.found

    def test_custom_cost_function(self, uni_schema, uni_boolean_query):
        result = find_best_plan(
            uni_schema,
            uni_boolean_query,
            SearchOptions(cost=CountingCostFunction()),
        )
        assert result.best_cost == pytest.approx(2.0)

    def test_collect_tree_includes_pruned(self):
        scenario = example5(sources=3)
        result = find_best_plan(
            scenario.schema,
            scenario.query,
            SearchOptions(max_accesses=4, collect_tree=True),
        )
        assert any(node.pruned for node in result.tree)
        assert any(node.successful for node in result.tree)


class TestFigure1:
    def test_exploration_order_matches_paper(self):
        """Figure 1: n0 -> n1(U1) -> n2(U2) -> n3(U3) -> n4(Profinfo)."""
        scenario = example5(
            sources=3, source_costs=[1.0, 2.0, 3.0], profinfo_cost=5.0
        )
        result = find_best_plan(
            scenario.schema,
            scenario.query,
            SearchOptions(
                max_accesses=4,
                collect_tree=True,
                candidate_order="method",
            ),
        )
        first_five = result.tree[:5]
        relations = [
            node.exposures[-1].fact.relation if node.exposures else "root"
            for node in first_five
        ]
        assert relations == [
            "root",
            "Udirect1",
            "Udirect2",
            "Udirect3",
            "Profinfo",
        ]
        assert first_five[4].successful

    def test_reverse_order_node_dominated(self):
        """The paper's n''' (expose U2 then U1) is pruned by domination."""
        scenario = example5(sources=3)
        result = find_best_plan(
            scenario.schema,
            scenario.query,
            SearchOptions(
                max_accesses=4,
                collect_tree=True,
                candidate_order="method",
            ),
        )
        dominated = [
            node for node in result.tree if node.pruned == "domination"
        ]
        assert dominated
        # At least one dominated node is a permutation of an explored set.
        explored_sets = {
            frozenset(e.fact.relation for e in node.exposures)
            for node in result.tree
            if node.pruned is None
        }
        assert any(
            frozenset(e.fact.relation for e in node.exposures)
            in explored_sets
            for node in dominated
        )
