"""Tests for the plan-existence wrapper and its chase policies."""

import pytest

from repro.chase.engine import ChasePolicy
from repro.logic.queries import cq
from repro.planner.answerability import (
    answerability_witness,
    default_policy_for,
    is_answerable,
)
from repro.schema.core import SchemaBuilder


class TestIsAnswerable:
    def test_example1_answerable(self, uni_schema, uni_boolean_query):
        assert is_answerable(uni_schema, uni_boolean_query)

    def test_hidden_relation_unanswerable(self):
        schema = SchemaBuilder("s").relation("H", 1).build()
        assert not is_answerable(schema, cq([], [("H", ["?x"])]))

    def test_witness_contains_plan_and_proof(
        self, uni_schema, uni_boolean_query
    ):
        result = answerability_witness(uni_schema, uni_boolean_query)
        assert result.found
        assert result.best_plan is not None
        assert result.best_proof is not None

    def test_budget_too_small_says_no(self, scenario2):
        assert not is_answerable(
            scenario2.schema, scenario2.query, max_accesses=2
        )
        assert is_answerable(
            scenario2.schema, scenario2.query, max_accesses=5
        )

    def test_cyclic_guarded_constraints_terminate(self):
        """A cyclic ID set: naive chase diverges, blocking terminates."""
        schema = (
            SchemaBuilder("s")
            .relation("R", 2)
            .access("mt_r", "R", inputs=[0])
            .tgd("R(x, y) -> R(y, z)")
            .build()
        )
        query = cq([], [("R", ["?x", "?y"])])
        # No way to seed the first input: unanswerable, and the check
        # must return (not hang) thanks to blocking.
        assert not is_answerable(schema, query, max_accesses=3)


class TestDefaultPolicy:
    def test_guarded_schema_gets_blocking(self):
        schema = (
            SchemaBuilder("s")
            .relation("R", 2)
            .tgd("R(x, y) -> R(y, z)")
            .build()
        )
        policy = default_policy_for(schema)
        assert policy.blocking is not None

    def test_weakly_acyclic_unguarded_gets_plain_policy(self):
        # Unguarded but weakly acyclic (full TGD): chase terminates, so
        # neither blocking nor a depth bound is needed.
        schema = (
            SchemaBuilder("s")
            .relation("R", 2)
            .relation("S", 2)
            .tgd("R(x, y) & S(y, z) -> R(x, z)")
            .build()
        )
        policy = default_policy_for(schema)
        assert policy.blocking is None
        assert policy.max_depth is None

    def test_unguarded_non_wa_schema_gets_depth_bound(self):
        schema = (
            SchemaBuilder("s")
            .relation("E", 2)
            .tgd("E(x, y) & E(y, z) -> E(x, w)")  # unguarded, existential
            .tgd("E(x, y) -> E(y, x)")            # closes the cycle
            .build()
        )
        policy = default_policy_for(schema)
        assert policy.blocking is None
        assert policy.max_depth is not None
