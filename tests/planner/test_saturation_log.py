"""Tests for saturation-completeness tracking (certified negatives)."""

import pytest

from repro.chase.engine import ChaseResult
from repro.planner.proof_to_plan import SaturationLog


class TestSaturationLog:
    def test_starts_complete(self):
        assert SaturationLog().complete

    def test_complete_result_keeps_flag(self):
        log = SaturationLog()
        log.absorb(ChaseResult(reached_fixpoint=True))
        assert log.complete

    def test_blocked_result_clears_flag(self):
        log = SaturationLog()
        log.absorb(ChaseResult(reached_fixpoint=True, blocked=1))
        assert not log.complete

    def test_truncated_result_clears_flag(self):
        log = SaturationLog()
        log.absorb(ChaseResult(reached_fixpoint=True, depth_truncated=2))
        assert not log.complete

    def test_budget_stop_clears_flag(self):
        log = SaturationLog()
        log.absorb(ChaseResult(reached_fixpoint=False))
        assert not log.complete

    def test_flag_is_sticky(self):
        log = SaturationLog()
        log.absorb(ChaseResult(reached_fixpoint=False))
        log.absorb(ChaseResult(reached_fixpoint=True))
        assert not log.complete


class TestExhaustionSemantics:
    def test_blocking_disables_certification(self):
        """A guarded cyclic schema saturates under blocking: the search
        still works, but a failed run must NOT claim exhaustion."""
        from repro.chase.blocking import BlockingPolicy
        from repro.chase.engine import ChasePolicy
        from repro.logic.queries import cq
        from repro.planner.search import SearchOptions, find_best_plan
        from repro.schema.core import SchemaBuilder

        schema = (
            SchemaBuilder("s")
            .relation("R", 2)
            .access("mt_r", "R", inputs=[0])
            .tgd("R(x, y) -> R(y, z)")
            .build()
        )
        query = cq([], [("R", ["?x", "?y"])])
        result = find_best_plan(
            schema,
            query,
            SearchOptions(
                max_accesses=3,
                chase_policy=ChasePolicy(
                    blocking=BlockingPolicy(enabled=True)
                ),
            ),
        )
        assert not result.found
        assert not result.exhausted  # blocking happened somewhere
