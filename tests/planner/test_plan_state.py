"""Unit tests for the incremental plan builder (PlanState)."""

import pytest

from repro.data.instance import Instance
from repro.data.source import InMemorySource
from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Null
from repro.planner.plan_state import PlanningError, PlanState
from repro.schema.core import AccessMethod, SchemaBuilder


E, L, O = Null("e"), Null("l"), Null("o")


@pytest.fixture
def schema():
    return (
        SchemaBuilder("s")
        .relation("Udirect", 2)
        .relation("Profinfo", 3)
        .access("mt_udir", "Udirect", inputs=[])
        .access("mt_prof", "Profinfo", inputs=[0])
        .build()
    )


class TestExpose:
    def test_free_exposure_starts_plan(self, schema):
        state = PlanState().expose(
            Atom("Udirect", (E, L)), schema.method("mt_udir")
        )
        assert state.access_command_count == 1
        assert state.attributes == {"e", "l"}
        assert state.current is not None

    def test_keyed_exposure_requires_attribute(self, schema):
        with pytest.raises(PlanningError):
            PlanState().expose(
                Atom("Profinfo", (E, O, L)), schema.method("mt_prof")
            )

    def test_chained_exposure(self, schema):
        state = PlanState().expose(
            Atom("Udirect", (E, L)), schema.method("mt_udir")
        )
        state = state.expose(
            Atom("Profinfo", (E, O, L)), schema.method("mt_prof")
        )
        assert state.access_command_count == 2
        assert state.attributes == {"e", "l", "o"}

    def test_relation_method_mismatch(self, schema):
        with pytest.raises(PlanningError):
            PlanState().expose(
                Atom("Udirect", (E, L)), schema.method("mt_prof")
            )

    def test_immutable_states(self, schema):
        empty = PlanState()
        extended = empty.expose(
            Atom("Udirect", (E, L)), schema.method("mt_udir")
        )
        assert empty.access_command_count == 0
        assert extended.access_command_count == 1

    def test_access_reuse_same_inputs(self, schema):
        state = PlanState().expose(
            Atom("Udirect", (E, L)), schema.method("mt_udir")
        )
        # Another Udirect fact exposed through the same (input-free)
        # access: no new access command, just middleware.
        other = Atom("Udirect", (Null("e2"), Null("l2")))
        state2 = state.expose(other, schema.method("mt_udir"))
        assert state2.access_command_count == 1
        assert "e2" in state2.attributes

    def test_constant_inputs_no_attribute_needed(self, schema):
        method = AccessMethod("mt_const", "Profinfo", (0,))
        schema2 = (
            SchemaBuilder("s2")
            .relation("Profinfo", 3)
            .access("mt_const", "Profinfo", inputs=[0])
            .build()
        )
        fact = Atom("Profinfo", (Constant("e1"), O, L))
        state = PlanState().expose(fact, schema2.method("mt_const"))
        assert state.access_command_count == 1


class TestFinish:
    def test_boolean_finish(self, schema):
        state = PlanState().expose(
            Atom("Udirect", (E, L)), schema.method("mt_udir")
        )
        plan = state.finish(())
        assert plan.output_table == "T_fin"
        # Output is the zero-attribute table.
        assert plan.commands[-1].expr.attrs == ()

    def test_finish_projects_head_attributes(self, schema):
        state = PlanState().expose(
            Atom("Udirect", (E, L)), schema.method("mt_udir")
        )
        plan = state.finish((E,))
        assert plan.commands[-1].expr.attrs == ("e",)

    def test_finish_rejects_inaccessible_output(self, schema):
        state = PlanState().expose(
            Atom("Udirect", (E, L)), schema.method("mt_udir")
        )
        with pytest.raises(PlanningError):
            state.finish((Null("zzz"),))

    def test_access_free_boolean_plan(self):
        plan = PlanState().finish(())
        assert plan.access_commands == ()

    def test_access_free_non_boolean_rejected(self):
        with pytest.raises(PlanningError):
            PlanState().finish((E,))


class TestGeneratedSemantics:
    def test_repeated_null_becomes_equality_filter(self, schema):
        # Exposing R(e, e) must keep only tuples with equal columns.
        schema2 = (
            SchemaBuilder("s2")
            .relation("R", 2)
            .free_access("R")
            .build()
        )
        state = PlanState().expose(
            Atom("R", (E, E)), schema2.method("mt_R")
        )
        plan = state.finish((E,))
        instance = Instance({"R": [("a", "a"), ("a", "b")]})
        out = plan.run(InMemorySource(schema2, instance))
        assert out.rows == frozenset({(Constant("a"),)})

    def test_constant_position_becomes_filter(self, schema):
        schema2 = (
            SchemaBuilder("s2")
            .relation("R", 2)
            .free_access("R")
            .constant("k")
            .build()
        )
        state = PlanState().expose(
            Atom("R", (E, Constant("k"))), schema2.method("mt_R")
        )
        plan = state.finish((E,))
        instance = Instance({"R": [("a", "k"), ("b", "other")]})
        out = plan.run(InMemorySource(schema2, instance))
        assert out.rows == frozenset({(Constant("a"),)})
