"""Tests for the three-valued answerability decision with certificates."""

import pytest

from repro.chase.engine import ChasePolicy
from repro.logic.queries import cq
from repro.planner.answerability import Answerability, decide_answerability
from repro.schema.core import SchemaBuilder


class TestAnswerable:
    def test_positive_case(self, uni_schema, uni_boolean_query):
        verdict = decide_answerability(uni_schema, uni_boolean_query)
        assert verdict is Answerability.ANSWERABLE


class TestCertifiedNegative:
    def test_hidden_relation(self):
        schema = SchemaBuilder("s").relation("H", 1).build()
        verdict = decide_answerability(schema, cq([], [("H", ["?x"])]))
        assert verdict is Answerability.NO_PLAN_WITHIN_BUDGET

    def test_uncovered_input_position(self):
        schema = (
            SchemaBuilder("s")
            .relation("R", 2)
            .access("mt_r", "R", inputs=[0])
            .build()
        )
        verdict = decide_answerability(schema, cq([], [("R", ["?x", "?y"])]))
        assert verdict is Answerability.NO_PLAN_WITHIN_BUDGET

    def test_budget_certificate_is_budget_relative(self, scenario2):
        """Example 2 needs 4 accesses: certified-no at 2, answerable at 5."""
        narrow = decide_answerability(
            scenario2.schema, scenario2.query, max_accesses=2
        )
        wide = decide_answerability(
            scenario2.schema, scenario2.query, max_accesses=5
        )
        assert narrow is Answerability.NO_PLAN_WITHIN_BUDGET
        assert wide is Answerability.ANSWERABLE


class TestUnknown:
    def test_truncated_saturation_yields_unknown(self):
        """A diverging unguarded saturation with a tiny budget: the
        negative answer cannot be certified."""
        schema = (
            SchemaBuilder("s")
            .relation("R", 2)
            .relation("S", 2)
            .access("mt_r", "R", inputs=[0])
            # Unguarded, diverging: R and S feed each other with joins.
            .tgd("R(x, y) & S(y, z) -> S(x, z)")
            .tgd("S(x, y) -> R(x, w)")
            .tgd("R(x, y) -> S(y, z)")
            .build()
        )
        query = cq([], [("R", ["?x", "?y"])])
        policy = ChasePolicy(max_firings=30, max_depth=3)
        verdict = decide_answerability(
            schema, query, max_accesses=2, chase_policy=policy
        )
        assert verdict in (
            Answerability.UNKNOWN,
            Answerability.NO_PLAN_WITHIN_BUDGET,
        )
        # With this truncating policy specifically, depth truncation
        # happens, so it must NOT claim a certificate.
        assert verdict is Answerability.UNKNOWN


class TestExhaustedFlag:
    def test_exhausted_true_on_full_exploration(self, uni_schema):
        from repro.planner.search import SearchOptions, find_best_plan

        query = cq([], [("Udirect", ["?e", "?l"])])
        result = find_best_plan(
            uni_schema, query, SearchOptions(max_accesses=3)
        )
        assert result.exhausted

    def test_exhausted_false_when_budget_hit(self):
        from repro.planner.search import SearchOptions, find_best_plan
        from repro.scenarios import example5

        scenario = example5(sources=4)
        result = find_best_plan(
            scenario.schema,
            scenario.query,
            SearchOptions(max_accesses=5, max_nodes=2),
        )
        assert not result.exhausted
