"""The consolidated error hierarchy: altitudes, context, old aliases."""

import pytest

from repro import errors


class TestHierarchy:
    def test_every_error_is_a_repro_error_and_runtime_error(self):
        for name in errors.__all__:
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError), name
            assert issubclass(cls, RuntimeError), name

    def test_transient_kinds_are_access_errors(self):
        for cls in (
            errors.SourceUnavailable,
            errors.AccessTimeout,
            errors.RateLimited,
            errors.ResultTruncated,
        ):
            assert issubclass(cls, errors.TransientAccessError)
            assert issubclass(cls, errors.AccessError)

    def test_permanent_kinds_are_not_transient(self):
        for cls in (
            errors.MethodOutage,
            errors.AccessViolation,
            errors.CircuitOpen,
            errors.AccessBudgetExceeded,
        ):
            assert issubclass(cls, errors.AccessError)
            assert not issubclass(cls, errors.TransientAccessError)

    def test_catching_access_error_catches_all_source_failures(self):
        with pytest.raises(errors.AccessError):
            raise errors.SourceUnavailable("down", method="mt")
        with pytest.raises(errors.AccessError):
            raise errors.MethodOutage("dead", method="mt")


class TestContext:
    def test_message_carries_method_relation_inputs(self):
        error = errors.AccessTimeout(
            "too slow", method="mt_prof", relation="Profinfo", inputs=("e1",)
        )
        assert error.method == "mt_prof"
        assert error.relation == "Profinfo"
        assert error.inputs == ("e1",)
        text = str(error)
        assert "too slow" in text
        assert "method=mt_prof" in text
        assert "relation=Profinfo" in text
        assert "inputs=('e1',)" in text

    def test_context_free_message_is_unwrapped(self):
        assert str(errors.AccessError("plain")) == "plain"

    def test_truncation_carries_partial_rows(self):
        error = errors.ResultTruncated(
            "cut", rows=frozenset({(1,)}), method="mt"
        )
        assert error.rows == frozenset({(1,)})

    def test_chase_budget_carries_partial_stats(self):
        marker = object()
        error = errors.ChaseBudgetExceeded(
            "over", stats=marker, steps=7, elapsed=1.5
        )
        assert error.stats is marker
        assert error.steps == 7
        assert error.elapsed == 1.5


class TestAliases:
    def test_old_import_locations_still_work(self):
        from repro.chase.engine import NonTerminatingChaseError
        from repro.data.decorators import (
            AccessBudgetExceeded,
            SourceUnavailable,
        )
        from repro.data.source import AccessViolation

        assert AccessViolation is errors.AccessViolation
        assert SourceUnavailable is errors.SourceUnavailable
        assert AccessBudgetExceeded is errors.AccessBudgetExceeded
        assert NonTerminatingChaseError is errors.NonTerminatingChaseError

    def test_rebased_layer_errors(self):
        from repro.chase import ChaseBudgetExceeded
        from repro.planner.plan_state import PlanningError
        from repro.plans.expressions import EvaluationError

        assert ChaseBudgetExceeded is errors.ChaseBudgetExceeded
        assert issubclass(EvaluationError, errors.ExecutionError)
        assert issubclass(PlanningError, errors.ReproError)

    def test_source_violation_now_carries_context(self):
        from repro.data.instance import Instance
        from repro.data.source import InMemorySource
        from repro.schema.core import SchemaBuilder

        schema = (
            SchemaBuilder("s")
            .relation("R", 2)
            .access("mt_key", "R", inputs=[0])
            .build()
        )
        source = InMemorySource(schema, Instance({"R": [("a", "b")]}))
        with pytest.raises(
            errors.AccessViolation, match=r"method mt_key needs 1 inputs"
        ) as excinfo:
            source.access("mt_key", ())
        assert excinfo.value.method == "mt_key"
        assert excinfo.value.relation == "R"


class TestCostAndAdmissionErrors:
    """The cost-model and admission additions slot into the hierarchy."""

    def test_cost_model_errors_are_repro_errors(self):
        assert issubclass(errors.CostModelError, errors.ReproError)
        assert issubclass(errors.InvalidCostParameter, errors.CostModelError)

    def test_invalid_cost_parameter_carries_context(self):
        error = errors.InvalidCostParameter(
            "bad knob", parameter="select_selectivity", value=1.5
        )
        assert error.parameter == "select_selectivity"
        assert error.value == 1.5

    def test_plan_inadmissible_is_a_service_error(self):
        assert issubclass(errors.PlanInadmissible, errors.ServiceError)

    def test_plan_inadmissible_carries_bound_and_ceiling(self):
        error = errors.PlanInadmissible(
            "doomed", kind="result", bound=120.0, ceiling=100
        )
        assert error.kind == "result"
        assert error.bound == 120.0
        assert error.ceiling == 100
        with pytest.raises(errors.ServiceError):
            raise error


class TestWorkerTierErrors:
    def test_worker_stalled_is_a_service_error_with_context(self):
        error = errors.WorkerStalled("stuck", stalls=3, killed=True)
        assert issubclass(errors.WorkerStalled, errors.ServiceError)
        assert error.stalls == 3
        assert error.killed is True
        with pytest.raises(errors.ServiceError):
            raise error

    def test_worker_stalled_defaults_to_unkilled(self):
        error = errors.WorkerStalled("leaked thread")
        assert error.stalls == 0
        assert error.killed is False

    def test_worker_crashed_carries_restart_count(self):
        error = errors.WorkerCrashed("died", restarts=2)
        assert error.restarts == 2
        assert issubclass(errors.WorkerCrashed, errors.ServiceError)

    def test_no_viable_plan_carries_the_dead_set(self):
        error = errors.NoViablePlan("all dead", dead_methods=("mt_a",))
        assert error.dead_methods == ("mt_a",)
        assert issubclass(errors.NoViablePlan, errors.ExecutionError)
