"""Example 3 of the paper: the accessible-schema rules for Example 1.

The paper lists five representative rules; this test asserts our
generated AcSch contains each of them with exactly the paper's shape.
"""

import pytest

from repro.logic.atoms import Atom
from repro.logic.terms import Variable
from repro.schema.accessible import (
    ACCESSIBLE,
    AccessibleSchema,
    AxiomKind,
    Variant,
)
from repro.schema.core import SchemaBuilder


@pytest.fixture
def acc():
    schema = (
        SchemaBuilder("uni")
        .relation("Profinfo", 3)
        .relation("Udirect", 2)
        .access("mt_prof", "Profinfo", inputs=[0])
        .free_access("Udirect")
        .tgd("Profinfo(eid, onum, lname) -> Udirect(eid, lname)")
        .build()
    )
    return AccessibleSchema(schema, Variant.FORWARD)


def _rules_of(acc, kind):
    return [r.tgd for r in acc.rules if r.kind is kind]


class TestExample3Rules:
    def test_rule1_original_constraint(self, acc):
        """Profinfo(eid, onum, lname) -> Udirect(eid, lname)."""
        (tgd,) = _rules_of(acc, AxiomKind.ORIGINAL)
        assert tgd.body[0].relation == "Profinfo"
        assert tgd.head[0].relation == "Udirect"
        # eid and lname are exported, onum is not.
        assert tgd.head[0].terms == (
            tgd.body[0].terms[0],
            tgd.body[0].terms[2],
        )

    def test_rule2_udirect_accessibility(self, acc):
        """Udirect(eid, lname) -> AccessedUdirect(eid, lname): free access,
        no accessible() guards."""
        rule = acc.access_rule_for("mt_Udirect")
        assert len(rule.tgd.body) == 1
        assert rule.tgd.body[0].relation == "Udirect"
        assert rule.tgd.head[0].relation == "Accessed_Udirect"

    def test_rule3_defining_axiom(self, acc):
        """AccessedUdirect(eid, lname) -> accessible(eid) & accessible(lname)."""
        defining = [
            t
            for t in _rules_of(acc, AxiomKind.DEFINING)
            if t.body[0].relation == "Accessed_Udirect"
        ]
        (tgd,) = defining
        assert [a.relation for a in tgd.head] == [ACCESSIBLE, ACCESSIBLE]
        assert {a.terms[0] for a in tgd.head} == set(tgd.body[0].terms)

    def test_rule4_profinfo_accessibility_guarded_on_eid(self, acc):
        """Profinfo(eid, onum, lname) & accessible(eid) ->
        AccessedProfinfo(eid, onum, lname)."""
        rule = acc.access_rule_for("mt_prof")
        guards = [a for a in rule.tgd.body if a.relation == ACCESSIBLE]
        relation_atoms = [
            a for a in rule.tgd.body if a.relation == "Profinfo"
        ]
        assert len(guards) == 1
        assert len(relation_atoms) == 1
        # The guard covers exactly the eid position (input position 0).
        assert guards[0].terms[0] == relation_atoms[0].terms[0]

    def test_rule5_accessed_to_inferred(self, acc):
        """AccessedProfinfo(...) -> InferredAccProfinfo(...)."""
        lifting = [
            t
            for t in _rules_of(acc, AxiomKind.ACCESSED_TO_INFACC)
            if t.body[0].relation == "Accessed_Profinfo"
        ]
        (tgd,) = lifting
        assert tgd.head[0].relation == "InfAcc_Profinfo"
        assert tgd.head[0].terms == tgd.body[0].terms

    def test_entailment_of_example3_holds(self, acc):
        """"One can see that Q entails InferredAccQ with respect to
        these rules" -- checked by the chase."""
        from repro.chase.configuration import ChaseConfiguration
        from repro.chase.engine import chase_to_fixpoint
        from repro.logic.queries import cq
        from repro.logic.terms import NullFactory
        from repro.planner.proof_to_plan import success_match

        query = cq([], [("Profinfo", ["?e", "?o", "?l"])], name="Q")
        facts, frozen = query.canonical_database()
        config = ChaseConfiguration(facts)
        chase_to_fixpoint(config, list(acc.rules), NullFactory("x"))
        assert success_match(config, query, frozen) is not None
