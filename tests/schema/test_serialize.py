"""Tests for schema JSON (de)serialization."""

import json

import pytest

from repro.scenarios import example1, example2
from repro.schema.serialize import schema_from_dict, schema_to_dict


def roundtrip(schema):
    return schema_from_dict(json.loads(json.dumps(schema_to_dict(schema))))


class TestRoundtrip:
    @pytest.mark.parametrize("factory", [example1, example2])
    def test_structure_preserved(self, factory):
        schema = factory().schema
        restored = roundtrip(schema)
        assert restored.name == schema.name
        assert {r.name for r in restored.relations} == {
            r.name for r in schema.relations
        }
        assert {m.name for m in restored.methods} == {
            m.name for m in schema.methods
        }
        assert len(restored.constraints) == len(schema.constraints)

    def test_method_details_preserved(self):
        schema = example1().schema
        restored = roundtrip(schema)
        original = schema.method("mt_prof")
        copy = restored.method("mt_prof")
        assert copy.input_positions == original.input_positions
        assert copy.cost == original.cost

    def test_constants_preserved(self):
        restored = roundtrip(example1().schema)
        assert [c.value for c in restored.constants] == ["smith"]

    def test_constraints_semantically_identical(self):
        schema = example2().schema
        restored = roundtrip(schema)
        for original, copy in zip(schema.constraints, restored.constraints):
            assert [a.relation for a in original.body] == [
                a.relation for a in copy.body
            ]
            assert [a.relation for a in original.head] == [
                a.relation for a in copy.head
            ]
            # Join structure preserved: same variable-position pattern.
            assert original.frontier() == copy.frontier() or len(
                original.frontier()
            ) == len(copy.frontier())

    def test_planning_equivalent_after_roundtrip(self):
        """The restored schema plans the same query with the same cost."""
        from repro.planner.search import find_best_plan

        scenario = example1()
        restored = roundtrip(scenario.schema)
        original = find_best_plan(scenario.schema, scenario.query)
        copied = find_best_plan(restored, scenario.query)
        assert original.best_cost == copied.best_cost
        assert (
            original.best_plan.methods_used()
            == copied.best_plan.methods_used()
        )

    def test_constraint_with_constant_serializes(self):
        from repro.schema.core import SchemaBuilder

        schema = (
            SchemaBuilder("s")
            .relation("R", 2)
            .relation("S", 1)
            .tgd("R(x, 'tag') -> S(x)")
            .build()
        )
        restored = roundtrip(schema)
        body_atom = restored.constraints[0].body[0]
        assert body_atom.terms[1].value == "tag"
