"""Unit tests for relations, access methods and schemas."""

import pytest

from repro.logic.dependencies import parse_tgd
from repro.logic.queries import cq
from repro.schema.core import (
    AccessMethod,
    Relation,
    Schema,
    SchemaBuilder,
    SchemaError,
)


class TestRelation:
    def test_default_attribute_names(self):
        assert Relation("R", 3).attributes == ("a0", "a1", "a2")

    def test_explicit_attributes(self):
        r = Relation("R", 2, ("key", "val"))
        assert r.attributes == ("key", "val")

    def test_attribute_count_mismatch(self):
        with pytest.raises(SchemaError):
            Relation("R", 2, ("only_one",))

    def test_negative_arity(self):
        with pytest.raises(SchemaError):
            Relation("R", -1)


class TestAccessMethod:
    def test_free_method(self):
        assert AccessMethod("mt", "R", ()).is_free

    def test_input_positions_deduplicated_rejected(self):
        with pytest.raises(SchemaError):
            AccessMethod("mt", "R", (0, 0))

    def test_negative_position_rejected(self):
        with pytest.raises(SchemaError):
            AccessMethod("mt", "R", (-1,))

    def test_negative_cost_rejected(self):
        with pytest.raises(SchemaError):
            AccessMethod("mt", "R", (), cost=-1.0)


class TestSchema:
    def build(self):
        return (
            SchemaBuilder("s")
            .relation("R", 2)
            .relation("S", 1)
            .access("mt_r", "R", inputs=[0])
            .tgd("R(x, y) -> S(y)")
            .build()
        )

    def test_lookups(self):
        schema = self.build()
        assert schema.relation("R").arity == 2
        assert schema.method("mt_r").input_positions == (0,)
        assert schema.methods_of("R") == (schema.method("mt_r"),)
        assert schema.methods_of("S") == ()

    def test_unknown_lookups_raise(self):
        schema = self.build()
        with pytest.raises(SchemaError):
            schema.relation("T")
        with pytest.raises(SchemaError):
            schema.method("nope")
        with pytest.raises(SchemaError):
            schema.methods_of("T")

    def test_hidden_and_accessible_partition(self):
        schema = self.build()
        assert [r.name for r in schema.accessible_relations()] == ["R"]
        assert [r.name for r in schema.hidden_relations()] == ["S"]

    def test_duplicate_relation_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Relation("R", 1), Relation("R", 2)])

    def test_duplicate_method_name_rejected(self):
        with pytest.raises(SchemaError):
            Schema(
                [Relation("R", 1)],
                [AccessMethod("mt", "R", ()), AccessMethod("mt", "R", (0,))],
            )

    def test_method_on_unknown_relation_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Relation("R", 1)], [AccessMethod("mt", "T", ())])

    def test_method_position_beyond_arity_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Relation("R", 1)], [AccessMethod("mt", "R", (3,))])

    def test_constraint_arity_checked(self):
        with pytest.raises(SchemaError):
            Schema(
                [Relation("R", 1), Relation("S", 1)],
                constraints=[parse_tgd("R(x, y) -> S(x)")],
            )

    def test_constraint_unknown_relation_rejected(self):
        with pytest.raises(SchemaError):
            Schema(
                [Relation("R", 1)],
                constraints=[parse_tgd("R(x) -> T(x)")],
            )

    def test_validate_query(self):
        schema = self.build()
        schema.validate_query(cq([], [("R", ["?x", "?y"])]))
        with pytest.raises(SchemaError):
            schema.validate_query(cq([], [("R", ["?x"])]))

    def test_guardedness_flags(self):
        schema = self.build()
        assert schema.has_only_guarded_constraints
        assert schema.has_only_inclusion_dependencies

    def test_describe_mentions_everything(self):
        text = self.build().describe()
        assert "R/2" in text
        assert "mt_r" in text
        assert "no access" in text  # S has no method


class TestSchemaBuilder:
    def test_free_access_shorthand(self):
        schema = SchemaBuilder("s").relation("R", 1).free_access("R").build()
        assert schema.method("mt_R").is_free

    def test_constant(self):
        schema = (
            SchemaBuilder("s").relation("R", 1).constant("smith").build()
        )
        assert len(schema.constants) == 1

    def test_tgd_accepts_tgd_object(self):
        tgd = parse_tgd("R(x) -> S(x)")
        schema = (
            SchemaBuilder("s")
            .relation("R", 1)
            .relation("S", 1)
            .tgd(tgd)
            .build()
        )
        assert schema.constraints == (tgd,)

    def test_tgd_rejects_garbage(self):
        with pytest.raises(SchemaError):
            SchemaBuilder("s").tgd(42)
