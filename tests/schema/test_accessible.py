"""Unit tests for the AcSch / AcSch<-> / AcSch-neg constructions."""

import pytest

from repro.logic.atoms import Atom
from repro.logic.queries import cq
from repro.logic.terms import Constant, Variable
from repro.schema.accessible import (
    ACCESSIBLE,
    AccessibleSchema,
    AxiomKind,
    Variant,
    accessed_name,
    accessible_schema,
    infacc_name,
    inferred_accessible_query,
    is_accessed_name,
    is_infacc_name,
    original_name,
)
from repro.schema.core import SchemaBuilder, SchemaError


@pytest.fixture
def schema():
    return (
        SchemaBuilder("s")
        .relation("R", 2)
        .relation("S", 1)
        .access("mt_r", "R", inputs=[0])
        .free_access("S")
        .tgd("R(x, y) -> S(y)")
        .constant("c0")
        .build()
    )


class TestNaming:
    def test_roundtrip(self):
        assert original_name(accessed_name("R")) == "R"
        assert original_name(infacc_name("R")) == "R"
        assert original_name("R") == "R"

    def test_predicates(self):
        assert is_accessed_name(accessed_name("R"))
        assert is_infacc_name(infacc_name("R"))
        assert not is_accessed_name("R")


class TestForwardVariant:
    def test_rule_census(self, schema):
        acc = accessible_schema(schema)
        kinds = {}
        for rule in acc.rules:
            kinds[rule.kind] = kinds.get(rule.kind, 0) + 1
        assert kinds[AxiomKind.ORIGINAL] == 1
        assert kinds[AxiomKind.INFACC_COPY] == 1
        assert kinds[AxiomKind.DEFINING] == 2  # one per relation
        assert kinds[AxiomKind.ACCESSED_TO_INFACC] == 2
        assert kinds[AxiomKind.ACCESSIBILITY] == 2  # one per method
        assert AxiomKind.REVERSE_INCLUSION not in kinds
        assert AxiomKind.NEGATIVE_ACCESSIBILITY not in kinds

    def test_accessibility_axiom_shape(self, schema):
        acc = accessible_schema(schema)
        rule = acc.access_rule_for("mt_r")
        tgd = rule.tgd
        # Body: accessible(x0) & R(x0, x1); head: Accessed_R(x0, x1).
        assert tgd.body[0] == Atom(ACCESSIBLE, (Variable("x0"),))
        assert tgd.body[1].relation == "R"
        assert tgd.head[0].relation == accessed_name("R")

    def test_free_method_axiom_has_no_guards(self, schema):
        acc = accessible_schema(schema)
        rule = acc.access_rule_for("mt_S")
        assert len(rule.tgd.body) == 1  # just S(x0)

    def test_infacc_copy_renames_both_sides(self, schema):
        acc = accessible_schema(schema)
        copies = [
            r for r in acc.rules if r.kind is AxiomKind.INFACC_COPY
        ]
        tgd = copies[0].tgd
        assert tgd.body[0].relation == infacc_name("R")
        assert tgd.head[0].relation == infacc_name("S")

    def test_free_vs_access_rule_partition(self, schema):
        acc = accessible_schema(schema)
        assert set(acc.rules) == set(acc.free_rules) | set(acc.access_rules)
        assert all(r.is_access for r in acc.access_rules)
        assert not any(r.is_access for r in acc.free_rules)

    def test_initial_accessible_facts_from_constants(self, schema):
        acc = accessible_schema(schema)
        assert acc.initial_accessible_facts() == (
            Atom(ACCESSIBLE, (Constant("c0"),)),
        )

    def test_unknown_method_lookup_raises(self, schema):
        acc = accessible_schema(schema)
        with pytest.raises(SchemaError):
            acc.access_rule_for("nope")


class TestBidirectionalVariant:
    def test_adds_reverse_and_negative_rules(self, schema):
        acc = accessible_schema(schema, Variant.BIDIRECTIONAL)
        kinds = {rule.kind for rule in acc.rules}
        assert AxiomKind.REVERSE_INCLUSION in kinds
        assert AxiomKind.NEGATIVE_ACCESSIBILITY in kinds

    def test_negative_axiom_guards_only_method_inputs(self, schema):
        acc = accessible_schema(schema, Variant.BIDIRECTIONAL)
        rule = acc.access_rule_for("mt_r", negative=True)
        guards = [
            a for a in rule.tgd.body if a.relation == ACCESSIBLE
        ]
        assert len(guards) == 1  # only input position 0

    def test_negative_axiom_body_uses_infacc(self, schema):
        acc = accessible_schema(schema, Variant.BIDIRECTIONAL)
        rule = acc.access_rule_for("mt_r", negative=True)
        non_guards = [
            a for a in rule.tgd.body if a.relation != ACCESSIBLE
        ]
        assert non_guards[0].relation == infacc_name("R")


class TestNegativeVariant:
    def test_negative_axiom_guards_all_positions(self, schema):
        acc = accessible_schema(schema, Variant.NEGATIVE)
        rule = acc.access_rule_for("mt_r", negative=True)
        guards = [
            a for a in rule.tgd.body if a.relation == ACCESSIBLE
        ]
        assert len(guards) == 2  # arity of R


class TestInferredAccessibleQuery:
    def test_relations_renamed_and_head_guarded(self):
        query = cq(["?x"], [("R", ["?x", "?y"])], name="Q")
        infacc = inferred_accessible_query(query)
        assert infacc.atoms[0].relation == infacc_name("R")
        assert Atom(ACCESSIBLE, (Variable("x"),)) in infacc.atoms

    def test_boolean_query_gets_no_accessible_atoms(self):
        infacc = inferred_accessible_query(cq([], [("R", ["?x"])]))
        assert all(a.relation != ACCESSIBLE for a in infacc.atoms)

    def test_constants_untouched(self):
        query = cq([], [("R", ["?x", "smith"])])
        infacc = inferred_accessible_query(query)
        assert infacc.atoms[0].terms[1] == Constant("smith")
