"""Feedback-driven cost calibration: determinism, monotonicity, disk.

The properties pinned here are what makes calibration safe to wire into
the planner:

* aggregation is a pure function of the observed ``ExecStats`` stream
  (same stream, same estimates -- across store instances);
* every accumulated counter is monotone under added observations, and
  the store version only moves forward;
* derived selectivities never leave (0, 1], the sound range for the
  estimator's ``select_selectivity`` knob;
* the disk tier round-trips through its atomic JSON file, and corrupt
  or alien files degrade to an empty store instead of raising;
* the identity (version + digest) moves on every observation batch --
  the hook plan-cache invalidation hangs off.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.cost.calibration import (
    CALIBRATION_KIND,
    CalibrationStore,
    MethodCalibration,
)
from repro.errors import CostModelError
from repro.exec.stats import ExecStats


def stats_from(rows):
    """Synthesize an ExecStats from (method, dispatched, fetched, emitted)."""
    stats = ExecStats()
    for i, (method, dispatched, fetched, emitted) in enumerate(rows):
        record = stats.command(i, f"T{i}", "access", method=method)
        record.dispatched = dispatched
        record.rows_fetched = fetched
        record.rows_out = emitted
    return stats


# One observation: emitted never exceeds fetched (set semantics plus the
# output mapping's equality filter can only drop raw source rows).
observations = st.tuples(
    st.sampled_from(["mt_a", "mt_b", "mt_c"]),
    st.integers(min_value=1, max_value=40),
    st.integers(min_value=0, max_value=60),
).flatmap(
    lambda t: st.integers(min_value=0, max_value=t[2]).map(
        lambda emitted: (t[0], t[1], t[2], emitted)
    )
)
streams = st.lists(observations, min_size=0, max_size=25)


class TestMethodCalibration:
    def test_fan_out_is_emitted_over_dispatched(self):
        cal = MethodCalibration(method="mt")
        cal.observe(dispatched=4, fetched=20, emitted=12)
        assert cal.fan_out == pytest.approx(3.0)

    def test_selectivity_is_emitted_over_fetched(self):
        cal = MethodCalibration(method="mt")
        cal.observe(dispatched=4, fetched=20, emitted=12)
        assert cal.selectivity == pytest.approx(0.6)

    def test_unobserved_ratios_are_none(self):
        cal = MethodCalibration(method="mt")
        assert cal.fan_out is None
        assert cal.selectivity is None

    def test_zero_emitted_clamps_selectivity_above_zero(self):
        cal = MethodCalibration(method="mt")
        cal.observe(dispatched=2, fetched=10, emitted=0)
        assert 0.0 < cal.selectivity <= 1.0

    def test_dict_round_trip(self):
        cal = MethodCalibration(method="mt", relation="R")
        cal.observe(dispatched=3, fetched=9, emitted=6)
        cal.observe(dispatched=1, fetched=1, emitted=1)
        back = MethodCalibration.from_dict(cal.as_dict())
        assert back == cal


class TestObserveStats:
    def test_aggregates_access_commands_only(self):
        stats = stats_from([("mt_a", 2, 6, 4)])
        stats.command(9, "T9", "middleware")  # no method: ignored
        store = CalibrationStore()
        assert store.observe_stats(stats) == 1
        assert store.fan_out("mt_a") == pytest.approx(2.0)

    def test_relation_mapping_is_recorded(self):
        store = CalibrationStore()
        store.observe_stats(stats_from([("mt_a", 1, 2, 2)]), {"mt_a": "R"})
        assert store.method_calibration("mt_a").relation == "R"

    def test_batch_bumps_version_once(self):
        store = CalibrationStore()
        store.observe_stats(
            stats_from([("mt_a", 1, 1, 1), ("mt_b", 2, 4, 2)])
        )
        assert store.version == 1

    def test_empty_batch_does_not_bump_version(self):
        store = CalibrationStore()
        assert store.observe_stats(stats_from([])) == 0
        assert store.version == 0

    def test_min_observations_gates_estimates(self):
        store = CalibrationStore(min_observations=2)
        store.observe_stats(stats_from([("mt_a", 2, 4, 4)]))
        assert store.fan_out("mt_a") is None
        assert store.fallbacks == 1
        store.observe_stats(stats_from([("mt_a", 2, 4, 4)]))
        assert store.fan_out("mt_a") == pytest.approx(2.0)
        assert store.hits == 1

    def test_min_observations_validated(self):
        with pytest.raises(CostModelError):
            CalibrationStore(min_observations=0)

    def test_global_select_selectivity_pools_methods(self):
        store = CalibrationStore()
        store.observe_stats(
            stats_from([("mt_a", 1, 10, 5), ("mt_b", 1, 10, 1)])
        )
        assert store.select_selectivity() == pytest.approx(0.3)


class TestProperties:
    @given(stream=streams)
    @settings(max_examples=100, deadline=None)
    def test_deterministic_given_same_stream(self, stream):
        first, second = CalibrationStore(), CalibrationStore()
        for store in (first, second):
            store.observe_stats(stats_from(stream))
        assert first.identity() == second.identity()
        for method in {entry[0] for entry in stream}:
            assert first.fan_out(method) == second.fan_out(method)
            assert first.selectivity(method) == second.selectivity(method)

    @given(stream=streams, extra=streams)
    @settings(max_examples=100, deadline=None)
    def test_monotone_under_added_observations(self, stream, extra):
        store = CalibrationStore()
        store.observe_stats(stats_from(stream))
        before = store.counters()
        store.observe_stats(stats_from(extra))
        after = store.counters()
        for key in ("version", "observations", "dispatched", "emitted"):
            assert after[key] >= before[key]

    @given(stream=streams)
    @settings(max_examples=100, deadline=None)
    def test_selectivity_never_leaves_unit_interval(self, stream):
        store = CalibrationStore()
        store.observe_stats(stats_from(stream))
        for method in {entry[0] for entry in stream}:
            observed = store.selectivity(method)
            if observed is not None:
                assert 0.0 < observed <= 1.0
        pooled = store.select_selectivity()
        if pooled is not None:
            assert 0.0 < pooled <= 1.0

    @given(stream=st.lists(observations, min_size=1, max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_every_batch_moves_the_identity(self, stream):
        store = CalibrationStore()
        before = store.identity()
        store.observe_stats(stats_from(stream))
        assert store.identity() != before


class TestDiskTier:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "calib.json")
        store = CalibrationStore(path=path)
        store.observe_stats(
            stats_from([("mt_a", 2, 8, 4), ("mt_b", 1, 3, 3)]),
            {"mt_a": "R", "mt_b": "S"},
        )
        reloaded = CalibrationStore(path=path)
        assert reloaded.identity() == store.identity()
        assert reloaded.fan_out("mt_a") == pytest.approx(2.0)
        assert reloaded.version == store.version

    def test_corrupt_file_degrades_to_empty(self, tmp_path):
        path = tmp_path / "calib.json"
        path.write_text("{not json")
        store = CalibrationStore(path=str(path))
        assert store.observations == 0

    def test_alien_format_degrades_to_empty(self, tmp_path):
        path = tmp_path / "calib.json"
        path.write_text(json.dumps({"format": "something-else"}))
        assert CalibrationStore(path=str(path)).observations == 0

    def test_persisted_file_carries_format_markers(self, tmp_path):
        path = tmp_path / "calib.json"
        store = CalibrationStore(path=str(path))
        store.observe(
            "mt_a", relation="R", dispatched=1, fetched=1, emitted=1
        )
        payload = json.loads(path.read_text())
        assert payload["format"] == CALIBRATION_KIND


class TestCrashMidAtomicWrite:
    """A writer dying inside the temp-then-rename protocol is harmless."""

    def _persisted(self, tmp_path):
        path = tmp_path / "calib.json"
        store = CalibrationStore(path=str(path))
        store.observe(
            "mt_a", relation="R", dispatched=2, fetched=8, emitted=4
        )
        return path

    def test_abandoned_temp_file_is_ignored(self, tmp_path):
        path = self._persisted(tmp_path)
        (tmp_path / "calib.json.tmp.9999").write_text(
            '{"format": "repro.cost-calibration", "ver'
        )
        reloaded = CalibrationStore(path=str(path))
        assert reloaded.fan_out("mt_a") == pytest.approx(2.0)
        assert reloaded.counters()["quarantined"] == 0

    def test_torn_rename_is_quarantined_and_survivable(self, tmp_path):
        path = self._persisted(tmp_path)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        reloaded = CalibrationStore(path=str(path))
        # The store starts empty (documented fallbacks apply), the
        # rotten file is kept aside, and the event is counted.
        assert reloaded.observations == 0
        assert reloaded.counters()["quarantined"] == 1
        assert (tmp_path / "calib.json.quarantined").exists()
        # Live observations re-fill and re-persist a valid store.
        reloaded.observe(
            "mt_a", relation="R", dispatched=1, fetched=2, emitted=2
        )
        assert CalibrationStore(path=str(path)).observations == 1

    def test_single_byte_flip_is_quarantined(self, tmp_path):
        path = self._persisted(tmp_path)
        data = bytearray(path.read_bytes())
        mid = len(data) // 2
        data[mid] = ord("Y") if data[mid] == ord("X") else ord("X")
        path.write_bytes(bytes(data))
        reloaded = CalibrationStore(path=str(path))
        assert reloaded.observations == 0
        assert reloaded.counters()["quarantined"] == 1

    def test_failed_persist_is_counted_not_raised(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the store dir should be")
        store = CalibrationStore(path=str(blocker / "nested" / "calib.json"))
        store.observe(
            "mt_a", relation="R", dispatched=1, fetched=1, emitted=1
        )
        assert store.counters()["persist_errors"] == 1
        # The in-memory estimates are intact despite the failed write.
        assert store.fan_out("mt_a") == pytest.approx(1.0)
