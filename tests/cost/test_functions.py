"""Unit tests for cost functions and their monotonicity."""

import pytest

from repro.cost.functions import (
    CardinalityCostFunction,
    CountingCostFunction,
    SimpleCostFunction,
    is_monotone_on,
)
from repro.plans.commands import (
    AccessCommand,
    MiddlewareCommand,
    identity_output_map,
)
from repro.plans.expressions import Join, Project, Scan, Singleton
from repro.plans.plan import Plan
from repro.schema.core import SchemaBuilder


def access(target, method, expr=None, attrs=()):
    return AccessCommand(
        target,
        method,
        expr if expr is not None else Singleton(),
        attrs,
        identity_output_map((f"{target}_p0", f"{target}_p1")),
    )


@pytest.fixture
def commands():
    return [
        access("T1", "cheap"),
        MiddlewareCommand("T2", Project(Scan("T1"), ("T1_p0",))),
        access("T3", "pricey"),
        MiddlewareCommand("T4", Join(Scan("T2"), Scan("T3"))),
    ]


class TestSimpleCost:
    def test_sums_per_method_weights(self, commands):
        cost = SimpleCostFunction({"cheap": 1.0, "pricey": 10.0})
        assert cost.commands_cost(commands) == pytest.approx(11.0)

    def test_default_for_unknown_method(self, commands):
        cost = SimpleCostFunction({}, default=3.0)
        assert cost.commands_cost(commands) == pytest.approx(6.0)

    def test_middleware_free(self):
        cost = SimpleCostFunction({"m": 1.0})
        only_mw = [MiddlewareCommand("T", Singleton())]
        assert cost.commands_cost(only_mw) == 0.0

    def test_repeated_method_charged_per_command(self):
        cost = SimpleCostFunction({"m": 2.0})
        cmds = [access("A", "m"), access("B", "m")]
        assert cost.commands_cost(cmds) == pytest.approx(4.0)

    def test_from_schema_uses_declared_costs(self):
        schema = (
            SchemaBuilder("s")
            .relation("R", 2)
            .access("mt", "R", inputs=[], cost=7.5)
            .build()
        )
        cost = SimpleCostFunction.from_schema(schema)
        assert cost.method_cost("mt") == pytest.approx(7.5)

    def test_monotone(self, commands):
        cost = SimpleCostFunction({"cheap": 1.0, "pricey": 10.0})
        assert is_monotone_on(cost, commands)


class TestCountingCost:
    def test_counts_access_commands(self, commands):
        assert CountingCostFunction().commands_cost(commands) == 2.0

    def test_monotone(self, commands):
        assert is_monotone_on(CountingCostFunction(), commands)


class TestCardinalityCost:
    def test_charges_per_access_plus_fanin(self, commands):
        cost = CardinalityCostFunction(
            relation_cardinality={"cheap": 100, "pricey": 10},
            per_access=1.0,
            per_tuple=0.1,
        )
        value = cost.commands_cost(commands)
        # Two accesses with singleton fan-in (1 row each).
        assert value == pytest.approx(2.0 + 0.1 * 2)

    def test_larger_input_costs_more(self):
        cost = CardinalityCostFunction(
            relation_cardinality={"big": 1000, "probe": 10},
            per_access=1.0,
            per_tuple=0.01,
        )
        cheap = [access("A", "probe")]
        chained = [
            access("A", "big"),
            access(
                "B", "probe", Project(Scan("A"), ("A_p0",)), ("A_p0",)
            ),
        ]
        assert cost.commands_cost(chained) > cost.commands_cost(cheap)

    def test_monotone(self, commands):
        cost = CardinalityCostFunction(relation_cardinality={})
        assert is_monotone_on(cost, commands)

    def test_method_cost_probe(self):
        cost = CardinalityCostFunction(
            relation_cardinality={}, per_access=2.0, per_tuple=0.5
        )
        assert cost.method_cost("anything") == pytest.approx(2.5)


class TestMonotonicityChecker:
    def test_detects_non_monotone(self, commands):
        class Bogus(CountingCostFunction):
            def commands_cost(self, cmds):
                return -float(len(cmds))

        assert not is_monotone_on(Bogus(), commands)
