"""Unit tests for cost functions and their monotonicity."""

import pytest

from repro.cost.functions import (
    CardinalityCostFunction,
    CostFunction,
    CountingCostFunction,
    SimpleCostFunction,
    is_monotone_on,
)
from repro.plans.commands import (
    AccessCommand,
    MiddlewareCommand,
    identity_output_map,
)
from repro.plans.expressions import Join, Project, Scan, Singleton
from repro.plans.plan import Plan
from repro.schema.core import SchemaBuilder


def access(target, method, expr=None, attrs=()):
    return AccessCommand(
        target,
        method,
        expr if expr is not None else Singleton(),
        attrs,
        identity_output_map((f"{target}_p0", f"{target}_p1")),
    )


@pytest.fixture
def commands():
    return [
        access("T1", "cheap"),
        MiddlewareCommand("T2", Project(Scan("T1"), ("T1_p0",))),
        access("T3", "pricey"),
        MiddlewareCommand("T4", Join(Scan("T2"), Scan("T3"))),
    ]


class TestSimpleCost:
    def test_sums_per_method_weights(self, commands):
        cost = SimpleCostFunction({"cheap": 1.0, "pricey": 10.0})
        assert cost.commands_cost(commands) == pytest.approx(11.0)

    def test_default_for_unknown_method(self, commands):
        cost = SimpleCostFunction({}, default=3.0)
        assert cost.commands_cost(commands) == pytest.approx(6.0)

    def test_middleware_free(self):
        cost = SimpleCostFunction({"m": 1.0})
        only_mw = [MiddlewareCommand("T", Singleton())]
        assert cost.commands_cost(only_mw) == 0.0

    def test_repeated_method_charged_per_command(self):
        cost = SimpleCostFunction({"m": 2.0})
        cmds = [access("A", "m"), access("B", "m")]
        assert cost.commands_cost(cmds) == pytest.approx(4.0)

    def test_from_schema_uses_declared_costs(self):
        schema = (
            SchemaBuilder("s")
            .relation("R", 2)
            .access("mt", "R", inputs=[], cost=7.5)
            .build()
        )
        cost = SimpleCostFunction.from_schema(schema)
        assert cost.method_cost("mt") == pytest.approx(7.5)

    def test_monotone(self, commands):
        cost = SimpleCostFunction({"cheap": 1.0, "pricey": 10.0})
        assert is_monotone_on(cost, commands)


class TestCountingCost:
    def test_counts_access_commands(self, commands):
        assert CountingCostFunction().commands_cost(commands) == 2.0

    def test_monotone(self, commands):
        assert is_monotone_on(CountingCostFunction(), commands)


class TestCardinalityCost:
    def test_charges_per_access_plus_fanin(self, commands):
        cost = CardinalityCostFunction(
            relation_cardinality={"cheap": 100, "pricey": 10},
            per_access=1.0,
            per_tuple=0.1,
        )
        value = cost.commands_cost(commands)
        # Two accesses with singleton fan-in (1 row each).
        assert value == pytest.approx(2.0 + 0.1 * 2)

    def test_larger_input_costs_more(self):
        cost = CardinalityCostFunction(
            relation_cardinality={"big": 1000, "probe": 10},
            per_access=1.0,
            per_tuple=0.01,
        )
        cheap = [access("A", "probe")]
        chained = [
            access("A", "big"),
            access(
                "B", "probe", Project(Scan("A"), ("A_p0",)), ("A_p0",)
            ),
        ]
        assert cost.commands_cost(chained) > cost.commands_cost(cheap)

    def test_monotone(self, commands):
        cost = CardinalityCostFunction(relation_cardinality={})
        assert is_monotone_on(cost, commands)

    def test_method_cost_probe(self):
        cost = CardinalityCostFunction(
            relation_cardinality={}, per_access=2.0, per_tuple=0.5
        )
        assert cost.method_cost("anything") == pytest.approx(2.5)


class TestMonotonicityChecker:
    def test_detects_non_monotone(self, commands):
        class Bogus(CountingCostFunction):
            def commands_cost(self, cmds):
                return -float(len(cmds))

        assert not is_monotone_on(Bogus(), commands)


class TestDeltaCost:
    """delta_cost must agree with a full recompute at every split."""

    def cost_functions(self):
        return [
            SimpleCostFunction({"cheap": 1.0, "pricey": 10.0}),
            CountingCostFunction(),
            CardinalityCostFunction(
                relation_cardinality={"cheap": 50, "pricey": 500},
                per_tuple=0.05,
            ),
        ]

    def test_matches_full_recompute_at_every_split(self, commands):
        for cost in self.cost_functions():
            for split in range(len(commands) + 1):
                state = cost.cost_state()
                state, total = cost.delta_cost(state, commands[:split])
                assert total == pytest.approx(
                    cost.commands_cost(commands[:split])
                )
                state, total = cost.delta_cost(state, commands[split:])
                assert total == pytest.approx(cost.commands_cost(commands))

    def test_one_command_at_a_time(self, commands):
        for cost in self.cost_functions():
            state = cost.cost_state()
            for index, command in enumerate(commands):
                state, total = cost.delta_cost(state, [command])
                assert total == pytest.approx(
                    cost.commands_cost(commands[: index + 1])
                )

    def test_state_is_not_mutated_by_extension(self, commands):
        # A search tree extends one parent state along many branches; the
        # parent's accumulator must stay valid after a child extension.
        for cost in self.cost_functions():
            state = cost.cost_state()
            state, before = cost.delta_cost(state, commands[:2])
            cost.delta_cost(state, commands[2:])
            _, again = cost.delta_cost(state, [])
            assert again == pytest.approx(before)

    def test_cardinality_estimates_flow_through_the_split(self):
        cost = CardinalityCostFunction(
            relation_cardinality={"big": 1000, "probe": 10},
            per_access=1.0,
            per_tuple=0.01,
        )
        chained = [
            access("A", "big"),
            access(
                "B", "probe", Project(Scan("A"), ("A_p0",)), ("A_p0",)
            ),
        ]
        state = cost.cost_state()
        state, _ = cost.delta_cost(state, chained[:1])
        # The second access's fan-in must see A's 1000-row estimate.
        _, total = cost.delta_cost(state, chained[1:])
        assert total == pytest.approx(cost.commands_cost(chained))
        assert total > 2.0 + 0.01  # charged for the large fan-in

    def test_base_class_fallback_is_correct(self, commands):
        class ThirdParty(CountingCostFunction):
            # Deliberately does NOT override cost_state/delta_cost.
            def cost_state(self):
                return CostFunction.cost_state(self)

            def delta_cost(self, state, new_commands):
                return CostFunction.delta_cost(self, state, new_commands)

        cost = ThirdParty()
        state = cost.cost_state()
        state, _ = cost.delta_cost(state, commands[:2])
        _, total = cost.delta_cost(state, commands[2:])
        assert total == pytest.approx(cost.commands_cost(commands))


class TestSelectSelectivity:
    def selective_commands(self):
        from repro.plans.expressions import EqConst, Select
        from repro.logic.terms import Constant

        return [
            access("A", "big"),
            access(
                "B",
                "probe",
                Select(Scan("A"), (EqConst("A_p0", Constant("v")),)),
                ("A_p0",),
            ),
        ]

    def test_selectivity_scales_the_fan_in(self):
        lax = CardinalityCostFunction(
            relation_cardinality={"big": 1000},
            per_tuple=0.01,
            select_selectivity=1.0,
        )
        tight = CardinalityCostFunction(
            relation_cardinality={"big": 1000},
            per_tuple=0.01,
            select_selectivity=0.1,
        )
        commands = self.selective_commands()
        assert tight.commands_cost(commands) < lax.commands_cost(commands)

    def test_default_matches_historic_half(self):
        default = CardinalityCostFunction(relation_cardinality={"big": 1000})
        explicit = CardinalityCostFunction(
            relation_cardinality={"big": 1000}, select_selectivity=0.5
        )
        commands = self.selective_commands()
        assert default.commands_cost(commands) == pytest.approx(
            explicit.commands_cost(commands)
        )


class TestParameterValidation:
    """Satellite: estimator knobs are validated at construction."""

    @pytest.mark.parametrize("value", [0.0, -0.25, 1.5, 2.0])
    def test_select_selectivity_outside_unit_interval_rejected(self, value):
        from repro.errors import InvalidCostParameter, ReproError

        with pytest.raises(InvalidCostParameter) as info:
            CardinalityCostFunction(
                relation_cardinality={}, select_selectivity=value
            )
        assert isinstance(info.value, ReproError)
        assert info.value.parameter == "select_selectivity"
        assert info.value.value == value

    @pytest.mark.parametrize("value", [0.0, -1.0, 1.0000001])
    def test_join_selectivity_outside_unit_interval_rejected(self, value):
        from repro.errors import InvalidCostParameter

        with pytest.raises(InvalidCostParameter):
            CardinalityCostFunction(
                relation_cardinality={}, join_selectivity=value
            )

    def test_negative_charges_rejected(self):
        from repro.errors import InvalidCostParameter

        with pytest.raises(InvalidCostParameter):
            CardinalityCostFunction(relation_cardinality={}, per_access=-1.0)
        with pytest.raises(InvalidCostParameter):
            CardinalityCostFunction(relation_cardinality={}, per_tuple=-0.1)
        with pytest.raises(InvalidCostParameter):
            CardinalityCostFunction(
                relation_cardinality={}, per_method_access={"mt": -2.0}
            )

    def test_default_cardinality_floor(self):
        from repro.errors import InvalidCostParameter

        with pytest.raises(InvalidCostParameter):
            CardinalityCostFunction(
                relation_cardinality={}, default_cardinality=0
            )

    def test_boundary_values_accepted(self):
        CardinalityCostFunction(
            relation_cardinality={},
            select_selectivity=1.0,
            join_selectivity=1.0,
            per_access=0.0,
            per_tuple=0.0,
            default_cardinality=1,
        )


class TestMinAccessCharge:
    def test_base_class_claims_nothing(self):
        class Opaque(CostFunction):
            def commands_cost(self, commands):
                return 0.0

        assert Opaque().min_access_charge() == 0.0

    def test_counting_charges_one(self):
        assert CountingCostFunction().min_access_charge() == 1.0

    def test_simple_takes_cheapest_weight(self):
        cost = SimpleCostFunction({"a": 3.0, "b": 0.5}, default=2.0)
        assert cost.min_access_charge() == pytest.approx(0.5)
        assert SimpleCostFunction({}).min_access_charge() == 1.0

    def test_cardinality_adds_one_tuple_charge(self):
        cost = CardinalityCostFunction(
            relation_cardinality={},
            per_access=2.0,
            per_tuple=0.25,
            per_method_access={"cheap": 0.5},
        )
        assert cost.min_access_charge() == pytest.approx(0.75)

    def test_charge_really_is_a_lower_bound(self, commands):
        for cost in (
            SimpleCostFunction({"cheap": 1.0, "pricey": 10.0}),
            CountingCostFunction(),
            CardinalityCostFunction(relation_cardinality={}),
        ):
            floor = cost.min_access_charge()
            total = 0.0
            for end in range(1, len(commands) + 1):
                previous, total = total, cost.commands_cost(commands[:end])
                if isinstance(commands[end - 1], AccessCommand):
                    assert total - previous >= floor - 1e-9


class TestCalibratedEstimates:
    def make_calibration(self, fan_out):
        from repro.cost.calibration import CalibrationStore

        store = CalibrationStore()
        store.observe(
            "cheap",
            dispatched=10,
            fetched=10 * int(fan_out),
            emitted=10 * int(fan_out),
        )
        return store

    def test_calibrated_fan_out_replaces_flat_guess(self):
        chained = [
            access("A", "cheap"),
            access("B", "probe", Project(Scan("A"), ("A_p0",)), ("A_p0",)),
        ]
        flat = CardinalityCostFunction(
            relation_cardinality={}, per_tuple=0.1, default_cardinality=100
        )
        calibrated = CardinalityCostFunction(
            relation_cardinality={},
            per_tuple=0.1,
            default_cardinality=100,
            calibration=self.make_calibration(fan_out=3),
        )
        # Flat: B's fan-in is the 100-row default guess for A's output;
        # calibrated: 3 emitted rows per dispatched tuple * 1 dispatched.
        assert flat.commands_cost(chained) == pytest.approx(2.0 + 0.1 + 10.0)
        assert calibrated.commands_cost(chained) == pytest.approx(
            2.0 + 0.1 + 0.3
        )

    def test_per_method_access_weights(self):
        cost = CardinalityCostFunction(
            relation_cardinality={},
            per_access=1.0,
            per_tuple=0.0,
            per_method_access={"pricey": 10.0},
        )
        cmds = [access("A", "cheap"), access("B", "pricey")]
        assert cost.commands_cost(cmds) == pytest.approx(11.0)

    def test_bounds_cap_estimates(self):
        from repro.cost.bounds import SizeBounds
        from repro.schema.core import SchemaBuilder as SB

        schema = (
            SB("s")
            .relation("R", 2)
            .access("cheap", "R", inputs=[])
            .build()
        )
        chained = [
            access("A", "cheap"),
            access("B", "probe", Project(Scan("A"), ("A_p0",)), ("A_p0",)),
        ]
        capped = CardinalityCostFunction(
            relation_cardinality={},
            per_tuple=0.1,
            default_cardinality=100,
            bounds=SizeBounds(schema, {"R": 4}),
        )
        # A's estimate is capped at |R| = 4, so B's fan-in charge drops
        # from 100 * 0.1 to 4 * 0.1.
        assert capped.commands_cost(chained) == pytest.approx(2.0 + 0.1 + 0.4)

    def test_calibration_moves_the_identity(self):
        store = self.make_calibration(fan_out=2)
        cost = CardinalityCostFunction(
            relation_cardinality={}, calibration=store
        )
        before = cost.identity()
        store.observe("cheap", dispatched=1, fetched=5, emitted=5)
        assert cost.identity() != before

    def test_monotone_with_calibration_and_bounds(self, commands):
        from repro.cost.bounds import SizeBounds
        from repro.schema.core import SchemaBuilder as SB

        schema = (
            SB("s").relation("R", 2).access("cheap", "R", inputs=[]).build()
        )
        cost = CardinalityCostFunction(
            relation_cardinality={},
            calibration=self.make_calibration(fan_out=5),
            bounds=SizeBounds(schema, {"R": 3}),
        )
        assert is_monotone_on(cost, commands)

    def test_delta_cost_agrees_with_recompute_when_calibrated(self):
        from repro.cost.bounds import SizeBounds
        from repro.schema.core import SchemaBuilder as SB

        schema = (
            SB("s").relation("R", 2).access("cheap", "R", inputs=[]).build()
        )
        cost = CardinalityCostFunction(
            relation_cardinality={},
            per_tuple=0.1,
            calibration=self.make_calibration(fan_out=3),
            bounds=SizeBounds(schema, {"R": 2}),
        )
        chained = [
            access("A", "cheap"),
            access("B", "probe", Project(Scan("A"), ("A_p0",)), ("A_p0",)),
        ]
        state = cost.cost_state()
        state, _ = cost.delta_cost(state, chained[:1])
        _, total = cost.delta_cost(state, chained[1:])
        assert total == pytest.approx(cost.commands_cost(chained))
