"""Static size bounds: propagation rules, key tightening, soundness.

The load-bearing property is *soundness against execution*: for every
library scenario, every temporary table a planned run materializes stays
at or under the bound :class:`~repro.cost.bounds.SizeBounds` derived for
it statically -- which is what entitles both the planner (estimate
capping) and the service (admission rejection) to trust the bounds.
"""

import math

import pytest

from repro.cost.bounds import INF, SizeBounds
from repro.data.source import InMemorySource
from repro.planner.search import SearchOptions, find_best_plan
from repro.plans.commands import (
    AccessCommand,
    MiddlewareCommand,
    identity_output_map,
)
from repro.plans.expressions import (
    Difference,
    Join,
    Project,
    Scan,
    Singleton,
    Union,
)
from repro.plans.plan import Plan
from repro.scenarios import (
    example1,
    example2,
    example5,
    referential_chain,
    view_stack_scenario,
)
from repro.schema.core import SchemaBuilder

SCENARIOS = [
    ("example1", example1),
    ("example2", example2),
    ("example5", example5),
    ("chain2", lambda: referential_chain(2)),
    ("views", view_stack_scenario),
]


def two_step_schema():
    return (
        SchemaBuilder("s")
        .relation("R", 2, attributes=("a", "b"))
        .relation("S", 2, attributes=("b", "c"))
        .access("mt_R", "R", inputs=[])
        .access("mt_S", "S", inputs=[0])
        .build()
    )


def two_step_plan():
    return Plan(
        (
            AccessCommand(
                "T1",
                "mt_R",
                Singleton(),
                (),
                identity_output_map(("x", "y")),
            ),
            AccessCommand(
                "T2",
                "mt_S",
                Project(Scan("T1"), ("y",)),
                ("y",),
                (("y", (0,)), ("z", (1,))),
            ),
            MiddlewareCommand("T3", Join(Scan("T1"), Scan("T2"))),
        ),
        output_table="T3",
    )


class TestPropagation:
    def test_access_capped_by_relation_size(self):
        bounds = SizeBounds(two_step_schema(), {"R": 5, "S": 7})
        per_target = bounds.plan_bounds(two_step_plan())
        assert per_target["T1"] == 5.0
        # fan-in 5 * per-binding 7 = 35, capped by |S| = 7.
        assert per_target["T2"] == 7.0
        assert per_target["T3"] == 35.0

    def test_key_tightens_per_binding_to_one(self):
        bounds = SizeBounds(
            two_step_schema(), {"R": 5, "S": 7}, keys={"S": [(0,)]}
        )
        # The bound input position covers S's key: one match per binding.
        assert bounds.per_binding_bound("mt_S") == 1.0
        assert bounds.plan_bounds(two_step_plan())["T2"] == 5.0

    def test_key_not_covered_keeps_relation_bound(self):
        bounds = SizeBounds(
            two_step_schema(), {"R": 5, "S": 7}, keys={"S": [(1,)]}
        )
        assert bounds.per_binding_bound("mt_S") == 7.0

    def test_unknown_relation_bounds_to_inf(self):
        bounds = SizeBounds(two_step_schema(), {"R": 5})
        assert math.isinf(bounds.result_bound(two_step_plan()))

    def test_union_adds_and_difference_keeps_left(self):
        bounds = SizeBounds(two_step_schema(), {"R": 5, "S": 7})
        table_bounds = {"A": 3.0, "B": 4.0}
        union = Union(Scan("A"), Scan("B"))
        diff = Difference(Scan("A"), Scan("B"))
        assert bounds.expression_bound(union, table_bounds) == 7.0
        assert bounds.expression_bound(diff, table_bounds) == 3.0

    def test_empty_side_zeroes_a_join_even_against_inf(self):
        bounds = SizeBounds(two_step_schema(), {})
        join = Join(Scan("empty"), Scan("unknown"))
        assert (
            bounds.expression_bound(join, {"empty": 0.0}) == 0.0
        )

    def test_access_bound_unknown_method_is_inf(self):
        bounds = SizeBounds(two_step_schema(), {"R": 5})
        assert math.isinf(bounds.access_bound("nope", 3.0))

    def test_resident_bound_sums_targets(self):
        bounds = SizeBounds(two_step_schema(), {"R": 5, "S": 7})
        assert bounds.resident_bound(two_step_plan()) == 5.0 + 7.0 + 35.0

    def test_identity_moves_with_sizes_and_keys(self):
        schema = two_step_schema()
        base = SizeBounds(schema, {"R": 5}).identity()
        assert SizeBounds(schema, {"R": 6}).identity() != base
        assert (
            SizeBounds(schema, {"R": 5}, keys={"R": [(0,)]}).identity()
            != base
        )
        assert SizeBounds(schema, {"R": 5}).identity() == base


class TestSoundnessAgainstExecution:
    @pytest.mark.parametrize(
        "name,factory", SCENARIOS, ids=[n for n, _ in SCENARIOS]
    )
    def test_every_table_stays_under_its_bound(self, name, factory):
        scenario = factory()
        result = find_best_plan(
            scenario.schema, scenario.query, SearchOptions(max_accesses=5)
        )
        assert result.found, name
        instance = scenario.instance(0)
        bounds = SizeBounds.from_instance(scenario.schema, instance)
        per_target = bounds.plan_bounds(result.best_plan)
        source = InMemorySource(scenario.schema, instance)
        _, env = result.best_plan.run_with_env(source)
        for table, produced in env.items():
            assert len(produced.rows) <= per_target[table], (
                f"{name}: {table} produced {len(produced.rows)} rows, "
                f"bound {per_target[table]}"
            )

    def test_result_bound_dominates_result(self):
        scenario = example1()
        result = find_best_plan(
            scenario.schema, scenario.query, SearchOptions(max_accesses=5)
        )
        instance = scenario.instance(0)
        bounds = SizeBounds.from_instance(scenario.schema, instance)
        table = result.best_plan.run(
            InMemorySource(scenario.schema, instance)
        )
        assert len(table.rows) <= bounds.result_bound(result.best_plan)
