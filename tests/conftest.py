"""Shared fixtures: the paper's schemas and queries, small instances."""

from __future__ import annotations

import pytest

from repro import Instance, SchemaBuilder, cq
from repro.scenarios import example1, example2, example5


@pytest.fixture
def uni_schema():
    """Example 1's schema: restricted Profinfo, free Udirect."""
    return (
        SchemaBuilder("uni")
        .relation("Profinfo", 3, ["eid", "onum", "lname"])
        .relation("Udirect", 2, ["eid", "lname"])
        .access("mt_prof", "Profinfo", inputs=[0], cost=2.0)
        .access("mt_udir", "Udirect", inputs=[], cost=1.0)
        .tgd("Profinfo(eid, onum, lname) -> Udirect(eid, lname)")
        .build()
    )


@pytest.fixture
def uni_boolean_query():
    """Example 4's boolean query over Example 1's schema."""
    return cq([], [("Profinfo", ["?e", "?o", "?l"])], name="Qb")


@pytest.fixture
def uni_instance():
    return Instance(
        {
            "Profinfo": [
                ("e1", "o101", "smith"),
                ("e2", "o102", "jones"),
            ],
            "Udirect": [
                ("e1", "smith"),
                ("e2", "jones"),
                ("e3", "doe"),
            ],
        }
    )


@pytest.fixture
def scenario1():
    return example1(professors=10, directory_extra=15)


@pytest.fixture
def scenario2():
    return example2(directory_size=12)


@pytest.fixture
def scenario5():
    return example5(sources=3, professors=8, noise_per_source=10)
