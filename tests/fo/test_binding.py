"""Unit tests for BindPatt (the paper's binding-pattern semantics)."""

import pytest

from repro.fo.binding import (
    BindingPattern,
    UnrestrictedQuantificationError,
    binding_patterns,
)
from repro.fo.formulas import (
    And,
    Eq,
    Exists,
    FOAtom,
    Forall,
    Implies,
    Not,
    Or,
    Top,
)
from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Variable


X, Y, Z = Variable("x"), Variable("y"), Variable("z")


def pattern(rel, *positions):
    return BindingPattern(rel, frozenset(positions))


class TestBaseCases:
    def test_top_and_eq_empty(self):
        assert binding_patterns(Top()) == frozenset()
        assert binding_patterns(Eq(X, Y)) == frozenset()

    def test_bare_atom_fully_bound(self):
        formula = FOAtom(Atom("R", (X, Y)))
        assert binding_patterns(formula) == {pattern("R", 0, 1)}

    def test_negation_transparent(self):
        formula = Not(FOAtom(Atom("R", (X,))))
        assert binding_patterns(formula) == {pattern("R", 0)}


class TestGuardedQuantifiers:
    def test_existential_guard_unbinds_quantified(self):
        formula = Exists((Y,), FOAtom(Atom("R", (X, Y))))
        assert binding_patterns(formula) == {pattern("R", 0)}

    def test_universal_guard(self):
        formula = Forall(
            (Y,), Implies(FOAtom(Atom("S", (X, Y))), FOAtom(Atom("T", (X, Y))))
        )
        assert binding_patterns(formula) == {
            pattern("S", 0),
            pattern("T", 0, 1),
        }

    def test_constants_count_as_bound(self):
        formula = Exists((Y,), FOAtom(Atom("R", (Constant("a"), Y))))
        assert binding_patterns(formula) == {pattern("R", 0)}

    def test_paper_example(self):
        # exists x,y (R(x,y) & forall z (S(x,y,z) -> U(x,y,z)))
        # = {(R, {}), (S, {0,1}), (U, {0,1,2})} (0-based).
        inner = Forall(
            (Z,),
            Implies(
                FOAtom(Atom("S", (X, Y, Z))), FOAtom(Atom("U", (X, Y, Z)))
            ),
        )
        formula = Exists((X, Y), And(FOAtom(Atom("R", (X, Y))), inner))
        assert binding_patterns(formula) == {
            pattern("R"),
            pattern("S", 0, 1),
            pattern("U", 0, 1, 2),
        }

    def test_union_of_branches(self):
        formula = Or(
            Exists((X,), FOAtom(Atom("R", (X,)))),
            Exists((X,), FOAtom(Atom("S", (X,)))),
        )
        assert binding_patterns(formula) == {pattern("R"), pattern("S")}


class TestUndefinedCases:
    def test_unguarded_existential(self):
        formula = Exists((X,), Not(FOAtom(Atom("P", (X,)))))
        with pytest.raises(UnrestrictedQuantificationError):
            binding_patterns(formula)

    def test_unguarded_universal(self):
        formula = Forall((X,), FOAtom(Atom("P", (X,))))
        with pytest.raises(UnrestrictedQuantificationError):
            binding_patterns(formula)

    def test_guard_must_cover_quantified_variables(self):
        formula = Exists(
            (X, Y), And(FOAtom(Atom("R", (X,))), FOAtom(Atom("S", (Y,))))
        )
        with pytest.raises(UnrestrictedQuantificationError):
            binding_patterns(formula)

    def test_nested_single_quantifiers_ok(self):
        formula = Exists(
            (X,),
            And(
                FOAtom(Atom("R", (X,))),
                Exists((Y,), FOAtom(Atom("S", (Y,)))),
            ),
        )
        assert binding_patterns(formula) == {pattern("R"), pattern("S")}
