"""Tests for executable FO queries and Proposition 1 compilation."""

import pytest

from repro.data.instance import Instance
from repro.data.source import InMemorySource
from repro.fo.executable import (
    ExecutabilityError,
    executable_to_plan,
    is_executable,
    method_for_guard,
    to_guarded_nnf,
)
from repro.fo.formulas import (
    And,
    Eq,
    Exists,
    FOAtom,
    Forall,
    Implies,
    Not,
    Or,
    Top,
)
from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Variable
from repro.schema.core import SchemaBuilder


X, Y, Z = Variable("x"), Variable("y"), Variable("z")


@pytest.fixture
def schema():
    return (
        SchemaBuilder("s")
        .relation("Emp", 2)       # (dept, name)
        .relation("Dept", 1)
        .relation("Cert", 2)      # (name, cert)
        .free_access("Dept")
        .access("mt_emp", "Emp", inputs=[0])
        .access("mt_cert", "Cert", inputs=[0, 1])
        .build()
    )


def run(plan, schema, data):
    return plan.run(InMemorySource(schema, Instance(data)))


class TestGuardedNNF:
    def test_preserves_forall_guard_shape(self):
        formula = Not(
            Exists((X,), And(FOAtom(Atom("Dept", (X,))), Top()))
        )
        result = to_guarded_nnf(formula)
        assert isinstance(result, Forall)
        assert isinstance(result.body, Implies)

    def test_negated_forall_becomes_guarded_exists(self):
        formula = Not(
            Forall((X,), Implies(FOAtom(Atom("Dept", (X,))), Top()))
        )
        result = to_guarded_nnf(formula)
        assert isinstance(result, Exists)

    def test_double_negation_identity_shape(self):
        formula = Exists((X,), FOAtom(Atom("Dept", (X,))))
        assert isinstance(to_guarded_nnf(Not(Not(formula))), Exists)


class TestMethodForGuard:
    def test_picks_cheapest_covering_method(self, schema):
        guard = Atom("Emp", (X, Y))
        method = method_for_guard(schema, guard, [X])
        assert method.name == "mt_emp"

    def test_none_when_inputs_uncovered(self, schema):
        guard = Atom("Cert", (X, Y))
        assert method_for_guard(schema, guard, [X]) is None

    def test_constants_count_as_bound(self, schema):
        guard = Atom("Emp", (Constant("d"), Y))
        assert method_for_guard(schema, guard, []) is not None


class TestIsExecutable:
    def test_simple_executable_sentence(self, schema):
        formula = Exists((X,), FOAtom(Atom("Dept", (X,))))
        assert is_executable(formula, schema)

    def test_uncovered_guard_not_executable(self, schema):
        formula = Exists((X, Y), FOAtom(Atom("Cert", (X, Y))))
        assert not is_executable(formula, schema)

    def test_unrestricted_quantifier_not_executable(self, schema):
        formula = Forall((X,), FOAtom(Atom("Dept", (X,))))
        assert not is_executable(formula, schema)


class TestCompiledSemantics:
    def test_existential_sentence(self, schema):
        formula = Exists((X,), FOAtom(Atom("Dept", (X,))))
        plan = executable_to_plan(formula, schema)
        assert not run(plan, schema, {"Dept": [("sales",)]}).is_empty
        assert run(plan, schema, {}).is_empty

    def test_nested_exists_join(self, schema):
        # exists d (Dept(d) & exists n Emp(d, n))
        formula = Exists(
            (X,),
            And(
                FOAtom(Atom("Dept", (X,))),
                Exists((Y,), FOAtom(Atom("Emp", (X, Y)))),
            ),
        )
        plan = executable_to_plan(formula, schema)
        assert not run(
            plan,
            schema,
            {"Dept": [("sales",)], "Emp": [("sales", "ann")]},
        ).is_empty
        assert run(
            plan,
            schema,
            {"Dept": [("sales",)], "Emp": [("hr", "bob")]},
        ).is_empty

    def test_universal_sentence(self, schema):
        # exists d (Dept(d) & forall n (Emp(d, n) -> Cert(n, n)))
        formula = Exists(
            (X,),
            And(
                FOAtom(Atom("Dept", (X,))),
                Forall(
                    (Y,),
                    Implies(
                        FOAtom(Atom("Emp", (X, Y))),
                        Exists((), FOAtom(Atom("Cert", (Y, Y)))),
                    ),
                ),
            ),
        )
        plan = executable_to_plan(formula, schema)
        all_certified = {
            "Dept": [("sales",)],
            "Emp": [("sales", "ann")],
            "Cert": [("ann", "ann")],
        }
        one_missing = {
            "Dept": [("sales",)],
            "Emp": [("sales", "ann"), ("sales", "bob")],
            "Cert": [("ann", "ann")],
        }
        assert not run(plan, schema, all_certified).is_empty
        assert run(plan, schema, one_missing).is_empty

    def test_disjunction(self, schema):
        formula = Or(
            Exists((X,), FOAtom(Atom("Dept", (X,)))),
            Exists(
                (X,),
                And(
                    FOAtom(Atom("Dept", (X,))),
                    Exists((Y,), FOAtom(Atom("Emp", (X, Y)))),
                ),
            ),
        )
        plan = executable_to_plan(formula, schema)
        assert not run(plan, schema, {"Dept": [("d",)]}).is_empty

    def test_negated_sentence(self, schema):
        formula = Not(Exists((X,), FOAtom(Atom("Dept", (X,)))))
        plan = executable_to_plan(formula, schema)
        assert not run(plan, schema, {}).is_empty
        assert run(plan, schema, {"Dept": [("d",)]}).is_empty

    def test_equality_selection(self, schema):
        # exists d,n (Emp(d,n) via Dept... ) with d = n
        formula = Exists(
            (X,),
            And(
                FOAtom(Atom("Dept", (X,))),
                Exists(
                    (Y,),
                    And(FOAtom(Atom("Emp", (X, Y))), Eq(X, Y)),
                ),
            ),
        )
        plan = executable_to_plan(formula, schema)
        match = {"Dept": [("d",)], "Emp": [("d", "d")]}
        no_match = {"Dept": [("d",)], "Emp": [("d", "n")]}
        assert not run(plan, schema, match).is_empty
        assert run(plan, schema, no_match).is_empty

    def test_free_variables_rejected(self, schema):
        with pytest.raises(ExecutabilityError):
            executable_to_plan(FOAtom(Atom("Dept", (X,))), schema)

    def test_uncompilable_guard_raises(self, schema):
        formula = Exists((X, Y), FOAtom(Atom("Cert", (X, Y))))
        with pytest.raises(ExecutabilityError):
            executable_to_plan(formula, schema)
