"""Tests for the tableau prover: refutations, entailments, budgets."""

import pytest

from repro.fo.formulas import (
    And,
    Exists,
    FOAtom,
    Forall,
    Implies,
    Not,
    Or,
)
from repro.fo.tableau import (
    ProofNotFound,
    TableauProver,
    simplify,
    tgd_to_formula,
)
from repro.logic.atoms import Atom
from repro.logic.dependencies import parse_tgd
from repro.logic.terms import Constant, Variable


X, Y = Variable("x"), Variable("y")
A, B = Constant("a"), Constant("b")
Pa = FOAtom(Atom("P", (A,)))
Qa = FOAtom(Atom("Q", (A,)))
Px = FOAtom(Atom("P", (X,)))
Qx = FOAtom(Atom("Q", (X,)))


@pytest.fixture
def prover():
    return TableauProver()


class TestPropositionalLayer:
    def test_contradiction_refuted(self, prover):
        assert prover.is_unsatisfiable([Pa, Not(Pa)])

    def test_satisfiable_not_refuted(self, prover):
        assert not prover.is_unsatisfiable([Pa])

    def test_modus_ponens(self, prover):
        assert prover.entails([Pa, Implies(Pa, Qa)], Qa)

    def test_no_bogus_entailment(self, prover):
        assert not prover.entails([Pa], Qa)

    def test_disjunction_elimination(self, prover):
        premises = [Or(Pa, Qa), Implies(Pa, Qa)]
        assert prover.entails(premises, Qa)

    def test_conjunction_projection(self, prover):
        assert prover.entails([And(Pa, Qa)], Pa)

    def test_case_split_both_branches_needed(self, prover):
        # (P or Q) and not P entails Q.
        assert prover.entails([Or(Pa, Qa), Not(Pa)], Qa)


class TestQuantifiers:
    def test_universal_instantiation(self, prover):
        premises = [Forall((X,), Implies(Px, Qx)), Pa]
        assert prover.entails(premises, Qa)

    def test_existential_generalization(self, prover):
        assert prover.entails([Pa], Exists((X,), Px))

    def test_exists_forall_combination(self, prover):
        premises = [
            Exists((X,), Px),
            Forall((X,), Implies(Px, Qx)),
        ]
        assert prover.entails(premises, Exists((X,), Qx))

    def test_forall_not_entailed_by_instance(self, prover):
        assert not prover.entails([Pa], Forall((X,), Px))

    def test_two_step_chain(self, prover):
        Rx = FOAtom(Atom("R", (X,)))
        premises = [
            Pa,
            Forall((X,), Implies(Px, Qx)),
            Forall((X,), Implies(Qx, Rx)),
        ]
        assert prover.entails(premises, FOAtom(Atom("R", (A,))))

    def test_tgd_entailment(self, prover):
        tgd = tgd_to_formula(parse_tgd("P(x) -> Q(x, y)"))
        goal = Exists((X, Y), FOAtom(Atom("Q", (X, Y))))
        assert prover.entails([Pa, tgd], goal)


class TestBudgets:
    def test_step_budget_raises_proof_not_found(self):
        tight = TableauProver(max_steps=3)
        hard = [
            Forall((X,), Implies(Px, Qx)),
            Forall((X,), Implies(Qx, Px)),
            Pa,
        ]
        with pytest.raises(ProofNotFound):
            tight.refute(hard, [Not(Not(FOAtom(Atom("Z", (A,)))))])

    def test_gamma_limit_prevents_hang(self):
        # A satisfiable set with a universal: must return, not loop.
        prover = TableauProver(gamma_limit=2, max_steps=200)
        assert not prover.is_unsatisfiable(
            [Forall((X,), Implies(Px, Qx)), Pa]
        )


class TestTGDToFormula:
    def test_full_tgd_shape(self):
        formula = tgd_to_formula(parse_tgd("R(x, y) -> S(y, x)"))
        assert isinstance(formula, Forall)
        assert isinstance(formula.body, Implies)

    def test_existential_tgd_shape(self):
        formula = tgd_to_formula(parse_tgd("R(x) -> S(x, y)"))
        assert isinstance(formula.body.right, Exists)


class TestSimplify:
    def test_and_with_top(self):
        from repro.fo.formulas import Top

        assert simplify(And(Pa, Top())) == Pa

    def test_or_with_bottom(self):
        from repro.fo.formulas import Bottom

        assert simplify(Or(Pa, Bottom())) == Pa

    def test_and_with_bottom_collapses(self):
        from repro.fo.formulas import Bottom

        assert isinstance(simplify(And(Pa, Bottom())), Bottom)

    def test_not_top_is_bottom(self):
        from repro.fo.formulas import Bottom, Top

        assert isinstance(simplify(Not(Top())), Bottom)

    def test_quantifier_over_constant_body(self):
        from repro.fo.formulas import Top

        assert isinstance(simplify(Exists((X,), Top())), Top)
