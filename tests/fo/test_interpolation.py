"""Tests for constructive interpolation (Theorem 4)."""

import pytest

from repro.fo.formulas import (
    And,
    Exists,
    FOAtom,
    Forall,
    Implies,
    Not,
    Or,
)
from repro.fo.interpolation import interpolate, verify_interpolant
from repro.fo.tableau import ProofNotFound, TableauProver, tgd_to_formula
from repro.logic.atoms import Atom
from repro.logic.dependencies import parse_tgd
from repro.logic.terms import Constant, Variable


X, Y = Variable("x"), Variable("y")
A, B = Constant("a"), Constant("b")


def atom(rel, *terms):
    return FOAtom(Atom(rel, tuple(terms)))


class TestGroundInterpolation:
    def test_shared_atom_interpolant(self):
        phi1 = And(atom("P", A), Implies(atom("P", A), atom("Q", A)))
        phi2 = Or(atom("Q", A), atom("R", A))
        result = interpolate(phi1, phi2)
        assert result.fully_verified
        # The interpolant mentions only the shared relation Q.
        assert result.interpolant.relations() <= {"Q"}

    def test_vocabulary_discipline(self):
        # phi1 uses P, S; phi2 uses Q, S; shared: S.
        phi1 = And(atom("P", A), atom("S", A))
        phi2 = Or(atom("S", A), atom("Q", A))
        result = interpolate(phi1, phi2)
        assert result.interpolant.relations() <= {"S"}
        assert result.fully_verified

    def test_unshared_constants_quantified_or_absent(self):
        phi1 = And(atom("P", A), atom("S", A))
        phi2 = Or(atom("S", A), atom("Q", B))
        result = interpolate(phi1, phi2)
        assert result.constants_ok

    def test_polarity_check(self):
        phi1 = And(atom("P", A), Implies(atom("P", A), atom("Q", A)))
        phi2 = atom("Q", A)
        result = interpolate(phi1, phi2)
        assert result.polarity_ok

    def test_unprovable_entailment_raises(self):
        with pytest.raises(ProofNotFound):
            interpolate(atom("P", A), atom("Q", A))


class TestQuantifiedInterpolation:
    def test_existential_interpolant(self):
        phi1 = And(
            Exists((X,), atom("P", X)),
            Forall((X,), Implies(atom("P", X), atom("Q", X))),
        )
        phi2 = Exists((X,), atom("Q", X))
        result = interpolate(phi1, phi2)
        assert result.entailed_by_left
        assert result.entails_right
        assert result.interpolant.relations() <= {"Q"}

    def test_tgd_mediated_interpolation(self):
        """The Example 1 pattern: a referential constraint carries the
        entailment; the interpolant lives in the shared (target) relation."""
        constraint = tgd_to_formula(
            parse_tgd("Profinfo(e, o, l) -> Udirect(e, l)")
        )
        phi1 = And(
            Exists(
                (Variable("e"), Variable("o"), Variable("l")),
                atom("Profinfo", Variable("e"), Variable("o"), Variable("l")),
            ),
            constraint,
        )
        phi2 = Exists(
            (Variable("e"), Variable("l")),
            atom("Udirect", Variable("e"), Variable("l")),
        )
        result = interpolate(phi1, phi2)
        assert result.entailed_by_left
        assert result.entails_right
        assert result.interpolant.relations() <= {"Udirect"}


class TestVerification:
    def test_verify_interpolant_direct(self):
        phi1 = And(atom("P", A), Implies(atom("P", A), atom("Q", A)))
        phi2 = atom("Q", A)
        ok_left, ok_right = verify_interpolant(phi1, atom("Q", A), phi2)
        assert ok_left and ok_right

    def test_verify_flags_bad_interpolant(self):
        phi1 = atom("P", A)
        phi2 = Or(atom("P", A), atom("Q", A))
        ok_left, _ = verify_interpolant(phi1, atom("Q", A), phi2)
        assert not ok_left
