"""Property-based tests for tableau proving and interpolation.

Random ground formula pairs over a small atom pool: whenever the prover
establishes ``phi1 |= phi2``, the extracted interpolant must satisfy all
Theorem 4 disciplines and be re-provable on both sides.  A brute-force
propositional model checker provides ground truth for the prover itself.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings, strategies as st

from repro.fo.formulas import And, Bottom, FOAtom, Not, Or, Top, polarities
from repro.fo.interpolation import interpolate
from repro.fo.tableau import ProofNotFound, TableauProver
from repro.logic.atoms import Atom
from repro.logic.terms import Constant


ATOMS = [FOAtom(Atom(name, (Constant("a"),))) for name in "PQRS"]


@st.composite
def ground_formulas(draw, depth: int = 3):
    if depth == 0:
        return draw(st.sampled_from(ATOMS))
    kind = draw(st.sampled_from(["atom", "not", "and", "or"]))
    if kind == "atom":
        return draw(st.sampled_from(ATOMS))
    if kind == "not":
        return Not(draw(ground_formulas(depth=depth - 1)))
    left = draw(ground_formulas(depth=depth - 1))
    right = draw(ground_formulas(depth=depth - 1))
    return And(left, right) if kind == "and" else Or(left, right)


def _truth(formula, valuation) -> bool:
    if isinstance(formula, FOAtom):
        return valuation[formula.atom.relation]
    if isinstance(formula, Not):
        return not _truth(formula.inner, valuation)
    if isinstance(formula, And):
        return all(_truth(p, valuation) for p in formula.parts)
    if isinstance(formula, Or):
        return any(_truth(p, valuation) for p in formula.parts)
    if isinstance(formula, Top):
        return True
    if isinstance(formula, Bottom):
        return False
    raise TypeError(formula)


def _entails_bruteforce(phi1, phi2) -> bool:
    names = [a.atom.relation for a in ATOMS]
    for bits in itertools.product([False, True], repeat=len(names)):
        valuation = dict(zip(names, bits))
        if _truth(phi1, valuation) and not _truth(phi2, valuation):
            return False
    return True


@given(ground_formulas(), ground_formulas())
@settings(max_examples=120, deadline=None)
def test_prover_matches_bruteforce_on_ground_formulas(phi1, phi2):
    """On the propositional fragment the prover is a decision procedure."""
    prover = TableauProver(max_steps=50_000)
    assert prover.entails([phi1], phi2) == _entails_bruteforce(phi1, phi2)


@given(ground_formulas(), ground_formulas())
@settings(max_examples=80, deadline=None)
def test_interpolants_verified_when_entailment_holds(phi1, phi2):
    if not _entails_bruteforce(phi1, phi2):
        return
    prover = TableauProver(max_steps=50_000)
    result = interpolate(phi1, phi2, prover=prover)
    # Semantic check against brute force (stronger than re-proving).
    assert _entails_bruteforce(phi1, result.interpolant)
    assert _entails_bruteforce(result.interpolant, phi2)
    assert result.polarity_ok
    assert result.constants_ok


@given(ground_formulas(), ground_formulas())
@settings(max_examples=60, deadline=None)
def test_interpolant_vocabulary_is_shared(phi1, phi2):
    if not _entails_bruteforce(phi1, phi2):
        return
    prover = TableauProver(max_steps=50_000)
    result = interpolate(phi1, phi2, prover=prover, verify=False)
    shared = phi1.relations() & phi2.relations()
    assert result.interpolant.relations() <= shared
