"""Additional executable-compiler edge cases."""

import pytest

from repro.data.instance import Instance
from repro.data.source import InMemorySource
from repro.fo.executable import (
    ExecutabilityError,
    executable_to_plan,
    to_guarded_nnf,
)
from repro.fo.formulas import (
    And,
    Bottom,
    Eq,
    Exists,
    FOAtom,
    Forall,
    Implies,
    Not,
    Or,
    Top,
)
from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Variable
from repro.schema.core import SchemaBuilder


X, Y = Variable("x"), Variable("y")


@pytest.fixture
def schema():
    return (
        SchemaBuilder("s")
        .relation("R", 2)
        .relation("K", 1)
        .free_access("R")
        .free_access("K")
        .constant("c0")
        .build()
    )


def run(plan, schema, data):
    return plan.run(InMemorySource(schema, Instance(data)))


class TestConstantGuards:
    def test_constant_in_guard_position(self, schema):
        # exists y R('c0', y)
        formula = Exists(
            (Y,), FOAtom(Atom("R", (Constant("c0"), Y)))
        )
        plan = executable_to_plan(formula, schema)
        assert not run(plan, schema, {"R": [("c0", "v")]}).is_empty
        assert run(plan, schema, {"R": [("zz", "v")]}).is_empty

    def test_repeated_variable_guard(self, schema):
        formula = Exists((X,), FOAtom(Atom("R", (X, X))))
        plan = executable_to_plan(formula, schema)
        assert not run(plan, schema, {"R": [("a", "a")]}).is_empty
        assert run(plan, schema, {"R": [("a", "b")]}).is_empty


class TestBooleanStructure:
    def test_top_sentence(self, schema):
        plan = executable_to_plan(Top(), schema)
        assert not run(plan, schema, {}).is_empty

    def test_bottom_sentence(self, schema):
        plan = executable_to_plan(Bottom(), schema)
        assert run(plan, schema, {"R": [("a", "b")]}).is_empty

    def test_constant_equality_true(self, schema):
        formula = And(
            Exists((X,), FOAtom(Atom("K", (X,)))),
            Eq(Constant("a"), Constant("a")),
        )
        plan = executable_to_plan(formula, schema)
        assert not run(plan, schema, {"K": [("k",)]}).is_empty

    def test_constant_equality_false(self, schema):
        formula = And(
            Exists((X,), FOAtom(Atom("K", (X,)))),
            Eq(Constant("a"), Constant("b")),
        )
        plan = executable_to_plan(formula, schema)
        assert run(plan, schema, {"K": [("k",)]}).is_empty

    def test_negated_equality_inside_exists(self, schema):
        # exists x, y (R(x, y) & not x = y)
        formula = Exists(
            (X,),
            And(
                FOAtom(Atom("K", (X,))),
                Exists(
                    (Y,),
                    And(FOAtom(Atom("R", (X, Y))), Not(Eq(X, Y))),
                ),
            ),
        )
        plan = executable_to_plan(formula, schema)
        diff = {"K": [("a",)], "R": [("a", "b")]}
        same = {"K": [("a",)], "R": [("a", "a")]}
        assert not run(plan, schema, diff).is_empty
        assert run(plan, schema, same).is_empty

    def test_negated_universal_via_guarded_nnf(self, schema):
        # not forall x (K(x) -> exists y R(x, y))
        inner = Forall(
            (X,),
            Implies(
                FOAtom(Atom("K", (X,))),
                Exists((Y,), FOAtom(Atom("R", (X, Y)))),
            ),
        )
        plan = executable_to_plan(Not(inner), schema)
        # Holds iff some K value has NO R partner.
        witness = {"K": [("a",), ("b",)], "R": [("a", "v")]}
        covered = {"K": [("a",)], "R": [("a", "v")]}
        assert not run(plan, schema, witness).is_empty
        assert run(plan, schema, covered).is_empty


class TestGuardedNNFStructure:
    def test_implies_unfolded(self):
        formula = Implies(FOAtom(Atom("K", (Constant("a"),))), Top())
        result = to_guarded_nnf(formula)
        assert isinstance(result, Or)

    def test_negate_flag(self):
        formula = FOAtom(Atom("K", (Constant("a"),)))
        assert to_guarded_nnf(formula, negate=True) == Not(formula)
