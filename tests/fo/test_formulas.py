"""Unit tests for FO formula ASTs, NNF, and polarity analysis."""

import pytest

from repro.fo.formulas import (
    And,
    Bottom,
    Eq,
    Exists,
    FOAtom,
    Forall,
    Implies,
    Not,
    Or,
    Top,
    polarities,
    to_nnf,
)
from repro.logic.atoms import Atom, Substitution
from repro.logic.terms import Constant, Variable


X, Y = Variable("x"), Variable("y")
A = Constant("a")
P = FOAtom(Atom("P", (X,)))
Q = FOAtom(Atom("Q", (X,)))


class TestStructure:
    def test_junctions_flatten(self):
        formula = And(And(P, Q), P)
        assert len(formula.parts) == 3

    def test_free_variables(self):
        formula = Exists((X,), And(P, FOAtom(Atom("R", (X, Y)))))
        assert formula.free_variables() == {Y}

    def test_substitute_respects_binding(self):
        formula = Exists((X,), FOAtom(Atom("R", (X, Y))))
        result = formula.substitute(Substitution({X: A, Y: A}))
        # Bound x untouched, free y replaced.
        atom = result.body.atom
        assert atom.terms == (X, A)

    def test_relations_collected(self):
        formula = Implies(P, Exists((Y,), FOAtom(Atom("R", (X, Y)))))
        assert formula.relations() == {"P", "R"}

    def test_constants_collected(self):
        formula = And(FOAtom(Atom("P", (A,))), Eq(X, Constant("b")))
        assert formula.constants() == {A, Constant("b")}

    def test_equality_and_hash(self):
        assert And(P, Q) == And(P, Q)
        assert hash(Exists((X,), P)) == hash(Exists((X,), P))
        assert Or(P, Q) != And(P, Q)


class TestNNF:
    def test_double_negation(self):
        assert to_nnf(Not(Not(P))) == P

    def test_de_morgan_and(self):
        result = to_nnf(Not(And(P, Q)))
        assert isinstance(result, Or)
        assert Not(P) in result.parts

    def test_de_morgan_or(self):
        result = to_nnf(Not(Or(P, Q)))
        assert isinstance(result, And)

    def test_implication_unfolded(self):
        result = to_nnf(Implies(P, Q))
        assert isinstance(result, Or)
        assert Not(P) in result.parts

    def test_quantifier_duality(self):
        assert isinstance(to_nnf(Not(Exists((X,), P))), Forall)
        assert isinstance(to_nnf(Not(Forall((X,), P))), Exists)

    def test_top_bottom_flip(self):
        assert to_nnf(Not(Top())) == Bottom()
        assert to_nnf(Not(Bottom())) == Top()

    def test_nnf_idempotent_on_literals(self):
        assert to_nnf(Not(P)) == Not(P)


class TestPolarity:
    def test_positive_occurrence(self):
        assert polarities(P) == {"P": {1}}

    def test_negation_flips(self):
        assert polarities(Not(P)) == {"P": {-1}}

    def test_implication_left_negative(self):
        result = polarities(Implies(P, Q))
        assert result["P"] == {-1}
        assert result["Q"] == {1}

    def test_both_polarities(self):
        result = polarities(And(P, Not(P)))
        assert result["P"] == {1, -1}

    def test_quantifiers_transparent(self):
        result = polarities(Forall((X,), Implies(P, Exists((Y,), Q))))
        assert result["P"] == {-1}
        assert result["Q"] == {1}

    def test_paper_example(self):
        # forall x (P(x) -> exists y R(x,y)): P negative, R positive.
        formula = Forall(
            (X,), Implies(P, Exists((Y,), FOAtom(Atom("R", (X, Y)))))
        )
        result = polarities(formula)
        assert result == {"P": {-1}, "R": {1}}
