"""Extra coverage for the AcSch-neg determinacy check and its hierarchy."""

import pytest

from repro.fo.determinacy import (
    is_access_determined,
    is_induced_subinstance_determined,
    is_monotonically_determined,
)
from repro.logic.queries import cq
from repro.scenarios import example2, webservices
from repro.schema.core import SchemaBuilder


class TestHierarchy:
    """Forward proofs embed into both extended systems: whenever the
    FORWARD check succeeds, the NEGATIVE and BIDIRECTIONAL checks must
    too (their rule sets are supersets)."""

    @pytest.mark.parametrize(
        "factory", [example2, webservices]
    )
    def test_scenarios_respect_hierarchy(self, factory):
        scenario = factory()
        query = scenario.query
        forward = is_monotonically_determined(scenario.schema, query)
        assert forward  # all shipped scenarios are answerable
        assert is_access_determined(scenario.schema, query)
        assert is_induced_subinstance_determined(scenario.schema, query)

    def test_negative_check_on_unanswerable(self):
        schema = SchemaBuilder("s").relation("H", 2).build()
        query = cq([], [("H", ["?x", "?y"])])
        assert not is_induced_subinstance_determined(schema, query)

    def test_negative_axioms_require_full_accessibility(self):
        """AcSch-neg's negative axiom needs ALL positions accessible; a
        relation whose second position is never exposed cannot be
        transferred by it.  The query stays determined only through the
        ordinary positive route (which exists here), so all three agree."""
        schema = (
            SchemaBuilder("s")
            .relation("Keys", 1)
            .relation("R", 2)
            .free_access("Keys")
            .access("mt_r", "R", inputs=[0])
            .tgd("R(x, y) -> Keys(x)")
            .build()
        )
        query = cq([], [("R", ["?x", "?y"])])
        forward = is_monotonically_determined(schema, query)
        negative = is_induced_subinstance_determined(schema, query)
        assert forward and negative
