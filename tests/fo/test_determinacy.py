"""Tests for the Claim 1-3 determinacy checks over AcSch variants."""

import pytest

from repro.fo.determinacy import (
    is_access_determined,
    is_induced_subinstance_determined,
    is_monotonically_determined,
)
from repro.logic.queries import cq
from repro.schema.core import SchemaBuilder


class TestPositiveCases:
    def test_example1_all_three_hold(self, uni_schema, uni_boolean_query):
        assert is_monotonically_determined(uni_schema, uni_boolean_query)
        assert is_access_determined(uni_schema, uni_boolean_query)
        assert is_induced_subinstance_determined(
            uni_schema, uni_boolean_query
        )

    def test_free_relation_trivially_determined(self):
        schema = SchemaBuilder("s").relation("R", 1).free_access("R").build()
        query = cq([], [("R", ["?x"])])
        assert is_monotonically_determined(schema, query)


class TestNegativeCases:
    def test_hidden_relation_not_determined(self):
        schema = SchemaBuilder("s").relation("H", 1).build()
        query = cq([], [("H", ["?x"])])
        assert not is_monotonically_determined(schema, query)
        assert not is_access_determined(schema, query)
        assert not is_induced_subinstance_determined(schema, query)

    def test_uncovered_input_not_determined(self):
        schema = (
            SchemaBuilder("s")
            .relation("R", 2)
            .access("mt_r", "R", inputs=[0])
            .build()
        )
        query = cq([], [("R", ["?x", "?y"])])
        assert not is_monotonically_determined(schema, query)


class TestVariantHierarchy:
    def test_forward_implies_bidirectional(self, uni_schema):
        """AcSch proofs remain valid in AcSch<-> (it has more rules)."""
        queries = [
            cq([], [("Profinfo", ["?e", "?o", "?l"])]),
            cq([], [("Udirect", ["?e", "?l"])]),
        ]
        for query in queries:
            if is_monotonically_determined(uni_schema, query):
                assert is_access_determined(uni_schema, query)

    def test_bidirectional_strictly_stronger(self):
        """A query RA-answerable but not USPJ-answerable.

        Keys(k) is free; R needs both positions.  The boolean query
        'exists k,v: Keys(k) and InfAcc-side derivable R' -- here we use
        a view-style setup where the negative axiom transfers InfAcc_R
        facts back.  We check directionally: whatever the FORWARD check
        proves, the BIDIRECTIONAL check proves too.
        """
        schema = (
            SchemaBuilder("s")
            .relation("Keys", 1)
            .relation("R", 2)
            .free_access("Keys")
            .access("mt_r", "R", inputs=[0, 1])
            .tgd("Keys(x) -> R(x, y)")
            .build()
        )
        query = cq([], [("Keys", ["?k"])])
        forward = is_monotonically_determined(schema, query)
        bidirectional = is_access_determined(schema, query)
        assert bidirectional or not forward
