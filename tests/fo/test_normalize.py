"""Unit tests for formula normalization (miniscoping, alpha, dedup)."""

import pytest

from repro.fo.formulas import (
    And,
    Exists,
    FOAtom,
    Forall,
    Implies,
    Not,
    Or,
    Top,
)
from repro.fo.normalize import (
    alpha_normalize,
    drop_unused_quantifiers,
    normalize,
    push_quantifiers,
)
from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Variable


X, Y, Z = Variable("x"), Variable("y"), Variable("z")
A = Constant("a")


def atom(rel, *terms):
    return FOAtom(Atom(rel, tuple(terms)))


class TestDropUnused:
    def test_unused_variable_removed(self):
        formula = Exists((X, Y), atom("P", X))
        result = drop_unused_quantifiers(formula)
        assert result == Exists((X,), atom("P", X))

    def test_fully_unused_quantifier_vanishes(self):
        formula = Exists((Y,), atom("P", A))
        assert drop_unused_quantifiers(formula) == atom("P", A)

    def test_used_variables_kept(self):
        formula = Forall((X,), atom("P", X))
        assert drop_unused_quantifiers(formula) == formula


class TestPushQuantifiers:
    def test_exists_distributes_over_or(self):
        formula = Exists((X,), Or(atom("P", X), atom("Q", X)))
        result = push_quantifiers(formula)
        assert isinstance(result, Or)
        assert all(isinstance(p, Exists) for p in result.parts)

    def test_forall_distributes_over_and(self):
        formula = Forall((X,), And(atom("P", X), atom("Q", X)))
        result = push_quantifiers(formula)
        assert isinstance(result, And)
        assert all(isinstance(p, Forall) for p in result.parts)

    def test_disjunct_keeps_only_its_variables(self):
        formula = Exists((X, Y), Or(atom("P", X), atom("Q", Y)))
        result = push_quantifiers(formula)
        for part in result.parts:
            assert len(part.variables) == 1

    def test_exists_does_not_distribute_over_and(self):
        formula = Exists((X,), And(atom("P", X), atom("Q", X)))
        result = push_quantifiers(formula)
        assert isinstance(result, Exists)


class TestAlphaNormalize:
    def test_sibling_scopes_share_names(self):
        formula = Or(
            Exists((X,), atom("P", X)),
            Exists((Y,), atom("P", Y)),
        )
        result = alpha_normalize(formula)
        assert result.parts[0] == result.parts[1]

    def test_nested_scopes_get_distinct_names(self):
        formula = Exists((X,), And(atom("P", X), Exists((Y,), atom("R", X, Y))))
        result = alpha_normalize(formula)
        inner = result.body.parts[1]
        assert result.variables[0] != inner.variables[0]

    def test_free_variables_untouched(self):
        formula = Exists((X,), atom("R", X, Z))
        result = alpha_normalize(formula)
        assert Z in result.free_variables()

    def test_repeated_pattern_preserved(self):
        formula = Exists((X,), atom("R", X, X))
        result = alpha_normalize(formula)
        terms = result.body.atom.terms
        assert terms[0] == terms[1]


class TestNormalize:
    def test_collapses_alpha_equivalent_disjuncts(self):
        formula = Or(
            Exists((X,), atom("P", X)),
            Exists((Y,), atom("P", Y)),
        )
        result = normalize(formula)
        assert isinstance(result, Exists)  # one disjunct survives

    def test_keeps_semantically_distinct_disjuncts(self):
        formula = Or(
            Exists((X,), atom("R", X, X)),
            Exists((X, Y), atom("R", X, Y)),
        )
        result = normalize(formula)
        assert isinstance(result, Or)
        assert len(result.parts) == 2

    def test_top_absorption(self):
        formula = And(atom("P", A), Top())
        assert normalize(formula) == atom("P", A)

    def test_equivalence_preserved_by_prover(self):
        """normalize() output is provably equivalent to its input."""
        from repro.fo.tableau import TableauProver

        prover = TableauProver()
        formula = Exists((X,), Or(atom("P", X), Or(atom("Q", X), atom("P", X))))
        result = normalize(formula)
        assert prover.entails([formula], result)
        assert prover.entails([result], formula)
