"""Tests for determinacy counterexample extraction (Claim 1, negative).

The defining property is machine-checked: the two instances have equal
accessible parts, yet the boolean query distinguishes them -- a direct
semantic witness that no plan can exist.
"""

import pytest

from repro.data.accessible_part import accessible_part
from repro.fo.counterexample import determinacy_counterexample
from repro.logic.queries import QueryError, cq
from repro.schema.core import SchemaBuilder


class TestCounterexamples:
    def test_hidden_relation_counterexample(self):
        schema = SchemaBuilder("s").relation("H", 1).build()
        query = cq([], [("H", ["?x"])])
        pair = determinacy_counterexample(schema, query)
        assert pair is not None
        i1, i2 = pair
        # The semantic witness, verified end to end:
        assert accessible_part(schema, i1) == accessible_part(schema, i2)
        assert i1.evaluate(query)
        assert not i2.evaluate(query)

    def test_uncovered_input_counterexample(self):
        schema = (
            SchemaBuilder("s")
            .relation("R", 2)
            .access("mt_r", "R", inputs=[0])
            .build()
        )
        query = cq([], [("R", ["?x", "?y"])])
        pair = determinacy_counterexample(schema, query)
        assert pair is not None
        i1, i2 = pair
        assert accessible_part(schema, i1) == accessible_part(schema, i2)
        assert i1.evaluate(query) and not i2.evaluate(query)

    def test_counterexample_with_constraints(self):
        """The constraint forces Keys into both instances; the hidden
        part of R stays distinguishable only through R itself."""
        schema = (
            SchemaBuilder("s")
            .relation("Keys", 1)
            .relation("R", 2)
            .free_access("Keys")
            .access("mt_r", "R", inputs=[1])  # input side never exposed
            .tgd("R(x, y) -> Keys(x)")
            .build()
        )
        query = cq([], [("R", ["?x", "?y"])])
        pair = determinacy_counterexample(schema, query)
        assert pair is not None
        i1, i2 = pair
        assert accessible_part(schema, i1) == accessible_part(schema, i2)
        assert i1.evaluate(query) and not i2.evaluate(query)
        # Both satisfy the schema constraints (they are chase models).
        assert i1.satisfies_all(schema.constraints)
        assert i2.satisfies_all(schema.constraints)

    def test_determined_query_has_no_counterexample(self, uni_schema):
        query = cq([], [("Profinfo", ["?e", "?o", "?l"])])
        assert determinacy_counterexample(uni_schema, query) is None

    def test_free_relation_has_no_counterexample(self):
        schema = SchemaBuilder("s").relation("R", 1).free_access("R").build()
        query = cq([], [("R", ["?x"])])
        assert determinacy_counterexample(schema, query) is None

    def test_non_boolean_rejected(self, uni_schema):
        query = cq(["?e"], [("Udirect", ["?e", "?l"])])
        with pytest.raises(QueryError):
            determinacy_counterexample(uni_schema, query)

    def test_incomplete_chase_returns_none(self):
        from repro.chase.engine import ChasePolicy

        schema = (
            SchemaBuilder("s")
            .relation("R", 2)
            .access("mt_r", "R", inputs=[0])
            .tgd("R(x, y) -> R(y, z)")  # diverging
            .build()
        )
        query = cq([], [("R", ["?x", "?y"])])
        pair = determinacy_counterexample(
            schema, query, ChasePolicy(max_firings=50)
        )
        assert pair is None  # budget-truncated: no certificate
