"""Quickstart: answer a query over a restricted interface (Example 1).

The Profinfo table (faculty records) can only be probed by employee id --
think of it as a web form with a mandatory ``eid`` field.  The query asks
for ids and office numbers of everyone named "smith".  Directly, that is
unanswerable; but a referential constraint says every professor appears
in the freely-scannable university directory, so a complete plan exists:
scan the directory, probe Profinfo with each id, keep the smiths.

Run:  python examples/quickstart.py
"""

from repro import (
    InMemorySource,
    Instance,
    SchemaBuilder,
    SearchOptions,
    cq,
    find_best_plan,
)


def build_schema():
    return (
        SchemaBuilder("university")
        .relation("Profinfo", 3, ["eid", "onum", "lname"])
        .relation("Udirect", 2, ["eid", "lname"])
        # Probing a professor record requires the employee id.
        .access("mt_prof", "Profinfo", inputs=[0], cost=2.0)
        # The directory is a free full scan.
        .access("mt_udir", "Udirect", inputs=[], cost=1.0)
        # Referential constraint: professors appear in the directory.
        .tgd("Profinfo(eid, onum, lname) -> Udirect(eid, lname)")
        .constant("smith")
        .build()
    )


def build_data():
    return Instance(
        {
            "Profinfo": [
                ("e1", "o101", "smith"),
                ("e2", "o102", "jones"),
                ("e3", "o103", "smith"),
            ],
            "Udirect": [
                ("e1", "smith"),
                ("e2", "jones"),
                ("e3", "smith"),
                ("e9", "smith"),  # a smith who is not a professor
            ],
        }
    )


def main():
    schema = build_schema()
    print(schema.describe())
    print()

    query = cq(
        ["?eid", "?onum"],
        [("Profinfo", ["?eid", "?onum", "smith"])],
        name="Q",
    )
    print(f"query: {query}")
    print()

    result = find_best_plan(schema, query, SearchOptions(max_accesses=4))
    if not result.found:
        raise SystemExit("no complete plan exists")
    print(result.best_plan.describe())
    print(f"static cost: {result.best_cost}")
    print(f"proof: {result.best_proof}")
    print()

    source = InMemorySource(schema, build_data())
    output = result.best_plan.run(source)
    print("answers (eid, onum):")
    for row in sorted(output.rows):
        print(f"  {tuple(t.value for t in row)}")
    print(f"runtime accesses: {source.total_invocations} "
          f"(cost charged: {source.charged_cost()})")

    # Sanity: the plan is complete -- it matches direct evaluation.
    truth = build_data().evaluate(query)
    assert set(output.rows) == truth, "plan must be complete"
    print("complete answer verified against direct evaluation ✓")


if __name__ == "__main__":
    main()
