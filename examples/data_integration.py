"""A fuller data-integration scenario exercising the whole library.

A travel-booking mediator integrates four sources with very different
interfaces:

* ``Flights(origin, dest, flightno)`` -- a legacy GDS: requires BOTH
  origin and destination codes (an expensive paid call),
* ``Airports(code)``                  -- a free public airport registry,
* ``Carriers(flightno, airline)``     -- a service keyed by flight number,
* ``Reviews(airline, score)``         -- a free review feed.

Constraints say every flight's endpoints are registered airports and
every flight has a carrier with a review.  The query asks for
``(flightno, airline, score)`` triples -- untouchable directly, but
plannable by seeding the GDS with the airport registry cross product.

Demonstrated: planning, certified answerability, head-variable
inequality filters (ESPJ), SQL rendering, runtime cost accounting.

Run:  python examples/data_integration.py
"""

from repro import InMemorySource, Instance, SchemaBuilder, cq
from repro.logic.terms import Constant, Variable
from repro.planner import SearchOptions, decide_answerability, find_best_plan
from repro.planner.inequalities import Inequality, plan_with_inequalities
from repro.plans.tools import to_sql


def build_schema():
    return (
        SchemaBuilder("travel")
        .relation("Flights", 3, ["origin", "dest", "flightno"])
        .relation("Airports", 1, ["code"])
        .relation("Carriers", 2, ["flightno", "airline"])
        .relation("Reviews", 2, ["airline", "score"])
        .access("mt_gds", "Flights", inputs=[0, 1], cost=10.0)
        .access("mt_airports", "Airports", inputs=[], cost=1.0)
        .access("mt_carrier", "Carriers", inputs=[0], cost=2.0)
        .access("mt_reviews", "Reviews", inputs=[], cost=1.0)
        .tgd("Flights(o, d, f) -> Airports(o)")
        .tgd("Flights(o, d, f) -> Airports(d)")
        .tgd("Flights(o, d, f) -> Carriers(f, a)")
        .tgd("Carriers(f, a) -> Reviews(a, s)")
        .build()
    )


def build_data():
    instance = Instance()
    flights = [
        ("LHR", "JFK", "BA117"),
        ("LHR", "SFO", "UA901"),
        ("CDG", "JFK", "AF006"),
    ]
    carriers = {"BA117": "BA", "UA901": "UA", "AF006": "AF"}
    reviews = {"BA": "4", "UA": "3", "AF": "4"}
    for origin, dest, flight in flights:
        instance.add("Flights", (origin, dest, flight))
        instance.add("Airports", (origin,))
        instance.add("Airports", (dest,))
        airline = carriers[flight]
        instance.add("Carriers", (flight, airline))
        instance.add("Reviews", (airline, reviews[airline]))
    return instance


def main():
    schema = build_schema()
    print(schema.describe())
    print()

    query = cq(
        ["?f", "?a", "?s"],
        [
            ("Flights", ["?o", "?d", "?f"]),
            ("Carriers", ["?f", "?a"]),
            ("Reviews", ["?a", "?s"]),
        ],
        name="Qtrip",
    )
    print(f"query: {query}")
    verdict = decide_answerability(schema, query, max_accesses=5)
    print(f"answerability: {verdict.value}")
    print()

    result = find_best_plan(schema, query, SearchOptions(max_accesses=5))
    print(result.best_plan.describe())
    print(f"static cost: {result.best_cost}")
    print()

    instance = build_data()
    source = InMemorySource(schema, instance)
    output = result.best_plan.run(source)
    truth = instance.evaluate(query)
    assert set(output.rows) == truth
    print(f"{len(output.rows)} itineraries; runtime accesses: "
          f"{source.total_invocations}, cost {source.charged_cost():.1f}")
    print()

    # ESPJ: exclude one airline with a head-variable inequality.
    filtered = plan_with_inequalities(
        schema,
        query,
        [Inequality(Variable("a"), Constant("UA"))],
        SearchOptions(max_accesses=5),
    )
    out2 = filtered.plan.run(InMemorySource(schema, instance))
    print(f"excluding UA: {sorted(r[0].value for r in out2.rows)}")
    print()

    print("-- SQL rendering of the unfiltered plan --")
    print(to_sql(result.best_plan))


if __name__ == "__main__":
    main()
