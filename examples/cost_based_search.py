"""Example 5 / Figure 1: cost-guided exploration of the proof space.

Three redundant directory sources with different access costs all
contain the professor ids.  There are many complete plans -- use any
non-empty subset of sources, then probe Profinfo -- and which is
cheapest depends on the cost model.  This example reruns Figure 1's
exploration, prints the proof tree (including the domination-pruned
reverse-order node the paper calls n'''), and executes the best and the
first-found plan to show the runtime trade-off.

Run:  python examples/cost_based_search.py
"""

from repro import InMemorySource, SearchOptions, find_best_plan
from repro.planner.proof_to_plan import ChaseProof, plan_from_proof
from repro.planner.visualize import search_tree_to_dot
from repro.scenarios import example5
from repro.schema.accessible import AccessibleSchema, Variant


def print_tree(result):
    print("proof tree (chronological):")
    for node in result.tree:
        last = (
            node.exposures[-1].fact.relation if node.exposures else "root"
        )
        status = (
            "SUCCESS"
            if node.successful
            else (f"pruned:{node.pruned}" if node.pruned else "")
        )
        indent = "  " * (len(node.exposures) + 1)
        print(
            f"{indent}n{node.node_id} <- {last:<10} "
            f"cost={node.cost:<5} {status}"
        )


def main():
    scenario = example5(
        sources=3,
        source_costs=[1.0, 2.0, 3.0],
        profinfo_cost=5.0,
        professors=25,
        noise_per_source=60,
        match_rate=0.4,
    )
    print(scenario.schema.describe())
    print()

    result = find_best_plan(
        scenario.schema,
        scenario.query,
        SearchOptions(
            max_accesses=4,
            collect_tree=True,
            candidate_order="method",  # the paper's fixed method priority
        ),
    )
    print_tree(result)
    print()
    print(f"successful proofs found: {result.stats.successes}")
    print(f"best cost history: {result.stats.best_cost_history}")
    print(f"pruned by cost: {result.stats.pruned_by_cost}, "
          f"by domination: {result.stats.pruned_by_domination}")
    print()
    print("best plan:")
    print(result.best_plan.describe())
    print()

    # Execute best vs the first (most expensive) success at runtime.
    first_success = next(n for n in result.tree if n.successful)
    acc = AccessibleSchema(scenario.schema, Variant.FORWARD)
    first_plan = plan_from_proof(
        acc, ChaseProof(scenario.query, first_success.exposures)
    )
    instance = scenario.instance(seed=0)
    for label, plan in (("best", result.best_plan), ("first", first_plan)):
        source = InMemorySource(scenario.schema, instance)
        output = plan.run(source)
        print(
            f"{label:>5} plan: answer={'yes' if output.rows else 'no'} "
            f"invocations={source.total_invocations} "
            f"runtime-cost={source.charged_cost():.1f}"
        )
    print()
    print("note: the 'first' plan intersects all three directories before")
    print("probing Profinfo -- more bulk accesses, fewer probes; the")
    print("cheapest static plan probes more.  Cost functions decide.")
    dot_path = "figure1.dot"
    with open(dot_path, "w") as handle:
        handle.write(search_tree_to_dot(result, title="Figure 1 (regenerated)"))
    print(f"\nwrote {dot_path} -- render with: dot -Tpdf figure1.dot -o figure1.pdf")


if __name__ == "__main__":
    main()
