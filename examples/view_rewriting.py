"""Theorem 6: deciding CQ rewritability over views by chasing.

A hidden star schema (Fact + two dimensions) is exposed only through
materialized views.  The planner chases the query's canonical database
with the accessible schema of the view constraints; if the inferred-
accessible copy of the query matches, the proof *is* the rewriting --
one view atom per exposure.

Run:  python examples/view_rewriting.py
"""

from repro import InMemorySource
from repro.planner.views import rewrite_over_views
from repro.scenarios import view_stack_scenario


def main():
    # With the closing join view: rewritable.
    scenario = view_stack_scenario(views=3, include_closing_view=True)
    print(scenario.schema.describe())
    print()
    print(f"query over the hidden base: {scenario.query}")
    print()

    result = rewrite_over_views(scenario.schema, scenario.query)
    print(f"rewritable: {result.rewritable}")
    print(f"rewriting over views: {result.rewriting}")
    print()
    print(result.plan.describe())
    print()

    instance = scenario.instance(seed=0)
    source = InMemorySource(scenario.schema, instance)
    output = result.plan.run(source)
    truth = instance.evaluate(scenario.query)
    assert set(output.rows) == truth
    print(f"{len(output.rows)} answer rows via views == direct evaluation ✓")
    print()

    # Without the closing view the query is NOT rewritable; the chase
    # terminates and certifies the negative answer.
    blocked = view_stack_scenario(views=3, include_closing_view=False)
    negative = rewrite_over_views(blocked.schema, blocked.query)
    print(
        f"without the closing view: rewritable={negative.rewritable} "
        f"(searched {negative.search.stats.nodes_created} proof nodes)"
    )


if __name__ == "__main__":
    main()
