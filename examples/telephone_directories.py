"""Example 2: chaining accesses through two telephone directories.

Two overlapping phone directories with awkward interfaces:

* ``Direct1(uname, addr, uid)`` -- requires a username AND a uid,
* ``Direct2(uname, addr, phone)`` -- requires a username AND an address,
* ``Ids(uid)`` and ``Names(uname)`` -- free lookup tables revealed by
  referential constraints.

The query wants *all* phone numbers in Direct2.  No single access can
produce them; the planner discovers the 4-hop chain: scan Names and Ids,
cross them into Direct1 (which reveals addresses), then feed
(uname, addr) pairs into Direct2.

Run:  python examples/telephone_directories.py
"""

from repro import InMemorySource, SearchOptions, find_best_plan
from repro.scenarios import example2


def main():
    scenario = example2(directory_size=25)
    print(scenario.schema.describe())
    print()
    print(f"query: {scenario.query}")
    print()

    result = find_best_plan(
        scenario.schema, scenario.query, SearchOptions(max_accesses=5)
    )
    if not result.found:
        raise SystemExit("no complete plan exists")
    print(result.best_plan.describe())
    print()
    print("proof steps:")
    for exposure in result.best_proof.exposures:
        print(f"  {exposure!r}")
    print()

    instance = scenario.instance(seed=0)
    source = InMemorySource(scenario.schema, instance)
    output = result.best_plan.run(source)
    truth = instance.evaluate(scenario.query)
    print(f"phones returned: {len(output.rows)} "
          f"(direct evaluation: {len(truth)})")
    assert set(output.rows) == truth
    print(f"runtime: {source.total_invocations} method invocations, "
          f"cost {source.charged_cost():.1f}")
    by_method = {
        m.name: source.invocations_of(m.name)
        for m in scenario.schema.methods
    }
    print("invocations by method:")
    for name, count in sorted(by_method.items()):
        print(f"  {name}: {count}")
    print("complete answer verified ✓")


if __name__ == "__main__":
    main()
