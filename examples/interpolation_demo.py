"""Theorems 4 & 7, Proposition 1, and Claim 1 in action.

Four acts:

1. **Access interpolation** (Theorem 4): prove the Example-1 entailment
   with the biased tableau prover and extract an interpolant that (a)
   only uses the shared vocabulary, (b) respects polarities, and (c) is
   re-verified by the prover itself.

2. **Executable queries** (Proposition 1): compile an executable FO
   sentence -- including a universal ("every employee of the department
   is certified") -- into a runnable plan with access + difference.

3. **Plans from bidirectional proofs** (Theorem 7): discover a proof
   over AcSch<-> and backward-induct it into an executable query, then a
   plan.

4. **Determinacy counterexamples** (Claim 1): for an unanswerable query,
   extract two instances with identical accessible parts on which the
   query differs -- the semantic witness that no plan exists.

Run:  python examples/interpolation_demo.py
"""

from repro import InMemorySource, Instance, SchemaBuilder, cq
from repro.fo.formulas import And, Exists, FOAtom, Forall, Implies
from repro.fo.interpolation import interpolate
from repro.fo.tableau import tgd_to_formula
from repro.fo.executable import executable_to_plan, is_executable
from repro.logic.atoms import Atom
from repro.logic.dependencies import parse_tgd
from repro.logic.terms import Variable
from repro.planner.ra_from_proof import (
    executable_query_from_proof,
    find_bidirectional_proof,
    ra_plan_from_proof,
)


def act_one_interpolation():
    print("=== Act 1: access interpolation (Theorem 4) ===")
    e, o, l = Variable("e"), Variable("o"), Variable("l")
    constraint = tgd_to_formula(
        parse_tgd("Profinfo(e, o, l) -> Udirect(e, l)")
    )
    phi1 = And(
        Exists((e, o, l), FOAtom(Atom("Profinfo", (e, o, l)))),
        constraint,
    )
    phi2 = Exists((e, l), FOAtom(Atom("Udirect", (e, l))))
    print(f"phi1 = {phi1}")
    print(f"phi2 = {phi2}")
    result = interpolate(phi1, phi2)
    print(f"interpolant = {result.interpolant}")
    print(f"  phi1 |= I re-proved: {result.entailed_by_left}")
    print(f"  I |= phi2 re-proved: {result.entails_right}")
    print(f"  polarity discipline: {result.polarity_ok}")
    print(f"  constant discipline: {result.constants_ok}")
    print()


def act_two_executable():
    print("=== Act 2: executable FO query -> plan (Proposition 1) ===")
    schema = (
        SchemaBuilder("hr")
        .relation("Dept", 1)
        .relation("Emp", 2)
        .relation("Cert", 2)
        .free_access("Dept")
        .access("mt_emp", "Emp", inputs=[0])
        .access("mt_cert", "Cert", inputs=[0, 1])
        .build()
    )
    from repro.logic.terms import Constant

    d, n = Variable("d"), Variable("n")
    sentence = Exists(
        (d,),
        And(
            FOAtom(Atom("Dept", (d,))),
            Forall(
                (n,),
                Implies(
                    FOAtom(Atom("Emp", (d, n))),
                    Exists(
                        (),
                        FOAtom(Atom("Cert", (n, Constant("safety")))),
                    ),
                ),
            ),
        ),
    )
    print(f"sentence: {sentence}")
    print(f"executable for schema: {is_executable(sentence, schema)}")
    plan = executable_to_plan(sentence, schema, name="all-certified")
    print(plan.describe())
    good = Instance(
        {
            "Dept": [("ops",)],
            "Emp": [("ops", "ann"), ("ops", "bob")],
            "Cert": [("ann", "safety"), ("bob", "safety")],
        }
    )
    bad = Instance(
        {
            "Dept": [("ops",)],
            "Emp": [("ops", "ann"), ("ops", "bob")],
            "Cert": [("ann", "safety")],
        }
    )
    for label, data in (("all certified", good), ("bob missing", bad)):
        out = plan.run(InMemorySource(schema, data))
        print(f"  {label}: {'true' if out.rows else 'false'}")
    print()


def act_three_backward():
    print("=== Act 3: plans from bidirectional proofs (Theorem 7) ===")
    schema = (
        SchemaBuilder("uni")
        .relation("Profinfo", 3)
        .relation("Udirect", 2)
        .access("mt_prof", "Profinfo", inputs=[0])
        .free_access("Udirect")
        .tgd("Profinfo(eid, onum, lname) -> Udirect(eid, lname)")
        .build()
    )
    query = cq([], [("Profinfo", ["?e", "?o", "?l"])], name="Qb")
    steps = find_bidirectional_proof(schema, query, max_steps=4)
    print("proof steps:")
    for step in steps:
        print(f"  {step!r}")
    formula = executable_query_from_proof(schema, query, steps)
    print(f"executable query: {formula}")
    plan = ra_plan_from_proof(schema, query, steps)
    print(plan.describe())
    yes = Instance(
        {"Profinfo": [("e1", "o1", "smith")], "Udirect": [("e1", "smith")]}
    )
    out = plan.run(InMemorySource(schema, yes))
    print(f"  on witnessing instance: {'true' if out.rows else 'false'}")


def act_four_counterexample():
    print("=== Act 4: a determinacy counterexample (Claim 1) ===")
    from repro.data import accessible_part
    from repro.fo import determinacy_counterexample

    schema = (
        SchemaBuilder("hidden")
        .relation("R", 2)
        .access("mt_r", "R", inputs=[0])  # the key is never revealed
        .build()
    )
    query = cq([], [("R", ["?x", "?y"])], name="Qh")
    pair = determinacy_counterexample(schema, query)
    i1, i2 = pair
    print(f"query: {query} -- unanswerable; witness pair:")
    print(f"  I1 = {i1!r}  (Q true)")
    print(f"  I2 = {i2!r}  (Q false)")
    same = accessible_part(schema, i1) == accessible_part(schema, i2)
    print(f"  equal accessible parts: {same}")
    print("  -> no plan can distinguish them, so no plan answers Q")


def main():
    act_one_interpolation()
    act_two_executable()
    act_three_backward()
    act_four_counterexample()


if __name__ == "__main__":
    main()
